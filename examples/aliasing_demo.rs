//! Figures 2 and 3: what aliasing looks like.
//!
//! * Figure 2 — spectral copies: a tone sampled below its Nyquist rate folds
//!   to `|k·fs − f0|`, and the §3.2 estimator is fooled exactly as predicted.
//! * Figure 3 — the paper's worked example: 400 Hz + 440 Hz sampled at 890,
//!   800 and 600 Hz; spectra and reconstruction quality per variant.
//! * Plus the §4.1 dual-rate detector catching what a single trace cannot.
//!
//! ```sh
//! cargo run --release --example aliasing_demo
//! ```

use std::f64::consts::PI;
use sweetspot::analysis::experiments::{fig2, fig3};
use sweetspot::prelude::*;

fn main() {
    // Figure 2: a 100 Hz tone under four sampling rates.
    println!(
        "{}",
        fig2::run(100.0, &[400.0, 250.0, 150.0, 90.0], 4.0).render()
    );

    // Figure 3: the paper's 400+440 Hz two-tone example.
    println!("{}", fig3::run(2.0).render());

    // §4.1: the dual-rate detector sees what one trace cannot. Sample the
    // same 0.4 Hz signal at 1 Hz (clean) and 1/φ Hz (aliased): comparing the
    // two spectra flags the problem.
    let signal = |t: f64| (2.0 * PI * 0.4 * t).sin() + 0.5 * (2.0 * PI * 0.05 * t).sin();
    let sample = |rate: f64| {
        let n = (rate * 4000.0) as usize;
        RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0 / rate),
            (0..n).map(|i| signal(i as f64 / rate)).collect(),
        )
    };
    let fast = sample(1.0);
    let slow = sample(1.0 / 1.618_033_988_749_895);
    let verdict = detect_aliasing(&fast, &slow, DualRateConfig::default());
    println!(
        "dual-rate detector (f1=1 Hz, f2=0.618 Hz) on a 0.4 Hz signal:\n  \
         aliased = {}  max discrepancy = {:.2}  worst at {:.3} Hz (0.4 folds to 0.218)",
        verdict.aliased,
        verdict.max_discrepancy,
        verdict.worst_frequency.unwrap_or(f64::NAN)
    );
}
