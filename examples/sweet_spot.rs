//! The title experiment: the cost-vs-quality sweet spot.
//!
//! Sweeps fixed-rate policies across multipliers of the production rate on
//! the monitoring simulator (cost model: collection + network + storage +
//! analysis; quality model: reconstruction NRMSE + event recall), then
//! places the paper's §4 policies — a-posteriori Nyquist thinning and the
//! §4.2 adaptive sampler — on the same axes and reports the knee.
//!
//! ```sh
//! cargo run --release --example sweet_spot
//! ```

use sweetspot::analysis::experiments::sweetspot;

fn main() {
    let seed = 0x54EE7;
    let per_metric = 4; // temperature + link-util devices each
    let days = 3.0;
    let multipliers = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0];

    println!(
        "running the sweep: {} devices, {days} days, multipliers {multipliers:?}\n",
        per_metric * 2
    );
    let result = sweetspot::run(seed, per_metric, days, &multipliers);
    println!("{}", result.render());

    // The narrative conclusion the paper argues for:
    if let (Some(knee), Some(production)) = (
        &result.knee,
        result
            .frontier
            .iter()
            .find(|p| (p.rate_multiplier - 1.0).abs() < 1e-9),
    ) {
        println!(
            "\ntoday's operating point (1.0x) costs {:.1}x the knee for an NRMSE \
             improvement of {:+.4} — the sweet spot sits well below today's rates.",
            production.cost / knee.cost,
            knee.nrmse - production.nrmse,
        );
    }
}
