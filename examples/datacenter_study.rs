//! The §3.2 fleet study at paper scale: 1613 metric-device pairs across 14
//! metrics, one day of production-rate data each — regenerating Figures 1,
//! 4 and 5 plus the headline statistics.
//!
//! ```sh
//! cargo run --release --example datacenter_study
//! ```

use sweetspot::analysis::experiments::{fig1, fig4, fig5, headline};
use sweetspot::analysis::study::{FleetStudy, StudyConfig};
use sweetspot::prelude::*;
use sweetspot::telemetry::fleet::PAPER_PAIR_COUNT;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE);

    println!("building the paper-scale fleet ({PAPER_PAIR_COUNT} metric-device pairs)...");
    let fleet = Fleet::paper_scale(seed);
    let cfg = StudyConfig {
        fleet: *fleet.config(),
        ..StudyConfig::default()
    };

    let start = std::time::Instant::now();
    let study = FleetStudy::run_on(&fleet, cfg);
    println!(
        "analyzed {} day-long traces in {:.1?}\n",
        study.pairs.len(),
        start.elapsed()
    );

    // Figure 1: fraction of devices above the Nyquist rate, per metric.
    println!("{}", fig1::from_study(&study).render());

    // Figure 4: reduction-ratio CDFs (three representative panels printed;
    // all fourteen are computed).
    let f4 = fig4::from_study(&study);
    for kind in [
        MetricKind::Temperature,
        MetricKind::FcsErrors,
        MetricKind::LinkUtil,
    ] {
        if let Some(panel) = f4.panels.iter().find(|p| p.kind == kind) {
            if !panel.cdf.is_empty() {
                println!(
                    "[{}] reduction ratio: median {:.1}x, p90 {:.1}x, max {:.1}x  (n={})",
                    kind,
                    panel.cdf.quantile(0.5),
                    panel.cdf.quantile(0.9),
                    panel.cdf.quantile(1.0),
                    panel.cdf.len()
                );
            }
        }
    }
    println!();

    // Figure 5: box plot of Nyquist rates per metric.
    println!("{}", fig5::from_study(&study).render());

    // Headline statistics (§3.2 text).
    println!("{}", headline::from_study(&study).render());
}
