//! Quickstart: estimate a telemetry signal's Nyquist rate, downsample to it,
//! reconstruct, and check what was lost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sweetspot::prelude::*;
use sweetspot_dsp::fft::FftPlanner;

fn main() {
    // 1. A synthetic temperature device, polled the way operators do today
    //    (every 5 minutes). In production this trace would come from your
    //    monitoring system instead.
    let profile = MetricProfile::for_kind(MetricKind::Temperature);
    let device = DeviceTrace::synthesize(profile, 3, 42);
    let production_rate = profile.production_rate();
    let trace = device.ground_truth(production_rate, Seconds::from_days(4.0));
    println!(
        "device {}: {} samples at {} over 4 days",
        device.meta(),
        trace.len(),
        production_rate
    );

    // 2. What rate does the signal actually need? (§3.2 of the paper)
    let mut estimator = NyquistEstimator::paper_defaults();
    let nyquist = match estimator.estimate_series(&trace) {
        NyquistEstimate::Rate(rate) => {
            println!(
                "estimated Nyquist rate: {rate}  →  {:.0}x over-sampled today",
                production_rate / rate
            );
            rate
        }
        NyquistEstimate::Aliased => {
            println!("trace is already aliased — this device needs FASTER polling");
            return;
        }
    };

    // 3. Downsample to the Nyquist rate (with a little headroom), then
    //    reconstruct the full-rate signal via the paper's low-pass method
    //    (§4.3) and measure the damage.
    let mut planner = FftPlanner::new();
    let target = Hertz(nyquist.value() * 1.25);
    let (recon, report) = roundtrip(
        &mut planner,
        &trace,
        target,
        ReconstructionConfig::default(),
    );
    println!(
        "kept 1 of every {} samples; reconstructed {} points",
        report.factor,
        recon.len()
    );
    println!(
        "reconstruction error: L2 {:.3e}, interior NRMSE {:.3e}  (paper's Figure 6: L2 ≈ 0)",
        report.l2, report.interior_nrmse
    );

    // 4. Sanity-check with the dual-rate aliasing detector (§4.1): sample
    //    the device at a verification rate and at a non-integer companion
    //    rate (rate/φ); matching spectra below f2/2 mean nothing was lost.
    //    The companion stream only vouches for content below rate/(2φ), so
    //    verification needs ≥1.65× headroom over the Nyquist rate — the
    //    hidden cost of continuous verification (see
    //    `sweetspot::core::adaptive::MIN_VERIFY_HEADROOM`).
    //    The window must hold enough samples of the *slower* stream for a
    //    meaningful spectral comparison (the §4.2 controller enforces ≥64
    //    automatically; at these rates that is a few weeks of signal).
    let verify_rate = Hertz(nyquist.value() * sweetspot::core::adaptive::MIN_VERIFY_HEADROOM);
    let companion = sweetspot::core::aliasing::companion_rate(verify_rate);
    let window = Seconds(128.0 / companion.value());
    let fast = device.ground_truth(verify_rate, window);
    let slow = device.ground_truth(companion, window);
    let verdict = detect_aliasing(&fast, &slow, DualRateConfig::default());
    println!(
        "dual-rate verification at {verify_rate}: aliased = {} (max discrepancy {:.3})",
        verdict.aliased, verdict.max_discrepancy
    );
}
