//! Figures 6 and 7: dynamic adaptation on a temperature signal.
//!
//! A week of 5-minute temperature data with a mid-run link-flap episode: the
//! moving-window tracker infers the Nyquist rate over time (Figure 7), the
//! trace is downsampled to the inferred rate and reconstructed (Figure 6),
//! and the §4.2 controller runs live against the same device to show the
//! probe→steady→decrease cycle.
//!
//! ```sh
//! cargo run --release --example adaptive_temperature
//! ```

use sweetspot::analysis::experiments::{fig6, fig7};
use sweetspot::monitor::device::{DeviceSource, SimDevice};
use sweetspot::prelude::*;

fn main() {
    let seed = 0xF16;

    // Figure 7 first: the rate the signal *needs*, over time.
    println!("{}", fig7::run(seed, 7.0).render());

    // Figure 6: downsample to the inferred rate, reconstruct, compare.
    println!("{}", fig6::run(seed, 7.0).render());

    // And the §4.2 controller driving the same device live.
    let device = fig6::evented_device(seed);
    let mut sim = SimDevice::new(device);
    let mut controller = AdaptiveSampler::new(AdaptiveConfig {
        initial_rate: Hertz(1.0 / 300.0), // start at today's 5-minute polling
        min_rate: Hertz(1e-6),
        max_rate: Hertz(1.0 / 30.0),
        epoch: Seconds::from_hours(12.0),
        ..AdaptiveConfig::default()
    });
    let reports = {
        let mut source = DeviceSource(&mut sim);
        controller.run(&mut source, Seconds::from_days(7.0))
    };

    println!("§4.2 adaptive controller, 12-hour epochs over one week:");
    println!("  epoch  start      mode    rate         aliased  estimate");
    for r in &reports {
        println!(
            "  {:>5}  {:>8}  {:<6}  {:>11}  {:<7}  {}",
            r.index,
            format!("{:.1}d", r.start.value() / 86_400.0),
            format!("{:?}", r.mode),
            r.primary_rate.to_string(),
            r.aliased,
            r.estimate.map_or("—".into(), |e| e.to_string()),
        );
    }
    let total: usize = reports.iter().map(|r| r.samples_taken).sum();
    let fixed = (7.0 * 86_400.0 / 300.0) as usize;
    println!(
        "\n  controller acquired {total} samples (incl. verification stream); \
         fixed 5-minute polling would take {fixed}."
    );
}
