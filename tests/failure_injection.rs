//! Failure-injection integration tests: the pipeline under hostile inputs.
//!
//! Monitoring data is messy — lost samples, jittered timestamps, corrupt
//! readings, NaNs. These tests verify that the cleaning layer plus the
//! estimator stay correct (or fail loudly, never silently) under each fault.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sweetspot::prelude::*;
use sweetspot::telemetry::noise::Impairments;
use sweetspot::timeseries::clean::{clean, CleanConfig};

/// Ground-truth band-limited series for fault injection.
fn truth(n: usize) -> RegularSeries {
    RegularSeries::new(
        Seconds::ZERO,
        Seconds(30.0),
        (0..n)
            .map(|i| {
                let t = i as f64 * 30.0;
                50.0 + 5.0 * (2.0 * std::f64::consts::PI * 1e-4 * t).sin()
                    + 2.0 * (2.0 * std::f64::consts::PI * 8e-4 * t).sin()
            })
            .collect(),
    )
}

fn estimate_after(impairments: Impairments, seed: u64) -> NyquistEstimate {
    let t = truth(2880);
    let mut rng = StdRng::seed_from_u64(seed);
    let raw = impairments.apply(&mut rng, &t);
    let cleaned = clean(
        &raw,
        CleanConfig {
            interval: Some(Seconds(30.0)),
            outlier_mads: Some(8.0),
        },
    )
    .expect("cleanable");
    let mut est = NyquistEstimator::paper_defaults();
    est.estimate_series(&cleaned)
}

fn reference_rate() -> f64 {
    // The clean-path estimate: true edge 8e-4 ⇒ rate ≈ 1.6e-3.
    let mut est = NyquistEstimator::paper_defaults();
    est.estimate_series(&truth(2880))
        .rate()
        .expect("clean signal is not aliased")
        .value()
}

#[test]
fn clean_path_estimate_is_tight() {
    let r = reference_rate();
    assert!((1.5e-3..2.0e-3).contains(&r), "reference {r}");
}

#[test]
fn survives_five_percent_sample_loss() {
    let est = estimate_after(
        Impairments {
            drop_prob: 0.05,
            ..Impairments::none()
        },
        1,
    );
    let r = est.rate().expect("loss must not alias the estimate").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate() * 0.5,
        "estimate {r} drifted"
    );
}

#[test]
fn survives_timestamp_jitter() {
    let est = estimate_after(
        Impairments {
            jitter_frac: 0.3,
            ..Impairments::none()
        },
        2,
    );
    let r = est.rate().expect("jitter must not alias the estimate").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate() * 0.5,
        "estimate {r} drifted"
    );
}

#[test]
fn survives_corrupt_outliers_with_clipping() {
    let est = estimate_after(
        Impairments {
            corrupt_prob: 0.01,
            corrupt_magnitude: 1e6,
            ..Impairments::none()
        },
        3,
    );
    // MAD clipping (outlier_mads = 8) absorbs the corruption; the estimate
    // may widen but must stay below 4× the reference (corruption leaves
    // residual broadband energy at the clip level).
    let r = est.rate().expect("clipped corruption must not alias").value();
    assert!(r < reference_rate() * 4.0, "estimate {r} blew up");
}

#[test]
fn heavy_white_noise_degrades_to_aliased_not_nonsense() {
    // Noise at 50% of the signal amplitude: the spectrum floor swamps the
    // 1% budget. Acceptable outcomes: an "aliased" verdict (inspect this
    // trace) or a pessimistically high rate — never a rate *below* the
    // reference (which would cause silent information loss downstream).
    let est = estimate_after(
        Impairments {
            noise_std: 2.5,
            ..Impairments::none()
        },
        4,
    );
    match est {
        NyquistEstimate::Aliased => {}
        NyquistEstimate::Rate(r) => {
            assert!(
                r.value() >= reference_rate() * 0.9,
                "noise must not shrink the estimate: {r}"
            );
        }
    }
}

#[test]
fn all_nan_trace_is_rejected_by_cleaning() {
    let raw = IrregularSeries::new(
        (0..10).map(|i| Seconds(i as f64)).collect(),
        vec![f64::NAN; 10],
    );
    assert!(clean(&raw, CleanConfig::default()).is_err());
}

#[test]
fn combined_fault_storm() {
    // Everything at once, at realistic rates.
    let est = estimate_after(
        Impairments {
            noise_std: 0.05,
            quant_step: Some(0.5),
            drop_prob: 0.02,
            jitter_frac: 0.1,
            corrupt_prob: 0.002,
            corrupt_magnitude: 1e4,
        },
        5,
    );
    let r = est.rate().expect("realistic faults must be survivable").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate(),
        "estimate {r} vs reference {}",
        reference_rate()
    );
}
