//! Failure-injection integration tests: the pipeline under hostile inputs.
//!
//! Monitoring data is messy — lost samples, jittered timestamps, corrupt
//! readings, NaNs. These tests verify that the cleaning layer plus the
//! estimator stay correct (or fail loudly, never silently) under each fault.
//!
//! The second half moves up a level: whole-fleet lifecycle failures through
//! the `fleetsim` scenario axis — churn determinism across thread counts,
//! bounded post-reboot re-ramps, incident recovery, and the zero-allocation
//! steady state surviving 1% churn.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sweetspot::analysis::fleetsim::{
    self, member_config,
    scenario::{DeviceEvent, ScenarioEngine, ScenarioSpec},
    scheduler::SchedulerPolicy,
    FleetSimConfig,
};
use sweetspot::monitor::poller::{EpochScratch, FleetMember};
use sweetspot::prelude::*;
use sweetspot::telemetry::noise::Impairments;
use sweetspot::telemetry::scaled_work;
use sweetspot::timeseries::clean::{clean, CleanConfig};

std::thread_local! {
    // const-init + no Drop ⇒ the allocator hooks never themselves allocate
    // (see crates/analysis/tests/alloc_steady_state.rs for the pattern).
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// Ground-truth band-limited series for fault injection.
fn truth(n: usize) -> RegularSeries {
    RegularSeries::new(
        Seconds::ZERO,
        Seconds(30.0),
        (0..n)
            .map(|i| {
                let t = i as f64 * 30.0;
                50.0 + 5.0 * (2.0 * std::f64::consts::PI * 1e-4 * t).sin()
                    + 2.0 * (2.0 * std::f64::consts::PI * 8e-4 * t).sin()
            })
            .collect(),
    )
}

fn estimate_after(impairments: Impairments, seed: u64) -> NyquistEstimate {
    let t = truth(2880);
    let mut rng = StdRng::seed_from_u64(seed);
    let raw = impairments.apply(&mut rng, &t);
    let cleaned = clean(
        &raw,
        CleanConfig {
            interval: Some(Seconds(30.0)),
            outlier_mads: Some(8.0),
        },
    )
    .expect("cleanable");
    let mut est = NyquistEstimator::paper_defaults();
    est.estimate_series(&cleaned)
}

fn reference_rate() -> f64 {
    // The clean-path estimate: true edge 8e-4 ⇒ rate ≈ 1.6e-3.
    let mut est = NyquistEstimator::paper_defaults();
    est.estimate_series(&truth(2880))
        .rate()
        .expect("clean signal is not aliased")
        .value()
}

#[test]
fn clean_path_estimate_is_tight() {
    let r = reference_rate();
    assert!((1.5e-3..2.0e-3).contains(&r), "reference {r}");
}

#[test]
fn survives_five_percent_sample_loss() {
    let est = estimate_after(
        Impairments {
            drop_prob: 0.05,
            ..Impairments::none()
        },
        1,
    );
    let r = est.rate().expect("loss must not alias the estimate").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate() * 0.5,
        "estimate {r} drifted"
    );
}

#[test]
fn survives_timestamp_jitter() {
    let est = estimate_after(
        Impairments {
            jitter_frac: 0.3,
            ..Impairments::none()
        },
        2,
    );
    let r = est.rate().expect("jitter must not alias the estimate").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate() * 0.5,
        "estimate {r} drifted"
    );
}

#[test]
fn survives_corrupt_outliers_with_clipping() {
    let est = estimate_after(
        Impairments {
            corrupt_prob: 0.01,
            corrupt_magnitude: 1e6,
            ..Impairments::none()
        },
        3,
    );
    // MAD clipping (outlier_mads = 8) absorbs the corruption; the estimate
    // may widen but must stay below 4× the reference (corruption leaves
    // residual broadband energy at the clip level).
    let r = est.rate().expect("clipped corruption must not alias").value();
    assert!(r < reference_rate() * 4.0, "estimate {r} blew up");
}

#[test]
fn heavy_white_noise_degrades_to_aliased_not_nonsense() {
    // Noise at 50% of the signal amplitude: the spectrum floor swamps the
    // 1% budget. Acceptable outcomes: an "aliased" verdict (inspect this
    // trace) or a pessimistically high rate — never a rate *below* the
    // reference (which would cause silent information loss downstream).
    let est = estimate_after(
        Impairments {
            noise_std: 2.5,
            ..Impairments::none()
        },
        4,
    );
    match est {
        NyquistEstimate::Aliased => {}
        NyquistEstimate::Rate(r) => {
            assert!(
                r.value() >= reference_rate() * 0.9,
                "noise must not shrink the estimate: {r}"
            );
        }
    }
}

#[test]
fn all_nan_trace_is_rejected_by_cleaning() {
    let raw = IrregularSeries::new(
        (0..10).map(|i| Seconds(i as f64)).collect(),
        vec![f64::NAN; 10],
    );
    assert!(clean(&raw, CleanConfig::default()).is_err());
}

#[test]
fn combined_fault_storm() {
    // Everything at once, at realistic rates.
    let est = estimate_after(
        Impairments {
            noise_std: 0.05,
            quant_step: Some(0.5),
            drop_prob: 0.02,
            jitter_frac: 0.1,
            corrupt_prob: 0.002,
            corrupt_magnitude: 1e4,
            dup_prob: 0.01,
            delay_prob: 0.01,
        },
        5,
    );
    let r = est.rate().expect("realistic faults must be survivable").value();
    assert!(
        (r - reference_rate()).abs() < reference_rate(),
        "estimate {r} vs reference {}",
        reference_rate()
    );
}

// ---------------------------------------------------------------------------
// Fleet-level lifecycle failures (the `--scenario` axis).
// ---------------------------------------------------------------------------

#[test]
fn churned_fleet_is_byte_identical_across_thread_counts() {
    // Churn plus lossy reports under a binding water-fill budget: the fault
    // schedule is a pure function of the scenario seed, so worker count
    // must not move a single bit of any observable output.
    let spec = ScenarioSpec {
        seed: 0xC0FFEE,
        ..ScenarioSpec::parse("churn+lossy-reports").expect("preset parses")
    };
    let cfg = |threads| FleetSimConfig {
        devices: Some(60),
        days: 6.0,
        threads,
        scenario: spec,
        ..FleetSimConfig::default()
    };
    let serial = fleetsim::run_policy(&cfg(1), SchedulerPolicy::WaterFill, 80.0);
    let stats = serial.scenario.as_ref().expect("scenario stats");
    assert!(
        stats.counters.leaves > 0 && stats.counters.dropped_reports > 0,
        "scenario was dealt no events: {:?}",
        stats.counters
    );
    let parallel = fleetsim::run_policy(&cfg(4), SchedulerPolicy::WaterFill, 80.0);
    assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
    assert_eq!(serial.device_quality, parallel.device_quality);
    assert_eq!(serial.quality, parallel.quality);
    assert_eq!(serial.scenario, parallel.scenario);
}

#[test]
fn reboot_reramp_is_bounded_by_the_remembered_max() {
    // A rebooted device restarts from the production default and re-ramps
    // using the controller's remembered max — never probing past the
    // headroom over what it ever needed, and re-settling within a few
    // epochs instead of re-walking the whole discovery ladder.
    let window = Seconds::from_days(1.0);
    let work = scaled_work(28);
    let (profile, device) = work[5];
    let mut member = FleetMember::new(
        5,
        DeviceTrace::synthesize(profile, device, 2),
        member_config(&profile, window),
    );
    let mut scratch = EpochScratch::new();
    let step = |member: &mut FleetMember, scratch: &mut EpochScratch, epoch: usize| {
        let start = Seconds(epoch as f64 * window.value());
        let granted = member.requested_rate();
        member.step_epoch(scratch, start, granted, window);
    };
    for epoch in 0..6 {
        step(&mut member, &mut scratch, epoch);
    }
    let settled = member.requested_rate().value();
    let remembered = member
        .sampler()
        .remembered_max()
        .expect("a settled controller remembers its max")
        .value();
    // For an oversampled device the remembered max sits far below the
    // production default, and a reboot restarts *at* that default — so the
    // bound is "never above max(production default, remembered + headroom)".
    let config = member_config(&profile, window);
    let ceiling = (remembered * config.headroom)
        .max(config.initial_rate.value())
        .min(config.max_rate.value());

    member.reboot();
    assert_eq!(
        member.requested_rate(),
        config.initial_rate,
        "a reboot restarts from the production default"
    );
    for epoch in 6..12 {
        assert!(
            member.requested_rate().value() <= ceiling * (1.0 + 1e-9),
            "epoch {epoch}: re-ramp {} exceeded remembered ceiling {ceiling}",
            member.requested_rate().value()
        );
        step(&mut member, &mut scratch, epoch);
    }
    let resettled = member.requested_rate().value();
    assert!(
        resettled >= settled * 0.5 && resettled <= settled * 2.0,
        "re-ramp did not converge near the pre-reboot rate: {resettled} vs {settled}"
    );
}

#[test]
fn incident_recovery_fits_a_fixed_epoch_budget() {
    // A 3× regime incident mid-study: the uncapped fleet must re-discover
    // the widened band on its own and regain 95% of its pre-incident
    // coverage within a handful of epochs of the regime reverting. (A
    // small fraction of controllers can stay aliasing-deadlocked after the
    // revert, so the 95% threshold — not 100% — is the recovery bar.)
    let cfg = FleetSimConfig {
        devices: Some(64),
        days: 16.0,
        threads: 0,
        scenario: ScenarioSpec {
            seed: 7,
            ..ScenarioSpec::incident()
        },
        ..FleetSimConfig::default()
    };
    let out = fleetsim::run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
    let stats = out.scenario.expect("scenario stats");
    assert_eq!(stats.incident, Some(4..10));
    let baseline = stats.baseline_coverage.expect("pre-incident baseline");
    assert!(baseline > 0.9, "implausible baseline {baseline}");
    let worst_during = stats.epoch_mean_coverage[4..10]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst_during < baseline - 0.05,
        "the incident must actually dent coverage: {worst_during} vs baseline {baseline}"
    );
    let ttr = stats
        .time_to_recover
        .expect("an uncapped fleet must recover from the incident");
    assert!(ttr <= 4, "recovery took {ttr} epochs (budget: 4)");
}

#[test]
fn settled_fleet_under_one_percent_churn_stays_allocation_free() {
    // The zero-allocation steady state must survive lifecycle churn:
    // devices leaving (slots held, request 0), rejoining (reboot + re-ramp
    // through already-planned rates), and reports dropping or arriving
    // late. Mirrors crates/analysis/tests/alloc_steady_state.rs, with the
    // scenario engine dealt in. Serial, because the counter is per-thread —
    // exactly one worker's view of the sharded engine. Grants are uncapped:
    // under a *binding* water-fill budget every churn event moves the water
    // level and hands bystander devices never-before-granted rates, whose
    // first FFT plan legitimately allocates once — that is plan-cache
    // warming, not a churn leak, and it would mask the regression this
    // test guards against.
    let seed: u64 = 2;
    let window = Seconds::from_days(1.0);
    let work = scaled_work(28);
    let n = work.len();
    let spec = ScenarioSpec {
        leave_prob: 0.01,
        join_prob: 0.25,
        reboot_prob: 0.005,
        drop_prob: 0.01,
        delay_prob: 0.01,
        seed: 0xFA11,
        ..ScenarioSpec::none()
    };
    let engine = ScenarioEngine::new(spec, 40);

    let mut members: Vec<FleetMember> = work
        .iter()
        .enumerate()
        .map(|(i, &(profile, device))| {
            FleetMember::new(
                i,
                DeviceTrace::synthesize(profile, device, seed),
                member_config(&profile, window),
            )
        })
        .collect();
    let production: Vec<f64> = work.iter().map(|(p, _)| p.production_rate().value()).collect();
    let weights = vec![1.0; n];

    let mut sched = SchedulerPolicy::Uncapped.scheduler(&weights, &production);
    let mut requests = vec![0.0f64; n];
    let mut grants: Vec<f64> = Vec::with_capacity(n);
    let mut active = vec![true; n];
    let mut events = vec![DeviceEvent::Healthy; n];
    let mut scratch = EpochScratch::new();

    let mut epoch_body = |epoch: usize| {
        let start = Seconds(epoch as f64 * window.value());
        for (i, member) in members.iter_mut().enumerate() {
            let ev = engine.deal(epoch, i, active[i]);
            match ev {
                DeviceEvent::Absent => active[i] = false,
                DeviceEvent::Reboot => {
                    active[i] = true;
                    member.reboot();
                }
                _ => {}
            }
            events[i] = ev;
        }
        for (i, (r, m)) in requests.iter_mut().zip(members.iter()).enumerate() {
            *r = if active[i] { m.requested_rate().value() } else { 0.0 };
        }
        sched.allocate(&requests, f64::INFINITY, &mut grants);
        for (i, m) in members.iter_mut().enumerate() {
            let report = match events[i] {
                DeviceEvent::Absent => continue,
                DeviceEvent::ReportDropped => m.note_missed_epoch(start, Hertz(grants[i]), window),
                DeviceEvent::ReportDelayed => {
                    m.step_epoch_delayed(&mut scratch, start, Hertz(grants[i]), window)
                }
                _ => m.step_epoch(&mut scratch, start, Hertz(grants[i]), window),
            };
            std::hint::black_box(report.samples_taken);
        }
    };

    // Warm-up: controllers settle (delayed-report epochs push the slowest
    // descent past epoch 14), every realized trace length passes the
    // planner once, and the churn schedule exercises reboots and faults.
    for epoch in 0..20 {
        epoch_body(epoch);
    }
    // Steady state under churn: whole epochs — event dealing, request
    // gathering, scheduling, and every member's (possibly faulted) epoch —
    // must not touch the heap.
    for epoch in 20..40 {
        let count = allocations_during(|| epoch_body(epoch));
        assert_eq!(
            count, 0,
            "churned steady-state epoch {epoch} must not allocate"
        );
    }
}
