//! End-to-end tests of the `sweetspot` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweetspot"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sweetspot-cli-{name}-{}.csv", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// A slow tone polled every 30 s for a day — heavily over-sampled.
fn oversampled_csv() -> String {
    let mut csv = String::from("time_seconds,value\n");
    for i in 0..2880 {
        let t = i as f64 * 30.0;
        let v = 50.0 + 5.0 * (2.0 * std::f64::consts::PI * 2e-5 * t).sin();
        csv.push_str(&format!("{t},{v}\n"));
    }
    csv
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("analyze"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn analyze_recommends_reduction_for_oversampled_trace() {
    let path = write_temp("oversampled", &oversampled_csv());
    let out = bin().arg("analyze").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("estimated Nyquist rate"), "{stdout}");
    assert!(stdout.contains("REDUCE"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = bin().arg("analyze").arg("/nonexistent/trace.csv").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn analyze_rejects_malformed_flags() {
    let path = write_temp("flags", &oversampled_csv());
    let out = bin()
        .arg("analyze")
        .arg(&path)
        .arg("--cutoff") // missing value
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(path).ok();
}

#[test]
fn demo_pipes_into_analyze() {
    let out = bin()
        .args(["demo", "--metric", "Temperature", "--days", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let csv = String::from_utf8_lossy(&out.stdout);
    assert!(csv.starts_with("time_seconds,value"));
    assert!(csv.lines().count() > 500);

    let path = write_temp("demo", &csv);
    let out = bin().arg("analyze").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("REDUCE") || stdout.contains("KEEP") || stdout.contains("INSPECT"),
        "{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn demo_rejects_unknown_metric() {
    let out = bin().args(["demo", "--metric", "nonsense"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown metric"));
}

#[test]
fn track_emits_csv_series() {
    // 2 days at 30 s; 6h windows step 1h.
    let path = write_temp("track", &{
        let mut csv = String::new();
        for i in 0..5760 {
            let t = i as f64 * 30.0;
            let v = (2.0 * std::f64::consts::PI * 3e-4 * t).sin();
            csv.push_str(&format!("{t},{v}\n"));
        }
        csv
    });
    let out = bin()
        .args(["track"])
        .arg(&path)
        .args(["--window", "21600", "--step", "3600"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "window_start_seconds,nyquist_rate_hz");
    assert!(lines.len() > 20, "{} lines", lines.len());
    // Rates near 2×3e-4.
    let rate: f64 = lines[1].split(',').nth(1).unwrap().parse().unwrap();
    assert!((rate - 6e-4).abs() < 2e-4, "rate {rate}");
    std::fs::remove_file(path).ok();
}

#[test]
fn study_prints_figure_and_headline() {
    let out = bin()
        .args(["study", "--devices", "3", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 1"));
    assert!(stdout.contains("Headline statistics"));
    assert!(stdout.contains("42")); // 14 metrics × 3 devices
}

#[test]
fn study_output_is_byte_identical_across_thread_counts() {
    // The sharded engine's core guarantee: `--threads N` only changes how the
    // work is partitioned, never what is computed.
    let run = |threads: &str| {
        let out = bin()
            .args(["study", "--devices", "4", "--seed", "11", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads={threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "--threads 4 diverged from --threads 1");
    assert_eq!(serial, run("3"), "--threads 3 diverged from --threads 1");
}

#[test]
fn study_timing_prints_phase_split_on_stderr() {
    let timed = bin()
        .args(["study", "--devices", "2", "--seed", "3", "--timing"])
        .output()
        .unwrap();
    assert!(
        timed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&timed.stderr)
    );
    let stderr = String::from_utf8_lossy(&timed.stderr);
    let timing_line = stderr
        .lines()
        .find(|l| l.starts_with("timing:"))
        .unwrap_or_else(|| panic!("no timing line in: {stderr}"));
    for phase in ["synthesis", "clean", "estimate", "total"] {
        assert!(timing_line.contains(phase), "missing {phase}: {timing_line}");
    }
    assert!(timing_line.contains("pairs"), "{timing_line}");

    // Timing must be observability-only: stdout stays byte-identical to a
    // run without the flag (CI's determinism smoke compares stdout).
    let plain = bin()
        .args(["study", "--devices", "2", "--seed", "3"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    assert_eq!(timed.stdout, plain.stdout, "--timing must not alter stdout");
    assert!(
        !String::from_utf8_lossy(&plain.stderr).contains("timing:"),
        "timing must be opt-in"
    );
}

#[test]
fn study_paper_scale_flag_is_accepted_with_other_flags() {
    // `--paper-scale` is a bare switch among `--name value` pairs; the
    // parser must not trip over the mix. (The full 1613-pair run is covered
    // by the release-binary test below and CI's determinism smoke.)
    let out = bin()
        .args(["study", "--paper-scale", "--bogus"])
        .output()
        .unwrap();
    // Removing --paper-scale leaves a dangling `--bogus` pair: clean error,
    // which proves the switch was extracted before pair parsing.
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("pairs"));
}

#[test]
#[ignore = "runs the full 1613-pair study twice; exercised by CI's release-binary smoke step"]
fn study_paper_scale_output_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = bin()
            .args(["study", "--paper-scale", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads={threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run("2");
    assert_eq!(a, run("5"), "--threads 5 diverged from --threads 2");
    let text = String::from_utf8_lossy(&a).to_string();
    // Match the measured count field: the "(paper: 1613)" caption appears in
    // every study output and would make a bare contains("1613") vacuous.
    let pairs_line = text
        .lines()
        .find(|l| l.contains("metric-device pairs"))
        .expect("headline must report the pair count");
    assert!(
        pairs_line.split(':').nth(1).is_some_and(|v| v.trim_start().starts_with("1613")),
        "paper scale must analyze 1613 pairs, got: {pairs_line}"
    );
}

#[test]
fn unknown_flags_are_rejected_with_diagnostics() {
    for args in [
        vec!["study", "--bogus", "1"],
        vec!["fleetsim", "--nope", "2"],
        vec!["track", "/tmp/x.csv", "--cutoff", "0.9"],
        vec!["demo", "--threads", "4"],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag") && stderr.contains("valid:"),
            "{args:?}: {stderr}"
        );
    }
    // analyze with an unknown flag fails before touching the file system.
    let path = write_temp("unknown-flag", &oversampled_csv());
    let out = bin()
        .args(["analyze"])
        .arg(&path)
        .args(["--bogus", "7"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --bogus"));
    std::fs::remove_file(path).ok();
}

#[test]
fn study_json_emits_machine_readable_output() {
    let out = bin()
        .args(["study", "--devices", "2", "--seed", "9", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"pairs\":28"));
    assert!(line.contains("\"oversampled_fraction\":"));
    assert!(line.contains("\"per_metric\":["));
    assert!(!stdout.contains("Figure 1"), "--json must replace the tables");

    // Without --json the table output is unchanged.
    let plain = bin()
        .args(["study", "--devices", "2", "--seed", "9"])
        .output()
        .unwrap();
    let plain_stdout = String::from_utf8_lossy(&plain.stdout);
    assert!(plain_stdout.contains("Figure 1"));
    assert!(!plain_stdout.contains("\"pairs\""));
}

#[test]
fn fleetsim_prints_frontier_for_all_policies() {
    let out = bin()
        .args(["fleetsim", "--devices", "28", "--days", "3", "--seed", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fleet simulation: 28 devices"));
    for policy in ["uncapped", "uniform", "fair", "waterfill"] {
        assert!(stdout.contains(policy), "missing {policy}: {stdout}");
    }
    assert!(stdout.contains("cov/kcost"));
    assert!(stdout.contains("steady uncapped demand"));
}

#[test]
fn fleetsim_single_point_policy_and_json() {
    let out = bin()
        .args([
            "fleetsim", "--devices", "28", "--days", "2", "--seed", "5", "--budget", "9000",
            "--policy", "waterfill", "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"policy\":\"waterfill\""));
    assert!(line.contains("\"budget_per_epoch\":9000"));
    assert!(line.contains("\"mean_coverage\":"));
}

#[test]
fn fleetsim_rejects_zero_devices() {
    let out = bin()
        .args(["fleetsim", "--devices", "0", "--days", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("positive fleet size"), "{stderr}");
}

#[test]
fn fleetsim_scaled_fleet_is_balanced_beyond_per_metric_counts() {
    // 30 pairs round-robin: not a multiple of 14, still runs and reports
    // exactly the requested fleet size.
    let out = bin()
        .args([
            "fleetsim", "--devices", "30", "--days", "1", "--seed", "5", "--budget", "9000",
            "--policy", "fair",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fleet simulation: 30 devices"), "{stdout}");
}

#[test]
fn fleetsim_rejects_bad_policy() {
    let out = bin()
        .args(["fleetsim", "--devices", "28", "--policy", "roulette"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown policy") && stderr.contains("waterfill"),
        "{stderr}"
    );
}

#[test]
fn fleetsim_scenario_diagnostics_name_the_token_and_list_the_vocabulary() {
    // A misspelled preset must be named verbatim in the error, and the
    // message must teach the full vocabulary: every valid preset and every
    // key=value override key, so the user never needs the docs to recover.
    let out = bin()
        .args(["fleetsim", "--devices", "14", "--scenario", "chrun+incident"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario term 'chrun'"), "{stderr}");
    for preset in [
        "none", "churn", "incident", "lossy-reports", "cost-skew", "duty", "battery",
        "diurnal", "staggered",
    ] {
        assert!(stderr.contains(preset), "missing preset {preset}: {stderr}");
    }
    for key in ["drop", "duty-period", "incident-stagger", "cost-spread"] {
        assert!(stderr.contains(key), "missing key {key}: {stderr}");
    }

    // A bad key inside a key=value term is named too — both the key and the
    // offending term — with the same vocabulary listing.
    let out = bin()
        .args(["fleetsim", "--devices", "14", "--scenario", "drop=0.1+frobs=2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown scenario key 'frobs'") && stderr.contains("'frobs=2'"),
        "{stderr}"
    );
    assert!(stderr.contains("duty-frac") && stderr.contains("staggered"), "{stderr}");

    // A malformed number names the term and the unparsable value.
    let out = bin()
        .args(["fleetsim", "--devices", "14", "--scenario", "drop=lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("'drop=lots'") && stderr.contains("bad number 'lots'"),
        "{stderr}"
    );
}

#[test]
fn fleetsim_rejects_out_of_range_recovery_budget_frac() {
    for bad in ["1.5", "-0.1", "nan"] {
        let out = bin()
            .args(["fleetsim", "--devices", "14", "--recovery-budget-frac", bad])
            .output()
            .unwrap();
        assert!(!out.status.success(), "--recovery-budget-frac {bad} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("fraction in [0, 1]"), "{stderr}");
    }
}

#[test]
fn fleetsim_output_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = bin()
            .args([
                "fleetsim", "--devices", "42", "--days", "3", "--seed", "11", "--budget", "20000",
                "--threads", threads,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads={threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "--threads 4 diverged from --threads 1");
    assert_eq!(serial, run("3"), "--threads 3 diverged from --threads 1");
}

#[test]
fn fleetsim_timing_is_stderr_only() {
    let timed = bin()
        .args(["fleetsim", "--devices", "28", "--days", "2", "--seed", "3", "--timing"])
        .output()
        .unwrap();
    assert!(timed.status.success());
    let stderr = String::from_utf8_lossy(&timed.stderr);
    let timing_line = stderr
        .lines()
        .find(|l| l.starts_with("timing:"))
        .unwrap_or_else(|| panic!("no timing line in: {stderr}"));
    for phase in ["build", "step", "schedule", "total"] {
        assert!(timing_line.contains(phase), "missing {phase}: {timing_line}");
    }
    let plain = bin()
        .args(["fleetsim", "--devices", "28", "--days", "2", "--seed", "3"])
        .output()
        .unwrap();
    assert_eq!(timed.stdout, plain.stdout, "--timing must not alter stdout");
}

#[test]
fn analyze_reports_diagnostic_for_all_nan_trace() {
    // A fully-NaN trace must exit with a cleaning diagnostic, not a panic.
    let mut csv = String::from("time_seconds,value\n");
    for i in 0..32 {
        csv.push_str(&format!("{},nan\n", i * 30));
    }
    let path = write_temp("all-nan", &csv);
    let out = bin().arg("analyze").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("too few valid samples"),
        "want a cleaning diagnostic, got: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn analyze_tolerates_comments_before_header() {
    let csv = format!("# exported trace\n\n{}", oversampled_csv());
    let path = write_temp("comment-header", &csv);
    let out = bin().arg("analyze").arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(path).ok();
}
