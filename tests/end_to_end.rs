//! Cross-crate integration tests: the full paper pipeline, end to end.
//!
//! Each test exercises a chain that no single crate covers alone —
//! telemetry → cleaning → estimation → decision → simulation → accounting.

use sweetspot::analysis::study::{FleetStudy, StudyConfig};
use sweetspot::monitor::device::{DeviceSource, SimDevice};
use sweetspot::monitor::sweep::{knee_point, rate_sweep};
use sweetspot::prelude::*;

#[test]
fn fleet_study_pipeline_reproduces_paper_shape() {
    let study = FleetStudy::run(StudyConfig {
        fleet: FleetConfig {
            seed: 0xE2E1,
            devices_per_metric: 10,
            trace_duration: Seconds::from_days(1.0),
        },
        ..StudyConfig::default()
    });
    let s = study.summary();
    assert_eq!(s.pairs, 140);
    // The §3.2 headline shape: most pairs over-sampled, a visible minority
    // under-sampled, a heavy tail of large reductions.
    assert!(s.oversampled_fraction > 0.7, "{s:?}");
    assert!(s.undersampled_fraction > 0.03, "{s:?}");
    assert!(s.reducible_100x > 0.2, "{s:?}");
    assert!(s.reducible_1000x > 0.05, "{s:?}");
}

#[test]
fn measured_traces_round_trip_through_cleaning() {
    // telemetry (jitter + drops) → clean → regular grid at nominal interval.
    let profile = MetricProfile::for_kind(MetricKind::LinkUtil);
    let dev = DeviceTrace::synthesize(profile, 1, 0xE2E2);
    let raw = dev.production_trace(Seconds::from_hours(12.0));
    let cleaned = sweetspot::timeseries::clean::clean(
        &raw,
        sweetspot::timeseries::clean::CleanConfig {
            interval: Some(profile.poll_interval),
            outlier_mads: Some(8.0),
        },
    )
    .expect("cleanable");
    assert_eq!(cleaned.interval(), profile.poll_interval);
    // Full half-day at 30s = 1440 + fence-post; drops are re-filled.
    assert!(cleaned.len() >= 1440, "{}", cleaned.len());
}

#[test]
fn adaptive_controller_beats_fixed_polling_on_cost() {
    // A well-sampled temperature device: the controller should settle far
    // below the 5-minute production rate and spend fewer samples.
    let profile = MetricProfile::for_kind(MetricKind::Temperature);
    let dev = (0..50)
        .map(|i| DeviceTrace::synthesize(profile, i, 0xE2E3))
        .find(|d| {
            !d.is_undersampled_at_production_rate()
                && d.true_band_edge().value() < 2e-4
                && d.model().total_amplitude() > 10.0
        })
        .expect("suitable device");
    let mut sim = SimDevice::new(dev);
    let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
        initial_rate: Hertz(1.0 / 300.0),
        min_rate: Hertz(1e-6),
        max_rate: Hertz(1.0 / 30.0),
        epoch: Seconds::from_hours(12.0),
        ..AdaptiveConfig::default()
    });
    let total = Seconds::from_days(7.0);
    let reports = {
        let mut source = DeviceSource(&mut sim);
        ctl.run(&mut source, total)
    };
    let spent = sweetspot::core::adaptive::total_samples(&reports);
    let fixed = (total.value() / 300.0) as usize;
    assert!(
        spent < fixed,
        "controller spent {spent} samples, fixed polling {fixed}"
    );
    // And it must end in steady state, not stuck probing.
    assert_eq!(reports.last().unwrap().mode, sweetspot::core::adaptive::Mode::Steady);
}

#[test]
fn sweet_spot_sweep_orders_cost_and_quality() {
    let system = MonitoringSystem::default();
    let mut devices: Vec<SimDevice> = (0..2)
        .map(|i| {
            SimDevice::new(DeviceTrace::synthesize(
                MetricProfile::for_kind(MetricKind::Temperature),
                i,
                0xE2E4,
            ))
        })
        .collect();
    let points = rate_sweep(
        &system,
        &mut devices,
        &[0.02, 0.2, 1.0],
        Seconds::from_days(2.0),
    );
    // Cost ordering is strict; quality ordering holds end-to-end.
    assert!(points[0].cost < points[1].cost && points[1].cost < points[2].cost);
    assert!(
        points[2].nrmse <= points[0].nrmse,
        "production should beat 0.02x: {points:?}"
    );
    assert!(knee_point(&points).is_some());
}

#[test]
fn posteriori_policy_preserves_reconstruction_quality() {
    let system = MonitoringSystem::default();
    let duration = Seconds::from_days(2.0);
    let mk = |idx| {
        SimDevice::new(DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            idx,
            0xE2E5,
        ))
    };
    // Same device identity for both policies (fresh noise streams).
    let base = system.run_device(&mut mk(2), &Policy::ProductionDefault, duration);
    let post = system.run_device(
        &mut mk(2),
        &Policy::PosterioriNyquist { headroom: 1.25 },
        duration,
    );
    let qb = base.quality.expect("base evaluable");
    let qp = post.quality.expect("posteriori evaluable");
    // Storage shrinks…
    assert!(post.cost.samples_stored < base.cost.samples_stored);
    // …while reconstruction quality stays in the same class (the 99% energy
    // cutoff bounds what can be lost).
    assert!(
        qp.nrmse < qb.nrmse * 4.0 + 0.05,
        "posteriori {} vs base {}",
        qp.nrmse,
        qb.nrmse
    );
}

#[test]
fn undersampled_device_is_caught_by_dual_rate_but_not_by_one_trace() {
    // The §4.1 motivation, end to end: find a truly under-sampled device;
    // the single production trace yields a (wrong) plausible rate or an
    // aliased verdict, while dual-rate sampling detects the problem
    // decisively.
    let profile = MetricProfile::for_kind(MetricKind::LinkUtil);
    let dev = (0..100)
        .map(|i| DeviceTrace::synthesize(profile, i, 0xE2E6))
        .find(|d| d.is_undersampled_at_production_rate())
        .expect("undersampled device");

    let duration = Seconds::from_days(2.0);
    let primary = profile.production_rate();
    let fast = dev.ground_truth(primary, duration);
    let slow = dev.ground_truth(
        sweetspot::core::aliasing::companion_rate(primary),
        duration,
    );
    let verdict = detect_aliasing(&fast, &slow, DualRateConfig::default());
    assert!(verdict.aliased, "dual-rate must catch it: {verdict:?}");

    let mut est = NyquistEstimator::paper_defaults();
    if let NyquistEstimate::Rate(r) = est.estimate_series(&fast) {
        // Whatever the single trace claims, it cannot reach the true rate.
        assert!(r.value() < dev.true_nyquist_rate().value());
    }
}

#[test]
fn figure_drivers_run_at_reduced_scale() {
    use sweetspot::analysis::experiments::{fig2, fig3, headline};
    let f2 = fig2::run(100.0, &[400.0, 150.0], 2.0);
    assert_eq!(f2.cases.len(), 2);
    assert!(!f2.cases[0].aliased && f2.cases[1].aliased);

    let f3 = fig3::run(1.0);
    assert!(f3.variants[0].reconstruction_nrmse < f3.variants[2].reconstruction_nrmse);

    let h = headline::run(StudyConfig {
        fleet: FleetConfig {
            seed: 0xE2E7,
            devices_per_metric: 3,
            trace_duration: Seconds::from_days(1.0),
        },
        ..StudyConfig::default()
    });
    assert_eq!(h.summary.pairs, 42);
    assert!(h.render().contains("paper"));
}
