//! Trace pre-cleaning.
//!
//! §3.2 of the paper: *"In practice, monitoring systems do not produce
//! perfectly sampled signals — samples are not always spaced at equi-distant
//! points in time. In such situations, we pre-clean the signal using nearest
//! neighbor re-sampling; that is, we add values for missing samples based on
//! nearby samples."*
//!
//! This module implements that re-gridding plus the mundane hygiene around
//! it: dropping NaN readings (lost measurements), discarding corrupt outliers
//! with a robust MAD rule (on by default, see [`CleanConfig`]), and a
//! one-call [`clean`] pipeline. Malformed inputs — empty traces, traces that
//! are all-NaN, non-positive grid intervals — come back as [`CleanError`]s,
//! never panics, so a corrupt CSV fed to the CLI dies with a diagnostic
//! instead of a backtrace.

use crate::series::{IrregularSeries, RegularSeries};
use crate::time::Seconds;
use std::fmt;

/// Configuration for the [`clean`] pipeline.
#[derive(Debug, Clone, Copy)]
pub struct CleanConfig {
    /// Target re-grid interval. `None` uses the trace's median interval.
    pub interval: Option<Seconds>,
    /// Discard values further than this many (scaled) MADs from the median —
    /// they are treated as lost samples and re-filled by the re-gridding
    /// step. `None` disables outlier handling. (Discarding beats clamping:
    /// a clamped corrupt reading still leaves a large impulse that pollutes
    /// the spectrum; see [`clip_outliers`] if clamping is what you want.)
    ///
    /// The default is `Some(8.0)` — wide enough that legitimate spikes and
    /// diurnal swings survive untouched, tight enough to discard the
    /// order-of-magnitude corruption §3.2 worries about.
    pub outlier_mads: Option<f64>,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            interval: None,
            outlier_mads: Some(8.0),
        }
    }
}

/// Why a trace could not be cleaned/re-gridded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CleanError {
    /// Fewer than 2 valid samples remained — there is no signal to analyze.
    /// Carries the number of valid samples found.
    TooSparse(usize),
    /// The series still contains NaN/infinite values (call [`drop_invalid`]
    /// before [`regularize`]).
    NonFinite,
    /// The re-grid interval is not a positive finite number of seconds.
    BadInterval(f64),
    /// The configured MAD multiple is not positive.
    BadOutlierMads(f64),
}

impl fmt::Display for CleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleanError::TooSparse(n) => {
                write!(f, "too few valid samples to analyze ({n} after cleaning)")
            }
            CleanError::NonFinite => {
                write!(f, "trace contains NaN/infinite values; drop invalid samples first")
            }
            CleanError::BadInterval(s) => {
                write!(f, "re-grid interval must be a positive number of seconds, got {s}")
            }
            CleanError::BadOutlierMads(m) => {
                write!(f, "outlier MAD multiple must be positive, got {m}")
            }
        }
    }
}

impl std::error::Error for CleanError {}

/// Drops samples whose value is NaN or infinite (lost/corrupt measurements).
pub fn drop_invalid(series: &IrregularSeries) -> IrregularSeries {
    let pairs: Vec<(Seconds, f64)> = series
        .iter()
        .filter(|(_, v)| v.is_finite())
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Clips values further than `mads` scaled median-absolute-deviations from
/// the median to that bound. Robust to the isolated corrupt readings the
/// paper worries about in §3.2 ("data corruption that may have lead to an
/// incorrect assessment").
///
/// Uses the 1.4826 normal-consistency scaling. If the MAD is zero (more than
/// half the samples identical), the series is returned unchanged.
///
/// # Panics
/// Panics if `mads` is not positive.
pub fn clip_outliers(series: &IrregularSeries, mads: f64) -> IrregularSeries {
    assert!(mads > 0.0, "mads must be positive");
    let finite: Vec<f64> = series.values().iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return series.clone();
    }
    let median = median_of(&finite);
    let mut deviations: Vec<f64> = finite.iter().map(|v| (v - median).abs()).collect();
    let mad = median_of_mut(&mut deviations) * 1.4826;
    if mad <= 0.0 {
        return series.clone();
    }
    let lo = median - mads * mad;
    let hi = median + mads * mad;
    let pairs = series
        .iter()
        .map(|(t, v)| (t, if v.is_finite() { v.clamp(lo, hi) } else { v }))
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Removes values further than `mads` scaled median-absolute-deviations from
/// the median — corrupt readings are treated as *lost* (dropped), to be
/// re-filled by [`regularize`]. If the MAD is zero, the series is returned
/// unchanged.
///
/// # Panics
/// Panics if `mads` is not positive.
pub fn drop_outliers(series: &IrregularSeries, mads: f64) -> IrregularSeries {
    assert!(mads > 0.0, "mads must be positive");
    let finite: Vec<f64> = series
        .values()
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return series.clone();
    }
    let median = median_of(&finite);
    let mut deviations: Vec<f64> = finite.iter().map(|v| (v - median).abs()).collect();
    let mad = median_of_mut(&mut deviations) * 1.4826;
    if mad <= 0.0 {
        return series.clone();
    }
    let lo = median - mads * mad;
    let hi = median + mads * mad;
    let pairs = series
        .iter()
        .filter(|(_, v)| !v.is_finite() || (*v >= lo && *v <= hi))
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Nearest-neighbour re-gridding of an irregular trace onto a regular grid —
/// the paper's pre-cleaning step.
///
/// The grid starts at the trace's first timestamp and steps by `interval`
/// until the last timestamp is covered. Each grid point takes the value of
/// the nearest (in time) original sample.
///
/// # Errors
/// * [`CleanError::TooSparse`] — the series is empty.
/// * [`CleanError::NonFinite`] — the series contains NaN/infinite values
///   (call [`drop_invalid`] first).
/// * [`CleanError::BadInterval`] — `interval` is not positive and finite.
pub fn regularize(
    series: &IrregularSeries,
    interval: Seconds,
) -> Result<RegularSeries, CleanError> {
    if series.is_empty() {
        return Err(CleanError::TooSparse(0));
    }
    if !series.values().iter().all(|v| v.is_finite()) {
        return Err(CleanError::NonFinite);
    }
    if !(interval.value() > 0.0 && interval.value().is_finite()) {
        return Err(CleanError::BadInterval(interval.value()));
    }
    let start = series.start().expect("non-empty");
    let end = series.end().expect("non-empty");
    let span = (end - start).value();
    let steps = (span / interval.value()).round() as usize + 1;
    let values = (0..steps)
        .map(|k| series.nearest_value(start + interval * k as f64))
        .collect();
    Ok(RegularSeries::new(start, interval, values))
}

/// Full cleaning pipeline: drop invalid readings, optionally discard
/// outliers, then re-grid at the configured (or inferred) interval.
///
/// Allocates fresh working storage per call; the fleet-study hot loop uses
/// [`clean_into`] with a persistent [`CleanScratch`] instead.
///
/// # Errors
/// * [`CleanError::TooSparse`] — fewer than 2 valid samples remain.
/// * [`CleanError::BadInterval`] — the configured interval is not positive
///   and finite.
/// * [`CleanError::BadOutlierMads`] — the configured MAD multiple is not
///   positive.
pub fn clean(series: &IrregularSeries, cfg: CleanConfig) -> Result<RegularSeries, CleanError> {
    clean_into(series, cfg, &mut CleanScratch::new())
}

/// Reusable working storage for [`clean_into`]: the filtered trace, the
/// median/MAD sort buffer and the re-gridded output all live here, so a
/// steady-state cleaning loop performs no heap allocations once the buffers
/// have grown to the trace length.
#[derive(Debug, Default)]
pub struct CleanScratch {
    /// Timestamps surviving the drop/outlier filters.
    times: Vec<Seconds>,
    /// Values surviving the drop/outlier filters (parallel to `times`).
    values: Vec<f64>,
    /// Sort buffer for medians (values, deviations, gaps).
    work: Vec<f64>,
    /// Recycled output storage for the re-gridded series.
    grid: Vec<f64>,
}

impl CleanScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands a cleaned series' value buffer back for the next call. Without
    /// this, every [`clean_into`] result keeps its output buffer and the
    /// scratch re-allocates one per trace.
    pub fn reclaim(&mut self, series: RegularSeries) {
        self.grid = series.into_values();
    }

    /// [`CleanScratch::reclaim`] for callers holding a bare buffer instead
    /// of a series: the next [`clean_into`] moves `buf` into its output.
    pub fn lend(&mut self, buf: Vec<f64>) {
        self.grid = buf;
    }

    /// Takes back the currently lent output buffer (empty if none) — for
    /// fallback paths that need the storage after a failed clean.
    pub fn take_lent(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.grid)
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths) —
    /// the per-worker memory-footprint accounting of the fleet engine.
    pub fn resident_bytes(&self) -> usize {
        self.times.capacity() * std::mem::size_of::<Seconds>()
            + (self.values.capacity() + self.work.capacity() + self.grid.capacity())
                * std::mem::size_of::<f64>()
    }
}

/// [`clean`] with caller-owned scratch: identical results, but all working
/// storage (including the returned series' value buffer — hand it back with
/// [`CleanScratch::reclaim`]) is recycled across calls, so the steady-state
/// per-trace cleaning cost is zero heap allocations.
///
/// # Errors
/// Exactly as [`clean`].
pub fn clean_into(
    series: &IrregularSeries,
    cfg: CleanConfig,
    scratch: &mut CleanScratch,
) -> Result<RegularSeries, CleanError> {
    clean_slices_into(series.times(), series.values(), cfg, scratch)
}

/// The slice-level primitive behind [`clean_into`]: the trace arrives as
/// parallel `times`/`values` slices so a poller that already holds its
/// samples in recycled buffers (e.g. `monitor::SimDevice::poll_into`) can
/// clean them without wrapping an [`IrregularSeries`] first.
///
/// # Errors
/// Exactly as [`clean`].
///
/// # Panics
/// Panics if the slices disagree in length or `times` decreases (the
/// [`IrregularSeries`] invariant — enforced here too, so the slice path
/// fails as loudly as the series constructors; the scan is a single pass,
/// cheap next to the re-gridding walk it precedes). Duplicate timestamps
/// are allowed: they model duplicated/delayed reports landing on the same
/// collection tick and are deduplicated deterministically below (first
/// arrival wins), so the re-gridding walk always sees a strictly
/// increasing trace.
pub fn clean_slices_into(
    times: &[Seconds],
    values: &[f64],
    cfg: CleanConfig,
    scratch: &mut CleanScratch,
) -> Result<RegularSeries, CleanError> {
    assert_eq!(times.len(), values.len(), "times and values must pair up");
    assert!(
        times.windows(2).all(|w| w[0].value() <= w[1].value()),
        "timestamps must be non-decreasing"
    );
    if let Some(interval) = cfg.interval {
        if !(interval.value() > 0.0 && interval.value().is_finite()) {
            return Err(CleanError::BadInterval(interval.value()));
        }
    }
    if let Some(mads) = cfg.outlier_mads {
        // NaN must fail this check too, so compare via the negation.
        if mads <= 0.0 || mads.is_nan() {
            return Err(CleanError::BadOutlierMads(mads));
        }
    }

    // Drop invalid readings and deduplicate identical timestamps: the first
    // *valid* arrival at a tick wins, matching `IrregularSeries::from_pairs`.
    // The surviving trace is strictly increasing.
    scratch.times.clear();
    scratch.values.clear();
    for (&t, &v) in times.iter().zip(values) {
        if v.is_finite() && scratch.times.last() != Some(&t) {
            scratch.times.push(t);
            scratch.values.push(v);
        }
    }

    // MAD outlier discard, matching `drop_outliers` bit for bit (every value
    // is finite at this point).
    if let Some(mads) = cfg.outlier_mads {
        if !scratch.values.is_empty() {
            scratch.work.clear();
            scratch.work.extend_from_slice(&scratch.values);
            let median = median_of_mut(&mut scratch.work);
            scratch.work.clear();
            scratch
                .work
                .extend(scratch.values.iter().map(|v| (v - median).abs()));
            let mad = median_of_mut(&mut scratch.work) * 1.4826;
            if mad > 0.0 {
                let lo = median - mads * mad;
                let hi = median + mads * mad;
                let mut kept = 0;
                for i in 0..scratch.values.len() {
                    let v = scratch.values[i];
                    if v >= lo && v <= hi {
                        scratch.times[kept] = scratch.times[i];
                        scratch.values[kept] = v;
                        kept += 1;
                    }
                }
                scratch.times.truncate(kept);
                scratch.values.truncate(kept);
            }
        }
    }

    if scratch.values.len() < 2 {
        return Err(CleanError::TooSparse(scratch.values.len()));
    }

    // Grid interval: configured, or the median inter-sample gap (the same
    // `gaps[len/2]` statistic as `IrregularSeries::median_interval`).
    let interval = match cfg.interval {
        Some(i) => i,
        None => {
            scratch.work.clear();
            scratch
                .work
                .extend(scratch.times.windows(2).map(|w| (w[1] - w[0]).value()));
            scratch
                .work
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            Seconds(scratch.work[scratch.work.len() / 2])
        }
    };
    if !(interval.value() > 0.0 && interval.value().is_finite()) {
        return Err(CleanError::BadInterval(interval.value()));
    }

    // Nearest-neighbour re-gridding. Grid timestamps are non-decreasing, so
    // one merge walk replaces the per-point binary search of `regularize`
    // while selecting exactly the same nearest sample (ties to the earlier
    // one, as in `IrregularSeries::nearest_value`).
    let start = scratch.times[0];
    let end = *scratch.times.last().expect("len >= 2");
    let span = (end - start).value();
    let steps = (span / interval.value()).round() as usize + 1;
    let mut grid = std::mem::take(&mut scratch.grid);
    grid.clear();
    grid.reserve(steps);
    let mut j = 0usize; // count of samples strictly before the grid point
    for k in 0..steps {
        let t = start + interval * k as f64;
        while j < scratch.times.len() && scratch.times[j].value() < t.value() {
            j += 1;
        }
        let v = if j == 0 {
            scratch.values[0]
        } else if j == scratch.times.len()
            || (t - scratch.times[j - 1]).value() <= (scratch.times[j] - t).value()
        {
            scratch.values[j - 1]
        } else {
            scratch.values[j]
        };
        grid.push(v);
    }
    Ok(RegularSeries::new(start, interval, grid))
}

fn median_of(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    median_of_mut(&mut v)
}

fn median_of_mut(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered_trace() -> IrregularSeries {
        // Roughly 10s cadence with jitter and one gap.
        IrregularSeries::new(
            vec![
                Seconds(0.0),
                Seconds(10.4),
                Seconds(19.7),
                Seconds(30.1),
                Seconds(50.0), // missing sample at ~40
                Seconds(60.2),
            ],
            vec![1.0, 2.0, 3.0, 4.0, 6.0, 7.0],
        )
    }

    #[test]
    fn drop_invalid_removes_nan_and_inf() {
        let ir = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0), Seconds(2.0), Seconds(3.0)],
            vec![1.0, f64::NAN, f64::INFINITY, 4.0],
        );
        let out = drop_invalid(&ir);
        assert_eq!(out.len(), 2);
        assert_eq!(out.values(), &[1.0, 4.0]);
    }

    #[test]
    fn regularize_fills_gaps_with_nearest() {
        let out = regularize(&jittered_trace(), Seconds(10.0)).unwrap();
        // Grid: 0,10,20,30,40,50,60 → 7 samples.
        assert_eq!(out.len(), 7);
        assert_eq!(out.interval(), Seconds(10.0));
        // t=40 is nearest to the t=30.1 sample (value 4) vs t=50 (value 6):
        // |40−30.1| = 9.9 < |50−40| = 10 → 4.0.
        assert_eq!(out.values()[4], 4.0);
        // Grid endpoints take the boundary samples.
        assert_eq!(out.values()[0], 1.0);
        assert_eq!(out.values()[6], 7.0);
    }

    #[test]
    fn regularize_is_identity_on_already_regular_trace() {
        let reg = RegularSeries::new(Seconds(5.0), Seconds(2.0), vec![1.0, 2.0, 3.0]);
        let out = regularize(&reg.to_irregular(), Seconds(2.0)).unwrap();
        assert_eq!(out, reg);
    }

    #[test]
    fn regularize_rejects_nan_as_error() {
        let ir = IrregularSeries::new(vec![Seconds(0.0), Seconds(1.0)], vec![f64::NAN, 1.0]);
        assert_eq!(regularize(&ir, Seconds(1.0)), Err(CleanError::NonFinite));
    }

    #[test]
    fn regularize_rejects_empty_and_bad_interval() {
        let empty = IrregularSeries::new(vec![], vec![]);
        assert_eq!(
            regularize(&empty, Seconds(1.0)),
            Err(CleanError::TooSparse(0))
        );
        let ok = jittered_trace();
        assert_eq!(
            regularize(&ok, Seconds(0.0)),
            Err(CleanError::BadInterval(0.0))
        );
        assert_eq!(
            regularize(&ok, Seconds(-3.0)),
            Err(CleanError::BadInterval(-3.0))
        );
        assert!(matches!(
            regularize(&ok, Seconds(f64::NAN)),
            Err(CleanError::BadInterval(s)) if s.is_nan()
        ));
    }

    #[test]
    fn clip_outliers_caps_spikes() {
        let ir = IrregularSeries::new(
            (0..11).map(|i| Seconds(i as f64)).collect(),
            vec![10.0, 10.1, 9.9, 10.0, 10.2, 1e9, 9.8, 10.0, 10.1, 9.9, 10.0],
        );
        let out = clip_outliers(&ir, 5.0);
        let max = out.values().iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 20.0, "spike survived: {max}");
        // Normal values untouched.
        assert_eq!(out.values()[0], 10.0);
    }

    #[test]
    fn clip_outliers_zero_mad_is_noop() {
        let ir = IrregularSeries::new(
            (0..5).map(|i| Seconds(i as f64)).collect(),
            vec![5.0, 5.0, 5.0, 5.0, 100.0],
        );
        // MAD = 0 (majority identical) → unchanged.
        let out = clip_outliers(&ir, 3.0);
        assert_eq!(out.values()[4], 100.0);
    }

    #[test]
    fn drop_outliers_removes_corrupt_readings() {
        let ir = IrregularSeries::new(
            (0..11).map(|i| Seconds(i as f64)).collect(),
            vec![10.0, 10.1, 9.9, 10.0, 10.2, 1e9, 9.8, 10.0, 10.1, 9.9, 10.0],
        );
        let out = drop_outliers(&ir, 8.0);
        assert_eq!(out.len(), 10, "the corrupt sample is gone");
        assert!(out.values().iter().all(|&v| v < 100.0));
    }

    #[test]
    fn drop_outliers_keeps_nan_for_later_stages() {
        let ir = IrregularSeries::new(
            (0..5).map(|i| Seconds(i as f64)).collect(),
            vec![1.0, f64::NAN, 1.1, 500.0, 0.9],
        );
        let out = drop_outliers(&ir, 5.0);
        // NaN is not an outlier decision — drop_invalid owns it.
        assert!(out.values().iter().any(|v| v.is_nan()));
        assert!(!out.values().contains(&500.0));
    }

    #[test]
    fn clean_pipeline_end_to_end() {
        let ir = jittered_trace();
        let out = clean(&ir, CleanConfig::default()).expect("cleanable");
        assert!(out.len() >= 6);
        // Median interval ≈ 10.15 → grid close to 10s cadence.
        assert!((out.interval().value() - 10.0).abs() < 1.0);
    }

    #[test]
    fn clean_with_explicit_interval() {
        let out = clean(
            &jittered_trace(),
            CleanConfig {
                interval: Some(Seconds(5.0)),
                outlier_mads: None,
            },
        )
        .unwrap();
        assert_eq!(out.interval(), Seconds(5.0));
        assert_eq!(out.len(), 13);
    }

    #[test]
    fn clean_default_discards_corrupt_outliers() {
        // The module doc's §3.2 promise: MAD outlier handling is part of the
        // default pipeline, not opt-in. An order-of-magnitude corrupt reading
        // is discarded and the slot re-filled from its neighbours.
        let ir = IrregularSeries::new(
            (0..11).map(|i| Seconds(i as f64 * 10.0)).collect(),
            vec![10.0, 10.1, 9.9, 10.0, 10.2, 1e9, 9.8, 10.0, 10.1, 9.9, 10.0],
        );
        let out = clean(&ir, CleanConfig::default()).unwrap();
        assert!(
            out.values().iter().all(|&v| v < 100.0),
            "corruption must not survive the default pipeline: {:?}",
            out.values()
        );
        // The corrupt slot was re-filled, not dropped from the grid.
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn clean_reports_too_sparse() {
        let ir = IrregularSeries::new(vec![Seconds(0.0)], vec![1.0]);
        assert_eq!(
            clean(&ir, CleanConfig::default()),
            Err(CleanError::TooSparse(1))
        );
        let all_nan = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0), Seconds(2.0)],
            vec![f64::NAN; 3],
        );
        assert_eq!(
            clean(&all_nan, CleanConfig::default()),
            Err(CleanError::TooSparse(0))
        );
    }

    #[test]
    fn clean_reports_bad_config() {
        let ir = jittered_trace();
        assert_eq!(
            clean(
                &ir,
                CleanConfig {
                    interval: Some(Seconds(-1.0)),
                    outlier_mads: None,
                }
            ),
            Err(CleanError::BadInterval(-1.0))
        );
        assert_eq!(
            clean(
                &ir,
                CleanConfig {
                    interval: None,
                    outlier_mads: Some(0.0),
                }
            ),
            Err(CleanError::BadOutlierMads(0.0))
        );
    }

    #[test]
    fn clean_errors_render_diagnostics() {
        assert!(CleanError::TooSparse(1).to_string().contains("too few"));
        assert!(CleanError::NonFinite.to_string().contains("NaN"));
        assert!(CleanError::BadInterval(-2.0).to_string().contains("-2"));
        assert!(CleanError::BadOutlierMads(0.0).to_string().contains("positive"));
    }

    /// The scratch pipeline must reproduce the composed reference pipeline
    /// (`drop_invalid` → `drop_outliers` → `regularize`) bit for bit — the
    /// fleet study's byte-identical-output guarantee rides on this.
    #[test]
    fn clean_into_matches_composed_reference() {
        // Jittery cadence + a gap + NaN losses + one corrupt spike.
        let mut times = Vec::new();
        let mut values = Vec::new();
        let mut t = 0.0;
        for i in 0..200 {
            t += 10.0 + ((i * 7919) % 13) as f64 * 0.3 - 1.8;
            if i == 60 {
                t += 120.0; // outage
            }
            times.push(Seconds(t));
            values.push(match i {
                17 | 91 => f64::NAN,
                130 => 1e9,
                _ => 10.0 + ((i * 31) % 17) as f64 * 0.11,
            });
        }
        let ir = IrregularSeries::new(times, values);
        for cfg in [
            CleanConfig::default(),
            CleanConfig { interval: Some(Seconds(10.0)), outlier_mads: Some(8.0) },
            CleanConfig { interval: Some(Seconds(7.5)), outlier_mads: None },
            CleanConfig { interval: None, outlier_mads: None },
        ] {
            let mut reference = drop_invalid(&ir);
            if let Some(mads) = cfg.outlier_mads {
                reference = drop_outliers(&reference, mads);
            }
            let interval = cfg
                .interval
                .unwrap_or_else(|| reference.median_interval().unwrap());
            let expected = regularize(&reference, interval).unwrap();

            let mut scratch = CleanScratch::new();
            let got = clean_into(&ir, cfg, &mut scratch).unwrap();
            assert_eq!(got, expected, "cfg {cfg:?}");
        }
    }

    #[test]
    fn equal_timestamp_duplicates_dedup_first_wins() {
        // Duplicated reports share a collection tick; the first valid arrival
        // wins deterministically, even when it hides behind a NaN loss.
        let ir = IrregularSeries::new(
            vec![
                Seconds(0.0),
                Seconds(10.0),
                Seconds(10.0), // duplicate — dropped
                Seconds(20.0),
                Seconds(20.0), // first arrival lost: the duplicate wins
                Seconds(30.0),
            ],
            vec![1.0, 2.0, 99.0, f64::NAN, 4.0, 5.0],
        );
        let cfg = CleanConfig {
            interval: Some(Seconds(10.0)),
            outlier_mads: None,
        };
        let out = clean(&ir, cfg).unwrap();
        assert_eq!(out.values(), &[1.0, 2.0, 4.0, 5.0]);
        // The composed reference pipeline agrees (from_pairs dedup).
        let reference = regularize(&drop_invalid(&ir), Seconds(10.0)).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn clean_into_recycles_the_output_buffer() {
        let ir = jittered_trace();
        let mut scratch = CleanScratch::new();
        let first = clean_into(&ir, CleanConfig::default(), &mut scratch).unwrap();
        let ptr = first.values().as_ptr();
        scratch.reclaim(first);
        let second = clean_into(&ir, CleanConfig::default(), &mut scratch).unwrap();
        assert_eq!(second.values().as_ptr(), ptr, "grid buffer must be recycled");
    }

    #[test]
    fn median_helpers() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
