//! Trace pre-cleaning.
//!
//! §3.2 of the paper: *"In practice, monitoring systems do not produce
//! perfectly sampled signals — samples are not always spaced at equi-distant
//! points in time. In such situations, we pre-clean the signal using nearest
//! neighbor re-sampling; that is, we add values for missing samples based on
//! nearby samples."*
//!
//! This module implements that re-gridding plus the mundane hygiene around
//! it: dropping NaN readings (lost measurements), clipping corrupt outliers
//! with a robust MAD rule, and a one-call [`clean`] pipeline.

use crate::series::{IrregularSeries, RegularSeries};
use crate::time::Seconds;

/// Configuration for the [`clean`] pipeline.
#[derive(Debug, Clone, Copy)]
pub struct CleanConfig {
    /// Target re-grid interval. `None` uses the trace's median interval.
    pub interval: Option<Seconds>,
    /// Discard values further than this many (scaled) MADs from the median —
    /// they are treated as lost samples and re-filled by the re-gridding
    /// step. `None` disables outlier handling. (Discarding beats clamping:
    /// a clamped corrupt reading still leaves a large impulse that pollutes
    /// the spectrum; see [`clip_outliers`] if clamping is what you want.)
    pub outlier_mads: Option<f64>,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            interval: None,
            outlier_mads: None,
        }
    }
}

/// Drops samples whose value is NaN or infinite (lost/corrupt measurements).
pub fn drop_invalid(series: &IrregularSeries) -> IrregularSeries {
    let pairs: Vec<(Seconds, f64)> = series
        .iter()
        .filter(|(_, v)| v.is_finite())
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Clips values further than `mads` scaled median-absolute-deviations from
/// the median to that bound. Robust to the isolated corrupt readings the
/// paper worries about in §3.2 ("data corruption that may have lead to an
/// incorrect assessment").
///
/// Uses the 1.4826 normal-consistency scaling. If the MAD is zero (more than
/// half the samples identical), the series is returned unchanged.
///
/// # Panics
/// Panics if `mads` is not positive.
pub fn clip_outliers(series: &IrregularSeries, mads: f64) -> IrregularSeries {
    assert!(mads > 0.0, "mads must be positive");
    let finite: Vec<f64> = series.values().iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return series.clone();
    }
    let median = median_of(&finite);
    let mut deviations: Vec<f64> = finite.iter().map(|v| (v - median).abs()).collect();
    let mad = median_of_mut(&mut deviations) * 1.4826;
    if mad <= 0.0 {
        return series.clone();
    }
    let lo = median - mads * mad;
    let hi = median + mads * mad;
    let pairs = series
        .iter()
        .map(|(t, v)| (t, if v.is_finite() { v.clamp(lo, hi) } else { v }))
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Removes values further than `mads` scaled median-absolute-deviations from
/// the median — corrupt readings are treated as *lost* (dropped), to be
/// re-filled by [`regularize`]. If the MAD is zero, the series is returned
/// unchanged.
///
/// # Panics
/// Panics if `mads` is not positive.
pub fn drop_outliers(series: &IrregularSeries, mads: f64) -> IrregularSeries {
    assert!(mads > 0.0, "mads must be positive");
    let finite: Vec<f64> = series
        .values()
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return series.clone();
    }
    let median = median_of(&finite);
    let mut deviations: Vec<f64> = finite.iter().map(|v| (v - median).abs()).collect();
    let mad = median_of_mut(&mut deviations) * 1.4826;
    if mad <= 0.0 {
        return series.clone();
    }
    let lo = median - mads * mad;
    let hi = median + mads * mad;
    let pairs = series
        .iter()
        .filter(|(_, v)| !v.is_finite() || (*v >= lo && *v <= hi))
        .collect();
    IrregularSeries::from_pairs(pairs)
}

/// Nearest-neighbour re-gridding of an irregular trace onto a regular grid —
/// the paper's pre-cleaning step.
///
/// The grid starts at the trace's first timestamp and steps by `interval`
/// until the last timestamp is covered. Each grid point takes the value of
/// the nearest (in time) original sample.
///
/// # Panics
/// Panics if the series is empty, contains non-finite values (call
/// [`drop_invalid`] first), or `interval` is not positive.
pub fn regularize(series: &IrregularSeries, interval: Seconds) -> RegularSeries {
    assert!(!series.is_empty(), "cannot regularize an empty trace");
    assert!(
        series.values().iter().all(|v| v.is_finite()),
        "drop invalid samples before re-gridding"
    );
    assert!(
        interval.value() > 0.0 && interval.value().is_finite(),
        "interval must be positive"
    );
    let start = series.start().expect("non-empty");
    let end = series.end().expect("non-empty");
    let span = (end - start).value();
    let steps = (span / interval.value()).round() as usize + 1;
    let values = (0..steps)
        .map(|k| series.nearest_value(start + interval * k as f64))
        .collect();
    RegularSeries::new(start, interval, values)
}

/// Full cleaning pipeline: drop invalid readings, optionally discard
/// outliers, then re-grid at the configured (or inferred) interval.
///
/// Returns `None` when fewer than 2 valid samples remain — there is no signal
/// to analyze.
pub fn clean(series: &IrregularSeries, cfg: CleanConfig) -> Option<RegularSeries> {
    let mut trace = drop_invalid(series);
    if let Some(mads) = cfg.outlier_mads {
        trace = drop_outliers(&trace, mads);
    }
    if trace.len() < 2 {
        return None;
    }
    let interval = match cfg.interval {
        Some(i) => i,
        None => trace.median_interval()?,
    };
    Some(regularize(&trace, interval))
}

fn median_of(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    median_of_mut(&mut v)
}

fn median_of_mut(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered_trace() -> IrregularSeries {
        // Roughly 10s cadence with jitter and one gap.
        IrregularSeries::new(
            vec![
                Seconds(0.0),
                Seconds(10.4),
                Seconds(19.7),
                Seconds(30.1),
                Seconds(50.0), // missing sample at ~40
                Seconds(60.2),
            ],
            vec![1.0, 2.0, 3.0, 4.0, 6.0, 7.0],
        )
    }

    #[test]
    fn drop_invalid_removes_nan_and_inf() {
        let ir = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0), Seconds(2.0), Seconds(3.0)],
            vec![1.0, f64::NAN, f64::INFINITY, 4.0],
        );
        let out = drop_invalid(&ir);
        assert_eq!(out.len(), 2);
        assert_eq!(out.values(), &[1.0, 4.0]);
    }

    #[test]
    fn regularize_fills_gaps_with_nearest() {
        let out = regularize(&jittered_trace(), Seconds(10.0));
        // Grid: 0,10,20,30,40,50,60 → 7 samples.
        assert_eq!(out.len(), 7);
        assert_eq!(out.interval(), Seconds(10.0));
        // t=40 is nearest to the t=30.1 sample (value 4) vs t=50 (value 6):
        // |40−30.1| = 9.9 < |50−40| = 10 → 4.0.
        assert_eq!(out.values()[4], 4.0);
        // Grid endpoints take the boundary samples.
        assert_eq!(out.values()[0], 1.0);
        assert_eq!(out.values()[6], 7.0);
    }

    #[test]
    fn regularize_is_identity_on_already_regular_trace() {
        let reg = RegularSeries::new(Seconds(5.0), Seconds(2.0), vec![1.0, 2.0, 3.0]);
        let out = regularize(&reg.to_irregular(), Seconds(2.0));
        assert_eq!(out, reg);
    }

    #[test]
    #[should_panic(expected = "drop invalid")]
    fn regularize_rejects_nan() {
        let ir = IrregularSeries::new(vec![Seconds(0.0), Seconds(1.0)], vec![f64::NAN, 1.0]);
        regularize(&ir, Seconds(1.0));
    }

    #[test]
    fn clip_outliers_caps_spikes() {
        let ir = IrregularSeries::new(
            (0..11).map(|i| Seconds(i as f64)).collect(),
            vec![10.0, 10.1, 9.9, 10.0, 10.2, 1e9, 9.8, 10.0, 10.1, 9.9, 10.0],
        );
        let out = clip_outliers(&ir, 5.0);
        let max = out.values().iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 20.0, "spike survived: {max}");
        // Normal values untouched.
        assert_eq!(out.values()[0], 10.0);
    }

    #[test]
    fn clip_outliers_zero_mad_is_noop() {
        let ir = IrregularSeries::new(
            (0..5).map(|i| Seconds(i as f64)).collect(),
            vec![5.0, 5.0, 5.0, 5.0, 100.0],
        );
        // MAD = 0 (majority identical) → unchanged.
        let out = clip_outliers(&ir, 3.0);
        assert_eq!(out.values()[4], 100.0);
    }

    #[test]
    fn drop_outliers_removes_corrupt_readings() {
        let ir = IrregularSeries::new(
            (0..11).map(|i| Seconds(i as f64)).collect(),
            vec![10.0, 10.1, 9.9, 10.0, 10.2, 1e9, 9.8, 10.0, 10.1, 9.9, 10.0],
        );
        let out = drop_outliers(&ir, 8.0);
        assert_eq!(out.len(), 10, "the corrupt sample is gone");
        assert!(out.values().iter().all(|&v| v < 100.0));
    }

    #[test]
    fn drop_outliers_keeps_nan_for_later_stages() {
        let ir = IrregularSeries::new(
            (0..5).map(|i| Seconds(i as f64)).collect(),
            vec![1.0, f64::NAN, 1.1, 500.0, 0.9],
        );
        let out = drop_outliers(&ir, 5.0);
        // NaN is not an outlier decision — drop_invalid owns it.
        assert!(out.values().iter().any(|v| v.is_nan()));
        assert!(!out.values().contains(&500.0));
    }

    #[test]
    fn clean_pipeline_end_to_end() {
        let ir = jittered_trace();
        let out = clean(&ir, CleanConfig::default()).expect("cleanable");
        assert!(out.len() >= 6);
        // Median interval ≈ 10.15 → grid close to 10s cadence.
        assert!((out.interval().value() - 10.0).abs() < 1.0);
    }

    #[test]
    fn clean_with_explicit_interval() {
        let out = clean(
            &jittered_trace(),
            CleanConfig {
                interval: Some(Seconds(5.0)),
                outlier_mads: None,
            },
        )
        .unwrap();
        assert_eq!(out.interval(), Seconds(5.0));
        assert_eq!(out.len(), 13);
    }

    #[test]
    fn clean_returns_none_when_too_sparse() {
        let ir = IrregularSeries::new(vec![Seconds(0.0)], vec![1.0]);
        assert!(clean(&ir, CleanConfig::default()).is_none());
        let all_nan = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0), Seconds(2.0)],
            vec![f64::NAN; 3],
        );
        assert!(clean(&all_nan, CleanConfig::default()).is_none());
    }

    #[test]
    fn median_helpers() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
