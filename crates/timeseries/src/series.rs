//! Series types: regularly and irregularly sampled measurements.

use crate::time::{Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// A regularly sampled time series: samples at `start + k·interval`.
///
/// This is what an ideal poller produces and what every spectral method in
/// the workspace consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegularSeries {
    start: Seconds,
    interval: Seconds,
    values: Vec<f64>,
}

impl RegularSeries {
    /// Creates a series starting at `start` with fixed `interval` spacing.
    ///
    /// # Panics
    /// Panics if `interval` is not positive/finite or any value is NaN.
    pub fn new(start: Seconds, interval: Seconds, values: Vec<f64>) -> Self {
        assert!(
            interval.value().is_finite() && interval.value() > 0.0,
            "interval must be positive, got {interval}"
        );
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "values must not contain NaN; clean the trace first"
        );
        RegularSeries {
            start,
            interval,
            values,
        }
    }

    /// A series starting at t=0 sampled at `rate`.
    ///
    /// # Panics
    /// Panics if `rate` is not positive.
    pub fn from_rate(rate: Hertz, values: Vec<f64>) -> Self {
        RegularSeries::new(Seconds::ZERO, rate.period(), values)
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> Seconds {
        self.start
    }

    /// Spacing between consecutive samples.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Sampling rate (`1 / interval`).
    pub fn sample_rate(&self) -> Hertz {
        self.interval.as_rate()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the sample values (e.g. for in-place quantization).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Rebuilds the series in place from recycled storage: `values` (e.g.
    /// reclaimed from a previous series via [`RegularSeries::into_values`])
    /// is moved in without copying, and the old value buffer is returned so
    /// the caller can keep cycling it. The steady-state synthesis loop uses
    /// this to rebuild series trace after trace with zero heap allocations.
    ///
    /// # Panics
    /// Same invariants as [`RegularSeries::new`].
    pub fn refill(&mut self, start: Seconds, interval: Seconds, values: Vec<f64>) -> Vec<f64> {
        let old = std::mem::replace(self, RegularSeries::new(start, interval, values));
        old.values
    }

    /// Timestamp of sample `k`.
    pub fn time_of(&self, k: usize) -> Seconds {
        self.start + self.interval * k as f64
    }

    /// All timestamps (materialized).
    pub fn timestamps(&self) -> Vec<Seconds> {
        (0..self.len()).map(|k| self.time_of(k)).collect()
    }

    /// Total covered duration: `len · interval` (half-open convention — each
    /// sample "owns" one interval).
    pub fn duration(&self) -> Seconds {
        self.interval * self.len() as f64
    }

    /// Sub-series of samples `range` (same interval, shifted start).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> RegularSeries {
        let start = self.time_of(range.start);
        RegularSeries::new(start, self.interval, self.values[range].to_vec())
    }

    /// Index of the sample at-or-after time `t`, or `None` if past the end.
    pub fn index_at_or_after(&self, t: Seconds) -> Option<usize> {
        let pos = (t - self.start) / self.interval;
        let idx = if pos <= 0.0 { 0 } else { pos.ceil() as usize };
        // Snap near-integer positions down so `time_of(k)` itself maps to `k`.
        let idx = if idx > 0 && ((idx - 1) as f64 - pos).abs() < 1e-9 {
            idx - 1
        } else {
            idx
        };
        (idx < self.len()).then_some(idx)
    }

    /// Converts to an irregular series with explicit timestamps.
    pub fn to_irregular(&self) -> IrregularSeries {
        IrregularSeries::new(self.timestamps(), self.values.clone())
    }

    /// `(timestamp, value)` iterator.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(k, &v)| (self.time_of(k), v))
    }
}

/// An irregularly sampled time series: explicit, non-decreasing timestamps.
///
/// Production traces are rarely perfectly regular — polls get delayed, data
/// gets lost. Duplicate timestamps are allowed: they model reports that were
/// duplicated or delayed in flight and land on the same collection tick.
/// [`crate::clean::clean`] deduplicates them (first arrival wins) before
/// [`crate::clean::regularize`] converts the trace to a [`RegularSeries`]
/// via nearest-neighbour re-gridding (the paper's §3.2 pre-cleaning step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrregularSeries {
    times: Vec<Seconds>,
    values: Vec<f64>,
}

impl IrregularSeries {
    /// Creates an irregular series.
    ///
    /// # Panics
    /// Panics if lengths differ or timestamps decrease. (NaN *values* and
    /// duplicate timestamps are allowed here — they model lost and
    /// duplicated/delayed measurements respectively and are handled by the
    /// cleaning layer.)
    pub fn new(times: Vec<Seconds>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times and values must pair up");
        assert!(
            times.windows(2).all(|w| w[0].value() <= w[1].value()),
            "timestamps must be non-decreasing"
        );
        assert!(
            times.iter().all(|t| t.value().is_finite()),
            "timestamps must be finite"
        );
        IrregularSeries { times, values }
    }

    /// Builds from `(time, value)` pairs, sorting by time and dropping
    /// duplicate timestamps (keeping the first occurrence).
    pub fn from_pairs(mut pairs: Vec<(Seconds, f64)>) -> Self {
        pairs.sort_by(|a, b| {
            a.0.value()
                .partial_cmp(&b.0.value())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        pairs.dedup_by(|a, b| a.0.value() == b.0.value());
        let (times, values) = pairs.into_iter().unzip();
        IrregularSeries::new(times, values)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The timestamps.
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// The values (may contain NaN for lost measurements).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First timestamp, or `None` when empty.
    pub fn start(&self) -> Option<Seconds> {
        self.times.first().copied()
    }

    /// Last timestamp, or `None` when empty.
    pub fn end(&self) -> Option<Seconds> {
        self.times.last().copied()
    }

    /// Covered duration (`end − start`), zero when fewer than 2 samples.
    pub fn duration(&self) -> Seconds {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => Seconds::ZERO,
        }
    }

    /// Median inter-sample gap — a robust estimate of the intended polling
    /// interval of a jittery trace. `None` with fewer than 2 samples.
    pub fn median_interval(&self) -> Option<Seconds> {
        if self.len() < 2 {
            return None;
        }
        let mut gaps: Vec<f64> = self
            .times
            .windows(2)
            .map(|w| (w[1] - w[0]).value())
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(Seconds(gaps[gaps.len() / 2]))
    }

    /// Value of the sample nearest in time to `t`.
    ///
    /// # Panics
    /// Panics when the series is empty.
    pub fn nearest_value(&self, t: Seconds) -> f64 {
        assert!(!self.is_empty(), "nearest_value on an empty series");
        let idx = self.times.partition_point(|&x| x.value() < t.value());
        if idx == 0 {
            return self.values[0];
        }
        if idx == self.len() {
            return self.values[self.len() - 1];
        }
        let before = (t - self.times[idx - 1]).value();
        let after = (self.times[idx] - t).value();
        if before <= after {
            self.values[idx - 1]
        } else {
            self.values[idx]
        }
    }

    /// Builds a series from buffers reclaimed via
    /// [`IrregularSeries::into_parts`]. Identical invariants to
    /// [`IrregularSeries::new`]; the buffers are moved, not copied, so a
    /// synthesis loop that hands its series back with `into_parts` rebuilds
    /// trace after trace without touching the heap.
    pub fn from_recycled(times: Vec<Seconds>, values: Vec<f64>) -> Self {
        IrregularSeries::new(times, values)
    }

    /// Consumes the series, returning its `(times, values)` buffers for
    /// recycling through [`IrregularSeries::from_recycled`].
    pub fn into_parts(self) -> (Vec<Seconds>, Vec<f64>) {
        (self.times, self.values)
    }

    /// `(timestamp, value)` iterator.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> RegularSeries {
        RegularSeries::new(Seconds(10.0), Seconds(2.0), vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn regular_basics() {
        let s = series();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.time_of(0), Seconds(10.0));
        assert_eq!(s.time_of(3), Seconds(16.0));
        assert_eq!(s.duration(), Seconds(8.0));
        assert!((s.sample_rate().value() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn regular_from_rate() {
        let s = RegularSeries::from_rate(Hertz(10.0), vec![0.0; 5]);
        assert_eq!(s.interval(), Seconds(0.1));
        assert_eq!(s.start(), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn regular_zero_interval_panics() {
        RegularSeries::new(Seconds::ZERO, Seconds::ZERO, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn regular_nan_value_panics() {
        RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![f64::NAN]);
    }

    #[test]
    fn regular_slice() {
        let s = series();
        let sub = s.slice(1..3);
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert_eq!(sub.start(), Seconds(12.0));
        assert_eq!(sub.interval(), Seconds(2.0));
    }

    #[test]
    fn index_at_or_after() {
        let s = series();
        assert_eq!(s.index_at_or_after(Seconds(0.0)), Some(0));
        assert_eq!(s.index_at_or_after(Seconds(10.0)), Some(0));
        assert_eq!(s.index_at_or_after(Seconds(11.0)), Some(1));
        assert_eq!(s.index_at_or_after(Seconds(12.0)), Some(1));
        assert_eq!(s.index_at_or_after(Seconds(16.0)), Some(3));
        assert_eq!(s.index_at_or_after(Seconds(16.1)), None);
    }

    #[test]
    fn regular_iter_pairs() {
        let s = series();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs[0], (Seconds(10.0), 1.0));
        assert_eq!(pairs[3], (Seconds(16.0), 4.0));
    }

    #[test]
    fn to_irregular_roundtrip_values() {
        let s = series();
        let ir = s.to_irregular();
        assert_eq!(ir.values(), s.values());
        assert_eq!(ir.times().len(), s.len());
        assert_eq!(ir.median_interval().unwrap().value(), 2.0);
    }

    #[test]
    fn irregular_from_pairs_sorts_and_dedups() {
        let ir = IrregularSeries::from_pairs(vec![
            (Seconds(3.0), 30.0),
            (Seconds(1.0), 10.0),
            (Seconds(3.0), 99.0),
            (Seconds(2.0), 20.0),
        ]);
        assert_eq!(ir.len(), 3);
        assert_eq!(ir.values(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn irregular_unsorted_panics() {
        IrregularSeries::new(vec![Seconds(2.0), Seconds(1.0)], vec![0.0, 0.0]);
    }

    #[test]
    fn irregular_allows_duplicate_timestamps() {
        // Duplicated/delayed reports share a collection tick; the series
        // carries them as-is and the cleaning layer deduplicates.
        let ir = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0), Seconds(1.0), Seconds(2.0)],
            vec![1.0, 2.0, 3.0, 4.0],
        );
        assert_eq!(ir.len(), 4);
        assert_eq!(ir.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn irregular_nearest_value() {
        let ir = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(10.0), Seconds(20.0)],
            vec![1.0, 2.0, 3.0],
        );
        assert_eq!(ir.nearest_value(Seconds(-5.0)), 1.0);
        assert_eq!(ir.nearest_value(Seconds(4.0)), 1.0);
        assert_eq!(ir.nearest_value(Seconds(6.0)), 2.0);
        assert_eq!(ir.nearest_value(Seconds(14.9)), 2.0);
        assert_eq!(ir.nearest_value(Seconds(99.0)), 3.0);
        // Ties go to the earlier sample.
        assert_eq!(ir.nearest_value(Seconds(5.0)), 1.0);
    }

    #[test]
    fn irregular_duration_and_bounds() {
        let ir = IrregularSeries::new(vec![Seconds(5.0), Seconds(9.0)], vec![0.0, 1.0]);
        assert_eq!(ir.start(), Some(Seconds(5.0)));
        assert_eq!(ir.end(), Some(Seconds(9.0)));
        assert_eq!(ir.duration(), Seconds(4.0));
        let empty = IrregularSeries::new(vec![], vec![]);
        assert_eq!(empty.duration(), Seconds::ZERO);
        assert!(empty.is_empty());
    }

    #[test]
    fn irregular_allows_nan_values() {
        let ir = IrregularSeries::new(vec![Seconds(0.0), Seconds(1.0)], vec![f64::NAN, 1.0]);
        assert!(ir.values()[0].is_nan());
    }

    #[test]
    fn refill_reuses_the_value_buffer() {
        let mut s = series();
        let old_ptr = s.values().as_ptr();
        let mut spare = Vec::with_capacity(8);
        spare.extend_from_slice(&[9.0, 8.0]);
        let returned = s.refill(Seconds(1.0), Seconds(0.5), spare);
        assert_eq!(s.start(), Seconds(1.0));
        assert_eq!(s.values(), &[9.0, 8.0]);
        assert_eq!(returned.as_ptr(), old_ptr, "old buffer must come back");
        assert_eq!(returned, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn irregular_recycling_roundtrip() {
        let ir = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.0)],
            vec![10.0, 20.0],
        );
        let (times, values) = ir.into_parts();
        let t_ptr = times.as_ptr();
        let rebuilt = IrregularSeries::from_recycled(times, values);
        assert_eq!(rebuilt.times().as_ptr(), t_ptr, "buffers are moved, not copied");
        assert_eq!(rebuilt.values(), &[10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_recycled_keeps_invariants() {
        IrregularSeries::from_recycled(vec![Seconds(2.0), Seconds(1.0)], vec![0.0, 0.0]);
    }

    #[test]
    fn median_interval_robust_to_jitter() {
        let ir = IrregularSeries::new(
            vec![
                Seconds(0.0),
                Seconds(10.0),
                Seconds(20.5),
                Seconds(30.0),
                Seconds(95.0), // one big gap (outage)
            ],
            vec![0.0; 5],
        );
        let m = ir.median_interval().unwrap().value();
        assert!((9.0..=11.0).contains(&m), "median gap {m}");
    }
}
