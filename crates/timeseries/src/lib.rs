//! # sweetspot-timeseries
//!
//! Time-series substrate for the `sweetspot` workspace: the data model that
//! carries monitoring measurements between the telemetry generator, the
//! Nyquist estimator and the monitoring simulator.
//!
//! * [`time`] — `Seconds` / `Hertz` newtypes so rates and periods cannot be
//!   confused (a real bug class: the paper's rates span 7.99e-7 Hz to 8e-3 Hz).
//! * [`series`] — [`RegularSeries`] (fixed-interval samples, what a poller
//!   produces) and [`IrregularSeries`] (jittered or lossy timestamps, what a
//!   production collector actually records).
//! * [`clean`] — the paper's §3.2 pre-cleaning: *"we pre-clean the signal
//!   using nearest neighbor re-sampling"* — re-gridding irregular traces,
//!   NaN handling, outlier clipping.
//! * [`windowing`] — moving windows over a series (Figure 7 uses a 6-hour
//!   window stepping every 5 minutes).
//! * [`ingest`] — plain-text CSV import/export plus serde-able metadata.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod clean;
pub mod ingest;
pub mod series;
pub mod time;
pub mod windowing;

pub use series::{IrregularSeries, RegularSeries};
pub use time::{Hertz, Seconds};
