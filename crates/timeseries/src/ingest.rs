//! Trace import/export.
//!
//! A deliberately tiny CSV dialect (`time_seconds,value` with an optional
//! header) so traces can round-trip through files without adding a CSV
//! dependency, plus a serde-able [`TraceMeta`] describing where a trace came
//! from — the `(metric, device)` pair identity used throughout the paper's
//! §3.2 study.

use crate::series::IrregularSeries;
use crate::time::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity and provenance of a trace: one `(metric, device)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Metric name (e.g. `"temperature"`).
    pub metric: String,
    /// Device identifier (e.g. `"t0-rack12-sw3"`).
    pub device: String,
}

impl fmt::Display for TraceMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.metric, self.device)
    }
}

/// Error from [`parse_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `time,value` CSV. Blank lines and `#` comments are skipped; a
/// single non-numeric header row before the first data row is tolerated —
/// even when comments or blank lines precede it. The literal value `nan`
/// (case-insensitive) marks a lost measurement.
pub fn parse_csv(text: &str) -> Result<IrregularSeries, ParseError> {
    let mut pairs: Vec<(Seconds, f64)> = Vec::new();
    let mut header_allowed = true;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let t_str = fields.next().unwrap_or("").trim();
        let v_str = fields.next().unwrap_or("").trim();
        if fields.next().is_some() {
            return Err(ParseError {
                line: i + 1,
                message: "expected exactly two fields".into(),
            });
        }
        let t = match t_str.parse::<f64>() {
            Ok(t) => t,
            // One header row is fine anywhere before the first data row
            // (tracking "first data row seen", not the literal line number,
            // so leading comments/blanks don't defeat it).
            Err(_) if header_allowed => {
                header_allowed = false;
                continue;
            }
            Err(_) => {
                return Err(ParseError {
                    line: i + 1,
                    message: format!("bad timestamp {t_str:?}"),
                })
            }
        };
        header_allowed = false;
        let v = if v_str.eq_ignore_ascii_case("nan") {
            f64::NAN
        } else {
            v_str.parse::<f64>().map_err(|_| ParseError {
                line: i + 1,
                message: format!("bad value {v_str:?}"),
            })?
        };
        if !t.is_finite() {
            return Err(ParseError {
                line: i + 1,
                message: "timestamp must be finite".into(),
            });
        }
        pairs.push((Seconds(t), v));
    }
    Ok(IrregularSeries::from_pairs(pairs))
}

/// Serializes a series as `time,value` CSV with a header. NaN values are
/// written as `nan`.
pub fn to_csv(series: &IrregularSeries) -> String {
    let mut out = String::from("time_seconds,value\n");
    for (t, v) in series.iter() {
        if v.is_nan() {
            out.push_str(&format!("{},nan\n", t.value()));
        } else {
            out.push_str(&format!("{},{}\n", t.value(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = IrregularSeries::new(
            vec![Seconds(0.0), Seconds(1.5), Seconds(3.0)],
            vec![10.0, f64::NAN, 12.5],
        );
        let csv = to_csv(&s);
        let back = parse_csv(&csv).unwrap();
        assert_eq!(back.times(), s.times());
        assert_eq!(back.values()[0], 10.0);
        assert!(back.values()[1].is_nan());
        assert_eq!(back.values()[2], 12.5);
    }

    #[test]
    fn parses_without_header() {
        let s = parse_csv("0,1.0\n5,2.0\n").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let s = parse_csv("# a comment\n\n0,1\n# another\n1,2\n").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sorts_out_of_order_rows() {
        let s = parse_csv("5,2\n0,1\n").unwrap();
        assert_eq!(s.times()[0], Seconds(0.0));
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn bad_value_is_an_error() {
        let err = parse_csv("0,1\n1,zzz\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad value"));
    }

    #[test]
    fn bad_timestamp_mid_file_is_an_error() {
        let err = parse_csv("0,1\nxx,2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad timestamp"));
    }

    #[test]
    fn three_fields_is_an_error() {
        let err = parse_csv("0,1,2\n").unwrap_err();
        assert!(err.message.contains("two fields"));
    }

    #[test]
    fn header_row_tolerated() {
        let s = parse_csv("time_seconds,value\n0,1\n").unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn header_after_leading_comment_and_blank_tolerated() {
        let s = parse_csv("# exported by sweetspot demo\n\ntime_seconds,value\n0,1\n5,2\n")
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn second_header_like_row_is_an_error() {
        let err = parse_csv("time_seconds,value\nalso,a header\n0,1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad timestamp"));
    }

    #[test]
    fn header_after_data_is_an_error() {
        let err = parse_csv("0,1\ntime_seconds,value\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad timestamp"));
    }

    #[test]
    fn trace_meta_display() {
        let m = TraceMeta {
            metric: "temperature".into(),
            device: "sw-17".into(),
        };
        assert_eq!(m.to_string(), "temperature@sw-17");
    }
}
