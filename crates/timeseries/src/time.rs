//! Time and rate newtypes.
//!
//! Monitoring math constantly converts between polling *periods* ("every 5
//! minutes") and sampling *rates* ("1/300 Hz"), across ten orders of
//! magnitude. Wrapping both in newtypes makes the units part of the type
//! system; conversions are explicit and checked.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A duration or timestamp in seconds (f64; sub-second precision is fine for
/// monitoring workloads).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(pub f64);

/// A frequency / sampling rate in Hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Hertz(pub f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Constructs from minutes.
    pub fn from_minutes(m: f64) -> Self {
        Seconds(m * 60.0)
    }

    /// Constructs from hours.
    pub fn from_hours(h: f64) -> Self {
        Seconds(h * 3600.0)
    }

    /// Constructs from days.
    pub fn from_days(d: f64) -> Self {
        Seconds(d * 86_400.0)
    }

    /// The raw number of seconds.
    pub fn value(self) -> f64 {
        self.0
    }

    /// This duration expressed in minutes.
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// This duration expressed in hours.
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The sampling rate whose period is this duration.
    ///
    /// # Panics
    /// Panics if the duration is not positive.
    pub fn as_rate(self) -> Hertz {
        assert!(self.0 > 0.0, "cannot convert non-positive period {self} to a rate");
        Hertz(1.0 / self.0)
    }

    /// True when finite and `>= 0`.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Hertz {
    /// Zero Hz (a "never sample" rate; cannot be converted to a period).
    pub const ZERO: Hertz = Hertz(0.0);

    /// Constructs from a number of events per minute.
    pub fn per_minute(n: f64) -> Self {
        Hertz(n / 60.0)
    }

    /// Constructs from a number of events per hour.
    pub fn per_hour(n: f64) -> Self {
        Hertz(n / 3600.0)
    }

    /// Constructs from a number of events per day.
    pub fn per_day(n: f64) -> Self {
        Hertz(n / 86_400.0)
    }

    /// The raw Hz value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The sampling period of this rate.
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn period(self) -> Seconds {
        assert!(self.0 > 0.0, "cannot convert non-positive rate {self} to a period");
        Seconds(1.0 / self.0)
    }

    /// True when finite and `>= 0`.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// The Nyquist *sampling* rate for a signal whose highest frequency is
    /// `self`: twice the band edge (§2 of the paper).
    pub fn nyquist_rate(self) -> Hertz {
        Hertz(self.0 * 2.0)
    }

    /// The highest representable signal frequency when sampling at `self`:
    /// half the sampling rate (the folding frequency).
    pub fn folding_frequency(self) -> Hertz {
        Hertz(self.0 / 2.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 86_400.0 {
            write!(f, "{:.2}d", self.0 / 86_400.0)
        } else if self.0.abs() >= 3600.0 {
            write!(f, "{:.2}h", self.0 / 3600.0)
        } else if self.0.abs() >= 60.0 {
            write!(f, "{:.2}min", self.0 / 60.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0.0 {
            write!(f, "0Hz")
        } else if self.0.abs() < 1e-3 {
            write!(f, "{:.3e}Hz", self.0)
        } else {
            write!(f, "{:.4}Hz", self.0)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div for Seconds {
    /// Ratio of two durations (dimensionless).
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}

impl Div<f64> for Hertz {
    type Output = Hertz;
    fn div(self, rhs: f64) -> Hertz {
        Hertz(self.0 / rhs)
    }
}

impl Div for Hertz {
    /// Ratio of two rates (dimensionless) — e.g. the paper's
    /// "possible reduction ratio" = actual rate / Nyquist rate.
    type Output = f64;
    fn div(self, rhs: Hertz) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Seconds::from_minutes(5.0).value(), 300.0);
        assert_eq!(Seconds::from_hours(2.0).value(), 7200.0);
        assert_eq!(Seconds::from_days(1.0).value(), 86_400.0);
        assert_eq!(Hertz::per_minute(1.0).value(), 1.0 / 60.0);
        assert_eq!(Hertz::per_day(1.0).value(), 1.0 / 86_400.0);
    }

    #[test]
    fn rate_period_roundtrip() {
        let r = Hertz(0.01);
        assert!((r.period().as_rate().value() - 0.01).abs() < 1e-15);
        let p = Seconds(300.0);
        assert!((p.as_rate().period().value() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn nyquist_relations() {
        let band_edge = Hertz(0.001);
        assert_eq!(band_edge.nyquist_rate().value(), 0.002);
        let fs = Hertz(1.0);
        assert_eq!(fs.folding_frequency().value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_rate_period_panics() {
        Hertz::ZERO.period();
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_period_rate_panics() {
        Seconds::ZERO.as_rate();
    }

    #[test]
    fn arithmetic() {
        assert_eq!((Seconds(2.0) + Seconds(3.0)).value(), 5.0);
        assert_eq!((Seconds(5.0) - Seconds(3.0)).value(), 2.0);
        assert_eq!((Seconds(2.0) * 3.0).value(), 6.0);
        assert_eq!(Seconds(6.0) / Seconds(2.0), 3.0);
        assert_eq!((Hertz(4.0) / 2.0).value(), 2.0);
        assert_eq!(Hertz(4.0) / Hertz(2.0), 2.0);
    }

    #[test]
    fn display_picks_human_units() {
        assert_eq!(format!("{}", Seconds(30.0)), "30.000s");
        assert_eq!(format!("{}", Seconds(300.0)), "5.00min");
        assert_eq!(format!("{}", Seconds(7200.0)), "2.00h");
        assert_eq!(format!("{}", Seconds(172_800.0)), "2.00d");
        assert_eq!(format!("{}", Hertz(0.0)), "0Hz");
        assert!(format!("{}", Hertz(7.99e-7)).contains('e'));
        assert_eq!(format!("{}", Hertz(2.0)), "2.0000Hz");
    }

    #[test]
    fn validity() {
        assert!(Seconds(1.0).is_valid());
        assert!(!Seconds(f64::NAN).is_valid());
        assert!(!Seconds(-1.0).is_valid());
        assert!(Hertz(0.0).is_valid());
        assert!(!Hertz(f64::INFINITY).is_valid());
    }
}
