//! Moving windows over a regular series.
//!
//! Figure 7 of the paper tracks the inferred Nyquist rate with "a step of 5
//! minutes for the moving window and a window size of 6 hours". This module
//! provides exactly that iteration pattern.

use crate::series::RegularSeries;
use crate::time::Seconds;

/// A single window extracted from a series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowView {
    /// Timestamp of the first sample of the window (the paper's Figure 7
    /// marks "the beginning of the moving window").
    pub start: Seconds,
    /// Index of the first sample within the parent series.
    pub start_index: usize,
    /// The samples inside the window.
    pub values: Vec<f64>,
}

/// Iterates fixed-duration windows over `series`, advancing `step` at a time.
///
/// Windows are aligned to sample indices: `window` and `step` are converted
/// to whole sample counts (rounded to nearest, minimum 1). Only *full*
/// windows are yielded — a trailing partial window is dropped, matching the
/// paper's moving-window methodology.
///
/// # Panics
/// Panics if `window` or `step` is not positive.
pub fn moving_windows(
    series: &RegularSeries,
    window: Seconds,
    step: Seconds,
) -> impl Iterator<Item = WindowView> + '_ {
    assert!(window.value() > 0.0, "window must be positive");
    assert!(step.value() > 0.0, "step must be positive");
    let interval = series.interval().value();
    let win_len = ((window.value() / interval).round() as usize).max(1);
    let step_len = ((step.value() / interval).round() as usize).max(1);
    let n = series.len();
    (0..n.saturating_sub(win_len.saturating_sub(1)))
        .step_by(step_len)
        .filter(move |&i| i + win_len <= n)
        .map(move |i| WindowView {
            start: series.time_of(i),
            start_index: i,
            values: series.values()[i..i + win_len].to_vec(),
        })
}

/// Number of full windows [`moving_windows`] will yield.
pub fn window_count(series: &RegularSeries, window: Seconds, step: Seconds) -> usize {
    moving_windows(series, window, step).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> RegularSeries {
        RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0),
            (0..n).map(|i| i as f64).collect(),
        )
    }

    #[test]
    fn basic_windows() {
        let s = series(10);
        let wins: Vec<_> = moving_windows(&s, Seconds(4.0), Seconds(2.0)).collect();
        // Windows start at 0,2,4,6 (start 8 would need samples 8..12 — only
        // a partial window remains, so it is dropped).
        assert_eq!(wins.len(), 4);
        assert_eq!(wins[0].values, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(wins[1].start, Seconds(2.0));
        assert_eq!(wins[1].start_index, 2);
        assert_eq!(wins[3].values, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn step_larger_than_window() {
        let s = series(12);
        let wins: Vec<_> = moving_windows(&s, Seconds(2.0), Seconds(5.0)).collect();
        assert_eq!(wins.len(), 3); // starts 0, 5, 10
        assert_eq!(wins[2].values, vec![10.0, 11.0]);
    }

    #[test]
    fn overlapping_windows() {
        let s = series(6);
        let wins: Vec<_> = moving_windows(&s, Seconds(4.0), Seconds(1.0)).collect();
        assert_eq!(wins.len(), 3); // starts 0,1,2
        assert_eq!(wins[1].values, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_longer_than_series_yields_nothing() {
        let s = series(5);
        assert_eq!(window_count(&s, Seconds(10.0), Seconds(1.0)), 0);
    }

    #[test]
    fn window_equal_to_series_yields_one() {
        let s = series(5);
        let wins: Vec<_> = moving_windows(&s, Seconds(5.0), Seconds(1.0)).collect();
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].values.len(), 5);
    }

    #[test]
    fn paper_fig7_geometry() {
        // 7 days at 5-minute sampling; 6h windows stepping 5min.
        let n = 7 * 24 * 12;
        let s = RegularSeries::new(
            Seconds::ZERO,
            Seconds::from_minutes(5.0),
            vec![0.0; n],
        );
        let win = Seconds::from_hours(6.0);
        let step = Seconds::from_minutes(5.0);
        let count = window_count(&s, win, step);
        // 6h = 72 samples → n − 72 + 1 starts, stepping 1 sample.
        assert_eq!(count, n - 72 + 1);
    }

    #[test]
    fn sub_interval_step_clamps_to_one_sample() {
        let s = series(5);
        let wins: Vec<_> = moving_windows(&s, Seconds(2.0), Seconds(0.1)).collect();
        assert_eq!(wins.len(), 4); // every start index
    }
}
