//! Property-based tests for the time-series substrate.

use proptest::prelude::*;
use sweetspot_timeseries::clean::{clean, drop_invalid, regularize, CleanConfig};
use sweetspot_timeseries::ingest::{parse_csv, to_csv};
use sweetspot_timeseries::windowing::moving_windows;
use sweetspot_timeseries::{IrregularSeries, RegularSeries, Seconds};

/// Strategy: strictly increasing timestamps with jittered gaps, paired with
/// finite values.
fn irregular_strategy() -> impl Strategy<Value = IrregularSeries> {
    prop::collection::vec((0.1f64..100.0, -1e6f64..1e6), 2..80).prop_map(|gaps| {
        let mut t = 0.0;
        let mut pairs = Vec::with_capacity(gaps.len());
        for (gap, v) in gaps {
            t += gap;
            pairs.push((Seconds(t), v));
        }
        IrregularSeries::from_pairs(pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_pairs_always_sorted(pairs in prop::collection::vec((0f64..1e6, -1e3f64..1e3), 0..50)) {
        let series = IrregularSeries::from_pairs(
            pairs.into_iter().map(|(t, v)| (Seconds(t), v)).collect(),
        );
        for w in series.times().windows(2) {
            prop_assert!(w[0].value() < w[1].value());
        }
    }

    #[test]
    fn regularize_covers_span_with_input_values(series in irregular_strategy()) {
        let interval = Seconds(1.0);
        let regular = regularize(&series, interval).unwrap();
        // Grid starts at the first sample and covers the last.
        prop_assert_eq!(regular.start(), series.start().unwrap());
        let end = regular.time_of(regular.len() - 1);
        prop_assert!(end.value() >= series.end().unwrap().value() - interval.value());
        // Every value is one of the input values (nearest-neighbour).
        for v in regular.values() {
            prop_assert!(series.values().contains(v));
        }
    }

    #[test]
    fn regularize_identity_on_regular_input(
        n in 2usize..60,
        interval in 0.5f64..100.0,
        base in -100f64..100.0,
    ) {
        let values: Vec<f64> = (0..n).map(|i| base + i as f64).collect();
        let reg = RegularSeries::new(Seconds(5.0), Seconds(interval), values);
        let back = regularize(&reg.to_irregular(), Seconds(interval)).unwrap();
        prop_assert_eq!(back, reg);
    }

    #[test]
    fn clean_output_has_no_nans(series in irregular_strategy()) {
        if let Ok(out) = clean(&series, CleanConfig::default()) {
            prop_assert!(out.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn drop_invalid_is_idempotent(series in irregular_strategy()) {
        let once = drop_invalid(&series);
        let twice = drop_invalid(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn csv_roundtrip_preserves_series(series in irregular_strategy()) {
        let text = to_csv(&series);
        let back = parse_csv(&text).unwrap();
        prop_assert_eq!(back.len(), series.len());
        for ((t1, v1), (t2, v2)) in series.iter().zip(back.iter()) {
            prop_assert!((t1.value() - t2.value()).abs() < 1e-9);
            prop_assert!((v1 - v2).abs() < 1e-9 * v1.abs().max(1.0));
        }
    }

    #[test]
    fn windows_cover_only_valid_ranges(
        n in 10usize..200,
        win in 2usize..50,
        step in 1usize..20,
    ) {
        let series = RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0),
            (0..n).map(|i| i as f64).collect(),
        );
        for view in moving_windows(&series, Seconds(win as f64), Seconds(step as f64)) {
            prop_assert!(view.start_index + view.values.len() <= n);
            // Window content matches the underlying series.
            for (k, &v) in view.values.iter().enumerate() {
                prop_assert_eq!(v, (view.start_index + k) as f64);
            }
        }
    }

    #[test]
    fn nearest_value_returns_an_input_value(series in irregular_strategy(), t in 0f64..5000.0) {
        let v = series.nearest_value(Seconds(t));
        prop_assert!(series.values().contains(&v));
    }

    #[test]
    fn median_interval_within_gap_range(series in irregular_strategy()) {
        let m = series.median_interval().unwrap().value();
        let gaps: Vec<f64> = series
            .times()
            .windows(2)
            .map(|w| w[1].value() - w[0].value())
            .collect();
        let lo = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = gaps.iter().cloned().fold(0.0, f64::max);
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
    }
}
