//! Property-based tests for the DSP substrate.
//!
//! These pin down the algebraic invariants the rest of the workspace relies
//! on: transforms that round-trip, energy that is conserved, estimators that
//! stay within physical bounds.

use proptest::prelude::*;
use sweetspot_dsp::fft::{dft_naive, one_sided_len, FftPlanner};
use sweetspot_dsp::interp::Interp;
use sweetspot_dsp::quantize::Quantizer;
use sweetspot_dsp::resample::resample_fft;
use sweetspot_dsp::stats::{percentile, Cdf, FiveNumber};
use sweetspot_dsp::Complex64;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

fn complex_signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_is_identity(sig in complex_signal_strategy(200)) {
        let mut planner = FftPlanner::new();
        let mut buf = sig.clone();
        planner.fft_in_place(&mut buf);
        planner.ifft_in_place(&mut buf);
        for (a, b) in sig.iter().zip(&buf) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_naive_dft(sig in complex_signal_strategy(48)) {
        let mut planner = FftPlanner::new();
        let expected = dft_naive(&sig);
        let mut buf = sig;
        planner.fft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&expected) {
            prop_assert!((a.re - b.re).abs() < 1e-5);
            prop_assert!((a.im - b.im).abs() < 1e-5);
        }
    }

    #[test]
    fn parseval_holds(sig in complex_signal_strategy(150)) {
        let mut planner = FftPlanner::new();
        let n = sig.len() as f64;
        let time_energy: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let mut buf = sig;
        planner.fft_in_place(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        let tol = 1e-9 * time_energy.max(1.0);
        prop_assert!((time_energy - freq_energy).abs() < tol);
    }

    #[test]
    fn rfft_matches_complex_fft(sig in signal_strategy(300)) {
        // Lengths 1..300 cover the packed fast path over both inner plans
        // (power-of-two and Bluestein halves) plus the odd-length fallback.
        let mut planner = FftPlanner::new();
        let n = sig.len();
        let mut one_sided = Vec::new();
        planner.fft_real_into(&sig, &mut one_sided);
        prop_assert_eq!(one_sided.len(), one_sided_len(n));
        let mut full: Vec<Complex64> = sig.iter().map(|&x| Complex64::from_real(x)).collect();
        planner.fft_in_place(&mut full);
        let scale = sig.iter().map(|x| x.abs()).fold(1.0, f64::max);
        let tol = 1e-9 * scale * n as f64;
        for (k, c) in one_sided.iter().enumerate() {
            prop_assert!((c.re - full[k].re).abs() < tol, "bin {}: {} vs {}", k, c.re, full[k].re);
            prop_assert!((c.im - full[k].im).abs() < tol, "bin {}: {} vs {}", k, c.im, full[k].im);
        }
    }

    #[test]
    fn rfft_inverse_roundtrips(sig in signal_strategy(300)) {
        let mut planner = FftPlanner::new();
        let mut spec = Vec::new();
        planner.fft_real_into(&sig, &mut spec);
        let mut back = Vec::new();
        planner.ifft_real_into(&spec, sig.len(), &mut back);
        let scale = sig.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for (a, b) in sig.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8 * scale, "{} vs {}", a, b);
        }
    }

    #[test]
    fn real_fft_is_conjugate_symmetric(sig in signal_strategy(120)) {
        let mut planner = FftPlanner::new();
        let spec = planner.fft_real(&sig);
        let n = sig.len();
        let scale = sig.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-7 * scale * n as f64);
            prop_assert!((a.im - b.im).abs() < 1e-7 * scale * n as f64);
        }
    }

    #[test]
    fn upsample_then_downsample_is_identity(
        sig in signal_strategy(100),
        factor in 2usize..5,
    ) {
        let mut planner = FftPlanner::new();
        let up = resample_fft(&mut planner, &sig, sig.len() * factor);
        let down = resample_fft(&mut planner, &up, sig.len());
        let scale = sig.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for (a, b) in sig.iter().zip(&down) {
            prop_assert!((a - b).abs() < 1e-6 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn quantizer_idempotent_and_bounded(
        xs in signal_strategy(100),
        step in 1e-3f64..10.0,
    ) {
        let q = Quantizer::new(step);
        for &x in &xs {
            let once = q.quantize(x);
            prop_assert_eq!(q.quantize(once), once);
            prop_assert!((once - x).abs() <= step / 2.0 + 1e-9 * x.abs().max(1.0));
        }
    }

    #[test]
    fn interp_exact_on_grid(sig in signal_strategy(60), fs in 0.1f64..100.0) {
        for method in [Interp::Nearest, Interp::PreviousHold, Interp::Linear] {
            for (i, &want) in sig.iter().enumerate() {
                let got = method.at(&sig, fs, i as f64 / fs);
                prop_assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
            }
        }
    }

    #[test]
    fn percentile_within_bounds(xs in signal_strategy(80), p in 0.0f64..=100.0) {
        let v = percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn cdf_is_monotone(xs in signal_strategy(80)) {
        let cdf = Cdf::new(xs);
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        if let Some(last) = pts.last() {
            prop_assert!((last.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn five_number_is_ordered(xs in signal_strategy(80)) {
        let f = FiveNumber::of(&xs);
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median);
        prop_assert!(f.median <= f.q3 && f.q3 <= f.max);
    }

    #[test]
    fn goertzel_matches_fft_bin(sig in signal_strategy(64)) {
        let mut planner = FftPlanner::new();
        let n = sig.len();
        let fs = 1.0;
        let spec = planner.fft_real(&sig);
        let k = n / 3;
        let f = k as f64 * fs / n as f64;
        let g = sweetspot_dsp::goertzel::goertzel_power(&sig, fs, f);
        let want = spec[k].norm_sqr();
        prop_assert!((g - want).abs() < 1e-5 * want.max(1.0), "{g} vs {want}");
    }
}
