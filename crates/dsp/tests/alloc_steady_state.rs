//! Allocation accounting for the spectral pipeline.
//!
//! Pins the PR's zero-allocation guarantee with a counting global allocator:
//! once the planner, scratch and output buffers are warm, `periodogram_into`
//! and `welch_into` must not touch the heap at all, and `stft` must allocate
//! only each frame's own output power buffer.
//!
//! The counter is **per-thread**: libtest's harness threads (timeout
//! watchdog, capture machinery) allocate at unpredictable times, so a
//! process-global counter would flake. Counting only the measuring thread's
//! allocations makes the zero assertion exact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::psd::{periodogram_into, welch_into, PsdConfig, PsdScratch, WelchConfig};
use sweetspot_dsp::stft::{stft, StftConfig};
use sweetspot_dsp::window::Window;

std::thread_local! {
    // const-init + no Drop ⇒ accessing this inside the allocator hooks
    // never itself allocates or registers a TLS destructor.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.002 * t).sin() + 0.5 * (0.04 * t).sin() + 0.1 * (0.3 * t).cos()
        })
        .collect()
}

#[test]
fn spectral_pipeline_steady_state_is_allocation_free() {
    let cfg = PsdConfig {
        window: Window::Hann,
        detrend: true,
    };
    let mut planner = FftPlanner::new();
    let mut scratch = PsdScratch::new();
    let mut power = Vec::new();

    // Periodogram: pow-of-two and Bluestein (day-trace) lengths. First call
    // warms plans and buffers; the second must be allocation-free.
    for n in [4096usize, 2880] {
        let sig = signal(n);
        periodogram_into(&mut planner, &mut scratch, &sig, cfg, &mut power);
        let count = allocations_during(|| {
            periodogram_into(&mut planner, &mut scratch, &sig, cfg, &mut power);
        });
        assert_eq!(count, 0, "steady-state periodogram (n={n}) must not allocate");
    }

    // Welch: the per-segment inner loop must be allocation-free — not just
    // amortized. With everything warm, an entire multi-segment run touches
    // the heap zero times, so per-segment cost is exactly zero.
    let welch_cfg = WelchConfig {
        segment_len: 256,
        overlap: 0.5,
        window: Window::Hann,
        detrend: true,
    };
    let long = signal(8192); // 63 overlapped segments
    let mut acc = Vec::new();
    welch_into(&mut planner, &mut scratch, &long, welch_cfg, &mut acc);
    let count = allocations_during(|| {
        welch_into(&mut planner, &mut scratch, &long, welch_cfg, &mut acc);
    });
    assert_eq!(count, 0, "steady-state welch must not allocate in its segment loop");

    // STFT returns one Spectrum per frame, so the per-frame floor is the
    // output power buffer itself (1 allocation) — the scratch contributes
    // nothing. Budget: frames + the pre-sized frames vec + small slack for
    // the Vec moves inside Spectrum construction.
    let stft_cfg = StftConfig {
        frame_len: 256,
        hop: 128,
        window: Window::Hann,
        detrend: true,
    };
    let frames = stft(&mut planner, &long, 1.0, stft_cfg); // warm plans
    let frame_count = frames.len();
    assert!(frame_count > 10, "geometry sanity: got {frame_count} frames");
    let count = allocations_during(|| {
        let f = stft(&mut planner, &long, 1.0, stft_cfg);
        assert_eq!(f.len(), frame_count);
    });
    assert!(
        count <= frame_count + 4,
        "stft should allocate only per-frame outputs: {count} allocations for {frame_count} frames"
    );
}
