//! The Goertzel algorithm: single-frequency DFT evaluation in `O(N)`.
//!
//! The dual-rate aliasing detector (§4.1) compares spectra at a handful of
//! frequencies; Goertzel evaluates one bin without a full FFT, and — unlike
//! an FFT bin — at *any* real frequency, which matters when comparing
//! spectra taken at two different sampling rates whose bin grids do not
//! align.

use std::f64::consts::PI;

/// Squared magnitude `|X(f)|²` of the (unnormalized) DFT of `samples` at
/// frequency `freq` Hz, for a signal sampled at `sample_rate` Hz.
///
/// Matches `fft_real(samples)[k].norm_sqr()` when `freq` falls exactly on
/// bin `k`.
///
/// # Panics
/// Panics if `samples` is empty or `sample_rate` is not positive.
pub fn goertzel_power(samples: &[f64], sample_rate: f64, freq: f64) -> f64 {
    assert!(!samples.is_empty(), "cannot evaluate an empty signal");
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    let omega = 2.0 * PI * freq / sample_rate;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2
}

/// Amplitude estimate of a sinusoid at `freq` Hz within `samples`:
/// `2·|X(f)|/N`.
pub fn goertzel_amplitude(samples: &[f64], sample_rate: f64, freq: f64) -> f64 {
    2.0 * goertzel_power(samples, sample_rate, freq).sqrt() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::FftPlanner;

    fn tone(n: usize, fs: f64, f: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn matches_fft_bin() {
        let mut p = FftPlanner::new();
        let fs = 128.0;
        let n = 128;
        let sig: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.17).sin() + 0.5 * (i as f64 * 0.71).cos())
            .collect();
        let spec = p.fft_real(&sig);
        for k in [0usize, 1, 5, 31, 64] {
            let f = k as f64 * fs / n as f64;
            let g = goertzel_power(&sig, fs, f);
            let want = spec[k].norm_sqr();
            assert!(
                (g - want).abs() < 1e-6 * want.max(1.0),
                "bin {k}: {g} vs {want}"
            );
        }
    }

    #[test]
    fn amplitude_recovers_tone() {
        let sig = tone(1000, 1000.0, 50.0, 3.0);
        let a = goertzel_amplitude(&sig, 1000.0, 50.0);
        assert!((a - 3.0).abs() < 1e-9, "amplitude {a}");
    }

    #[test]
    fn off_tone_power_is_small() {
        let sig = tone(1000, 1000.0, 50.0, 1.0);
        let on = goertzel_power(&sig, 1000.0, 50.0);
        let off = goertzel_power(&sig, 1000.0, 133.0);
        assert!(off < on * 1e-3);
    }

    #[test]
    fn non_bin_frequency_supported() {
        // 50.3 Hz does not fall on any bin of a 1000-point FFT at 1 kHz;
        // Goertzel still finds most of its power.
        let sig = tone(1000, 1000.0, 50.3, 1.0);
        let a = goertzel_amplitude(&sig, 1000.0, 50.3);
        assert!((a - 1.0).abs() < 0.05, "amplitude {a}");
    }

    #[test]
    fn dc_power() {
        let sig = vec![2.0; 100];
        let p = goertzel_power(&sig, 10.0, 0.0);
        // Unnormalized DFT at DC = Σx = 200 → power 40 000.
        assert!((p - 40_000.0).abs() < 1e-6);
    }
}
