//! Fast Fourier transforms.
//!
//! Two algorithms cover all input lengths:
//!
//! * **Iterative radix-2 Cooley–Tukey** (decimation in time, bit-reversed
//!   input ordering) for power-of-two lengths.
//! * **Bluestein's chirp-z algorithm** for everything else, which re-expresses
//!   an arbitrary-length DFT as a linear convolution evaluated with
//!   power-of-two FFTs of length `≥ 2N − 1`.
//!
//! [`FftPlanner`] caches twiddle tables and Bluestein chirps per length so
//! repeated transforms of the same size (the common case when scanning a
//! fleet of equally-long traces) pay the setup cost once.
//!
//! Conventions: the forward transform is **unnormalized**
//! (`X_k = Σ x_n e^{−2πi nk/N}`); the inverse scales by `1/N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n`. `next_pow2(0) == 1`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Precomputed tables for a power-of-two radix-2 transform.
struct Pow2Plan {
    len: usize,
    /// Forward twiddles: `twiddles[k] = e^{−2πi k / len}` for `k < len/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation for `len` points.
    rev: Vec<u32>,
}

impl Pow2Plan {
    fn new(len: usize) -> Self {
        debug_assert!(is_pow2(len));
        let half = len / 2;
        let twiddles = (0..half)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / len as f64))
            .collect();
        let bits = len.trailing_zeros();
        let rev = (0..len as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // `bits == 0` (len == 1) never indexes `rev`, so the `max(1)` guard is
        // only there to avoid an invalid shift.
        Pow2Plan { len, twiddles, rev }
    }

    /// In-place forward (inverse = conjugate trick handled by caller).
    fn fft(&self, buf: &mut [Complex64]) {
        let n = self.len;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterflies.
        let mut size = 2;
        while size <= n {
            let half = size / 2;
            let step = n / size;
            let mut base = 0;
            while base < n {
                for j in 0..half {
                    let w = self.twiddles[j * step];
                    let lo = buf[base + j];
                    let hi = buf[base + j + half] * w;
                    buf[base + j] = lo + hi;
                    buf[base + j + half] = lo - hi;
                }
                base += size;
            }
            size <<= 1;
        }
    }
}

/// Precomputed state for a Bluestein transform of arbitrary length `n`.
struct BluesteinPlan {
    n: usize,
    /// Convolution length (power of two `≥ 2n − 1`).
    m: usize,
    /// `chirp[k] = e^{−iπ k² / n}`, the pre/post-multiplier.
    chirp: Vec<Complex64>,
    /// FFT of the symmetric chirp kernel `b`, reused every call.
    kernel_fft: Vec<Complex64>,
    /// Power-of-two plan of length `m`.
    inner: Rc<Pow2Plan>,
}

impl BluesteinPlan {
    fn new(n: usize, inner: Rc<Pow2Plan>) -> Self {
        let m = inner.len;
        debug_assert!(m >= 2 * n - 1);
        // k² mod 2n keeps the chirp angle small and exact: e^{−iπ k²/n} has
        // period 2n in k².
        let two_n = 2 * n as u128;
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % two_n;
                Complex64::cis(-PI * k2 as f64 / n as f64)
            })
            .collect();
        let mut kernel = vec![Complex64::ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            let b = chirp[k].conj();
            kernel[k] = b;
            kernel[m - k] = b;
        }
        inner.fft(&mut kernel);
        BluesteinPlan {
            n,
            m,
            chirp,
            kernel_fft: kernel,
            inner,
        }
    }

    fn fft(&self, buf: &mut [Complex64]) {
        debug_assert_eq!(buf.len(), self.n);
        let mut a = vec![Complex64::ZERO; self.m];
        for (k, slot) in a.iter_mut().take(self.n).enumerate() {
            *slot = buf[k] * self.chirp[k];
        }
        self.inner.fft(&mut a);
        for (x, k) in a.iter_mut().zip(&self.kernel_fft) {
            *x *= *k;
        }
        // Inverse FFT of length m via conjugation.
        for x in a.iter_mut() {
            *x = x.conj();
        }
        self.inner.fft(&mut a);
        let scale = 1.0 / self.m as f64;
        for (k, out) in buf.iter_mut().enumerate() {
            *out = a[k].conj().scale(scale) * self.chirp[k];
        }
    }
}

enum Plan {
    Pow2(Rc<Pow2Plan>),
    Bluestein(Rc<BluesteinPlan>),
}

/// Caching FFT planner.
///
/// Create once and reuse: tables are computed lazily per length and cached.
/// Not thread-safe by design (keep one planner per worker thread; plans are
/// cheap relative to trace analysis).
///
/// ```
/// use sweetspot_dsp::fft::FftPlanner;
/// use sweetspot_dsp::Complex64;
///
/// let mut p = FftPlanner::new();
/// // Arbitrary (non-power-of-two) lengths are fine:
/// let mut buf = vec![Complex64::ONE; 12];
/// p.fft_in_place(&mut buf);
/// assert!((buf[0].re - 12.0).abs() < 1e-9); // DC bin = Σ x_n
/// ```
pub struct FftPlanner {
    pow2: HashMap<usize, Rc<Pow2Plan>>,
    bluestein: HashMap<usize, Rc<BluesteinPlan>>,
}

impl Default for FftPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        FftPlanner {
            pow2: HashMap::new(),
            bluestein: HashMap::new(),
        }
    }

    fn pow2_plan(&mut self, len: usize) -> Rc<Pow2Plan> {
        self.pow2
            .entry(len)
            .or_insert_with(|| Rc::new(Pow2Plan::new(len)))
            .clone()
    }

    fn plan(&mut self, len: usize) -> Plan {
        if is_pow2(len) {
            Plan::Pow2(self.pow2_plan(len))
        } else {
            if let Some(p) = self.bluestein.get(&len) {
                return Plan::Bluestein(p.clone());
            }
            let m = next_pow2(2 * len - 1);
            let inner = self.pow2_plan(m);
            let p = Rc::new(BluesteinPlan::new(len, inner));
            self.bluestein.insert(len, p.clone());
            Plan::Bluestein(p)
        }
    }

    /// Forward DFT, in place, unnormalized. Any length (including 0 and 1,
    /// which are no-ops).
    pub fn fft_in_place(&mut self, buf: &mut [Complex64]) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        match self.plan(n) {
            Plan::Pow2(p) => p.fft(buf),
            Plan::Bluestein(p) => p.fft(buf),
        }
    }

    /// Inverse DFT, in place, scaled by `1/N` so it exactly undoes
    /// [`fft_in_place`](FftPlanner::fft_in_place).
    pub fn ifft_in_place(&mut self, buf: &mut [Complex64]) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        for x in buf.iter_mut() {
            *x = x.conj();
        }
        self.fft_in_place(buf);
        let scale = 1.0 / n as f64;
        for x in buf.iter_mut() {
            *x = x.conj().scale(scale);
        }
    }

    /// Forward DFT of a real signal; returns all `N` complex bins.
    pub fn fft_real(&mut self, input: &[f64]) -> Vec<Complex64> {
        let mut buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
        self.fft_in_place(&mut buf);
        buf
    }

    /// Inverse DFT returning only real parts — the counterpart of
    /// [`fft_real`](FftPlanner::fft_real) for spectra with (approximate)
    /// conjugate symmetry.
    pub fn ifft_real(&mut self, spectrum: &[Complex64]) -> Vec<f64> {
        let mut buf = spectrum.to_vec();
        self.ifft_in_place(&mut buf);
        buf.into_iter().map(|c| c.re).collect()
    }
}

/// Reference `O(N²)` DFT used to validate the fast paths in tests and to
/// cross-check odd lengths in benches. Forward, unnormalized.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| input[t] * Complex64::cis(-2.0 * PI * (t * k % n.max(1)) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[0] = Complex64::ONE;
        v
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut p = FftPlanner::new();
        for n in [2usize, 4, 8, 64, 3, 5, 12, 100] {
            let mut buf = impulse(n);
            p.fft_in_place(&mut buf);
            for b in &buf {
                assert!((b.re - 1.0).abs() < 1e-9 && b.im.abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let mut p = FftPlanner::new();
        let input: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let expected = dft_naive(&input);
        let mut buf = input;
        p.fft_in_place(&mut buf);
        assert_close(&buf, &expected, 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        let mut p = FftPlanner::new();
        for n in [3usize, 5, 6, 7, 9, 11, 15, 17, 31, 50, 101] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut buf = input;
            p.fft_in_place(&mut buf);
            assert_close(&buf, &expected, 1e-8);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let mut p = FftPlanner::new();
        for n in [1usize, 2, 8, 13, 64, 100, 257] {
            let orig: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let mut buf = orig.clone();
            p.fft_in_place(&mut buf);
            p.ifft_in_place(&mut buf);
            assert_close(&buf, &orig, 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let mut p = FftPlanner::new();
        let n = 128;
        let k0 = 5;
        let input: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = p.fft_real(&input);
        // cos splits into bins k0 and n−k0, each with magnitude n/2.
        assert!((spec[k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        for (k, b) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(b.norm() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let mut p = FftPlanner::new();
        let n = 90; // exercises the Bluestein path
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 0.3).collect();
        let spec = p.fft_real(&input);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut p = FftPlanner::new();
        for n in [32usize, 77] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).sin(), 0.1 * i as f64))
                .collect();
            let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
            let mut buf = input;
            p.fft_in_place(&mut buf);
            let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn linearity() {
        let mut p = FftPlanner::new();
        let n = 24;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.0)).collect();

        let mut fa = a.clone();
        p.fft_in_place(&mut fa);
        let mut fb = b.clone();
        p.fft_in_place(&mut fb);
        let mut fsum = sum;
        p.fft_in_place(&mut fsum);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y.scale(2.0)).collect();
        assert_close(&fsum, &expected, 1e-8);
    }

    #[test]
    fn zero_and_one_point_are_noops() {
        let mut p = FftPlanner::new();
        let mut empty: Vec<Complex64> = vec![];
        p.fft_in_place(&mut empty);
        let mut one = vec![Complex64::new(3.0, -1.0)];
        p.fft_in_place(&mut one);
        assert_eq!(one[0], Complex64::new(3.0, -1.0));
        p.ifft_in_place(&mut one);
        assert_eq!(one[0], Complex64::new(3.0, -1.0));
    }

    #[test]
    fn planner_reuse_is_consistent() {
        let mut p = FftPlanner::new();
        let input: Vec<Complex64> = (0..48).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut first = input.clone();
        p.fft_in_place(&mut first);
        let mut second = input;
        p.fft_in_place(&mut second);
        assert_close(&first, &second, 0.0);
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1) && is_pow2(2) && is_pow2(1024));
        assert!(!is_pow2(0) && !is_pow2(3) && !is_pow2(12));
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(16), 16);
    }
}
