//! Fast Fourier transforms.
//!
//! Three algorithms cover all input lengths:
//!
//! * **Iterative radix-2 Cooley–Tukey** (decimation in time, bit-reversed
//!   input ordering) for power-of-two lengths.
//! * **Bluestein's chirp-z algorithm** for everything else, which re-expresses
//!   an arbitrary-length DFT as a linear convolution evaluated with
//!   power-of-two FFTs of length `≥ 2N − 1`.
//! * A **packed real-input fast path** for even lengths: a length-`N` real
//!   transform is evaluated as one length-`N/2` complex FFT plus a
//!   conjugate-symmetric untangle pass — half the complex FFT work of the
//!   naive "promote to complex" route.
//!
//! [`FftPlanner`] caches twiddle tables, Bluestein chirps, real-transform
//! untangle twiddles and window-coefficient tables per length, so repeated
//! transforms of the same size (the common case when scanning a fleet of
//! equally-long traces) pay the setup cost once. The whole table cache lives
//! behind `Arc<Mutex<…>>`: a planner is `Send`, and [`FftPlanner::clone`]
//! shares **one mutable cache** between the clones (each with fresh scratch
//! space), so a fleet of 10⁵ per-device analyzers on one worker holds every
//! distinct plan once instead of once per device — tables are pure data and
//! never influence results, only memory and setup time.
//!
//! By default the cache is unbounded — fine for workloads that revisit a
//! handful of lengths. Fleet-scale workloads that sweep *many* distinct
//! lengths (10⁵ adaptive controllers each polling at its own rate) can cap it
//! with [`FftPlanner::set_table_budget`]: the cache then evicts
//! least-recently-used tables once the cap is exceeded. Because tables are
//! pure functions of their length, eviction is invisible to results — a
//! re-requested length rebuilds the identical table and pays only setup time.
//!
//! The `*_into` methods write into caller-owned buffers and reuse the
//! planner's [`FftScratch`]; once the buffers have warmed up, steady-state
//! transforms of previously seen lengths perform **no heap allocations** —
//! the property the PSD/Welch/STFT pipeline in [`crate::psd`] relies on.
//!
//! Conventions: the forward transform is **unnormalized**
//! (`X_k = Σ x_n e^{−2πi nk/N}`); the inverse scales by `1/N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use crate::window::{Window, WindowTable};
use std::collections::{HashMap, HashSet};
use std::f64::consts::PI;
use std::sync::{Arc, Mutex};

use sweetspot_obs::Counter;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n`. `next_pow2(0) == 1`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Number of one-sided spectrum bins of a length-`n` real signal:
/// `n/2 + 1` for even `n`, `(n+1)/2` for odd `n`, `0` for `n == 0`.
#[inline]
pub fn one_sided_len(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n / 2 + 1
    }
}

/// Reusable scratch space for the planner's transforms.
///
/// Every [`FftPlanner`] owns one (used by the planner-internal convenience
/// APIs); the `*_into_with` variants accept an external scratch so several
/// pipelines can keep independent warmed-up buffers. All buffers grow on
/// demand and are reused across calls — steady state allocates nothing.
#[derive(Debug, Default)]
pub struct FftScratch {
    /// Bluestein convolution buffer (length `m = next_pow2(2n − 1)`).
    conv: Vec<Complex64>,
    /// Packed half-length buffer for the real-input fast path.
    half: Vec<Complex64>,
    /// Full-length complex buffer for odd-length real transforms.
    full: Vec<Complex64>,
}

impl FftScratch {
    /// Creates empty scratch space; buffers grow on first use.
    pub fn new() -> Self {
        FftScratch::default()
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths) —
    /// the per-worker memory-footprint accounting of the fleet engine.
    pub fn resident_bytes(&self) -> usize {
        (self.conv.capacity() + self.half.capacity() + self.full.capacity())
            * std::mem::size_of::<Complex64>()
    }
}

/// Allocates a table `Vec` whose capacity is `len` rounded up to a power
/// of two.
///
/// Plan tables live in a byte-budgeted cache that continuously evicts and
/// rebuilds as adaptive controllers sweep through stream lengths. Exact-size
/// allocations at ever-growing lengths defeat every allocator's free lists —
/// each new table is slightly larger than any freed hole, so process RSS
/// ratchets toward the *cumulative* churn instead of the budget. Capacities
/// quantized to power-of-two size classes make freed blocks exactly
/// reusable; `table_bytes`/`resident_bytes` charge capacity, so the budget
/// accounting stays honest about the rounding.
pub(crate) fn quantized_table<T>(len: usize) -> Vec<T> {
    Vec::with_capacity(len.next_power_of_two())
}

/// Precomputed tables for a power-of-two radix-2 transform.
struct Pow2Plan {
    len: usize,
    /// Forward twiddles: `twiddles[k] = e^{−2πi k / len}` for `k < len/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation for `len` points.
    rev: Vec<u32>,
}

impl Pow2Plan {
    fn new(len: usize) -> Self {
        debug_assert!(is_pow2(len));
        let half = len / 2;
        let twiddles = (0..half)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / len as f64))
            .collect();
        let bits = len.trailing_zeros();
        let rev = (0..len as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // `bits == 0` (len == 1) never indexes `rev`, so the `max(1)` guard is
        // only there to avoid an invalid shift.
        Pow2Plan { len, twiddles, rev }
    }

    /// Heap bytes this plan's tables hold (capacities, not lengths).
    fn table_bytes(&self) -> usize {
        self.twiddles.capacity() * std::mem::size_of::<Complex64>()
            + self.rev.capacity() * std::mem::size_of::<u32>()
    }

    /// In-place forward (inverse = conjugate trick handled by caller).
    fn fft(&self, buf: &mut [Complex64]) {
        let n = self.len;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterflies.
        let mut size = 2;
        while size <= n {
            let half = size / 2;
            let step = n / size;
            let mut base = 0;
            while base < n {
                for j in 0..half {
                    let w = self.twiddles[j * step];
                    let lo = buf[base + j];
                    let hi = buf[base + j + half] * w;
                    buf[base + j] = lo + hi;
                    buf[base + j + half] = lo - hi;
                }
                base += size;
            }
            size <<= 1;
        }
    }
}

/// Precomputed state for a Bluestein transform of arbitrary length `n`.
struct BluesteinPlan {
    n: usize,
    /// Convolution length (power of two `≥ 2n − 1`).
    m: usize,
    /// `chirp[k] = e^{−iπ k² / n}`, the pre/post-multiplier.
    chirp: Vec<Complex64>,
    /// FFT of the symmetric chirp kernel `b`, reused every call.
    kernel_fft: Vec<Complex64>,
    /// Power-of-two plan of length `m`.
    inner: Arc<Pow2Plan>,
}

impl BluesteinPlan {
    fn new(n: usize, inner: Arc<Pow2Plan>) -> Self {
        let m = inner.len;
        debug_assert!(m >= 2 * n - 1);
        // k² mod 2n keeps the chirp angle small and exact: e^{−iπ k²/n} has
        // period 2n in k².
        let two_n = 2 * n as u128;
        let mut chirp = quantized_table::<Complex64>(n);
        chirp.extend((0..n).map(|k| {
            let k2 = (k as u128 * k as u128) % two_n;
            Complex64::cis(-PI * k2 as f64 / n as f64)
        }));
        let mut kernel = vec![Complex64::ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            let b = chirp[k].conj();
            kernel[k] = b;
            kernel[m - k] = b;
        }
        inner.fft(&mut kernel);
        BluesteinPlan {
            n,
            m,
            chirp,
            kernel_fft: kernel,
            inner,
        }
    }

    /// Heap bytes this plan *pins*: its own chirp/kernel tables plus the
    /// inner power-of-two plan its `Arc` keeps alive.
    ///
    /// The inner plan usually also sits in the cache's pow2 map, so summing
    /// entries double-counts it — deliberately. Charging every entry its
    /// full pinned chain makes the budget counter an upper bound on actual
    /// heap: evicting an inner entry while an outer plan still references
    /// it releases no memory, and an own-bytes-only charge would let the
    /// cache pin several times its budget through such stale `Arc`s.
    fn table_bytes(&self) -> usize {
        (self.chirp.capacity() + self.kernel_fft.capacity())
            * std::mem::size_of::<Complex64>()
            + self.inner.table_bytes()
    }

    /// Forward transform; `conv` is the reusable convolution buffer.
    fn fft(&self, buf: &mut [Complex64], conv: &mut Vec<Complex64>) {
        debug_assert_eq!(buf.len(), self.n);
        conv.clear();
        conv.resize(self.m, Complex64::ZERO);
        for (k, slot) in conv.iter_mut().take(self.n).enumerate() {
            *slot = buf[k] * self.chirp[k];
        }
        self.inner.fft(conv);
        for (x, k) in conv.iter_mut().zip(&self.kernel_fft) {
            *x *= *k;
        }
        // Inverse FFT of length m via conjugation.
        for x in conv.iter_mut() {
            *x = x.conj();
        }
        self.inner.fft(conv);
        let scale = 1.0 / self.m as f64;
        for (k, out) in buf.iter_mut().enumerate() {
            *out = conv[k].conj().scale(scale) * self.chirp[k];
        }
    }
}

/// A cached complex plan for one length.
#[derive(Clone)]
enum Plan {
    Pow2(Arc<Pow2Plan>),
    Bluestein(Arc<BluesteinPlan>),
}

impl Plan {
    fn fft(&self, buf: &mut [Complex64], conv: &mut Vec<Complex64>) {
        match self {
            Plan::Pow2(p) => p.fft(buf),
            Plan::Bluestein(p) => p.fft(buf, conv),
        }
    }

    /// Heap bytes the plan pins (own tables + inner chain; see
    /// [`BluesteinPlan::table_bytes`] for why pinned, not owned).
    fn table_bytes(&self) -> usize {
        match self {
            Plan::Pow2(p) => p.table_bytes(),
            Plan::Bluestein(p) => p.table_bytes(),
        }
    }
}

/// Precomputed state for the packed real-input transform of even length `n`:
/// one length-`n/2` complex FFT plus a conjugate-symmetric untangle pass.
struct RealPlan {
    n: usize,
    /// Untangle twiddles `e^{−2πi k / n}` for `k ≤ n/2`.
    twiddles: Vec<Complex64>,
    /// Complex plan of length `n/2`.
    inner: Plan,
}

impl RealPlan {
    fn new(n: usize, inner: Plan) -> Self {
        debug_assert!(n >= 2 && n.is_multiple_of(2));
        let m = n / 2;
        let mut twiddles = quantized_table::<Complex64>(m + 1);
        twiddles.extend((0..=m).map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64)));
        RealPlan { n, twiddles, inner }
    }

    /// Heap bytes this plan pins: its untangle twiddles plus the inner
    /// half-length complex plan its handle keeps alive (see
    /// [`BluesteinPlan::table_bytes`] for why pinned, not owned — for a
    /// Bluestein inner the chain is ~7× the twiddles' own bytes, and
    /// charging own bytes only let the cache pin several budgets' worth of
    /// evicted-but-referenced inners).
    fn table_bytes(&self) -> usize {
        self.twiddles.capacity() * std::mem::size_of::<Complex64>()
            + self.inner.table_bytes()
    }

    /// Forward: one-sided spectrum (bins `0..=n/2`) of `input` into `out`.
    ///
    /// Packs adjacent real samples into `n/2` complex points, transforms
    /// them with the half-length plan, then untangles the interleaved even/
    /// odd sub-spectra: with `Fe`/`Fo` the DFTs of the even- and odd-indexed
    /// samples, `X[k] = Fe[k] + e^{−2πik/n}·Fo[k]`.
    fn fft(&self, input: &[f64], out: &mut Vec<Complex64>, scratch: &mut FftScratch) {
        let n = self.n;
        let m = n / 2;
        debug_assert_eq!(input.len(), n);
        let half = &mut scratch.half;
        half.clear();
        half.extend(input.chunks_exact(2).map(|p| Complex64::new(p[0], p[1])));
        self.inner.fft(half, &mut scratch.conv);
        let half = &scratch.half;
        out.clear();
        out.resize(m + 1, Complex64::ZERO);
        // k = 0 and k = m both untangle from Z[0] alone (Fe₀ = Re Z₀,
        // Fo₀ = Im Z₀; w[0] = 1, w[m] = −1).
        out[0] = Complex64::from_real(half[0].re + half[0].im);
        out[m] = Complex64::from_real(half[0].re - half[0].im);
        // Interior bins pair up: with t = w[k]·Fo[k],
        // X[k] = Fe[k] + t and X[m−k] = conj(Fe[k] − t), so one pass over
        // k ≤ m/2 settles both ends with a single twiddle multiply. At the
        // midpoint (even m) Fe is real and t imaginary, so both writes agree.
        for k in 1..=m / 2 {
            let zk = half[k];
            let zmk = half[m - k].conj();
            let fe = (zk + zmk).scale(0.5);
            let fo = (zk - zmk) * Complex64::new(0.0, -0.5);
            let t = self.twiddles[k] * fo;
            out[k] = fe + t;
            out[m - k] = (fe - t).conj();
        }
    }

    /// Inverse: the length-`n` real signal whose one-sided spectrum is
    /// `spectrum`, scaled by `1/n` so it exactly undoes [`RealPlan::fft`].
    fn ifft(&self, spectrum: &[Complex64], out: &mut Vec<f64>, scratch: &mut FftScratch) {
        let n = self.n;
        let m = n / 2;
        debug_assert_eq!(spectrum.len(), m + 1);
        let half = &mut scratch.half;
        half.clear();
        half.reserve(m);
        for (k, w) in self.twiddles.iter().enumerate().take(m) {
            let xk = spectrum[k];
            let xmk = spectrum[m - k].conj();
            let fe = (xk + xmk).scale(0.5);
            let fo = (xk - xmk).scale(0.5) * w.conj();
            // Z[k] = Fe[k] + i·Fo[k] re-packs the two sub-spectra.
            half.push(fe + Complex64::new(0.0, 1.0) * fo);
        }
        // Inverse half-length FFT via conjugation, scaled 1/m; the packed
        // layout means the 1/m scale is exactly the 1/n the convention wants.
        for z in half.iter_mut() {
            *z = z.conj();
        }
        self.inner.fft(half, &mut scratch.conv);
        let scale = 1.0 / m as f64;
        out.clear();
        out.reserve(n);
        for z in scratch.half.iter() {
            let z = z.conj().scale(scale);
            out.push(z.re);
            out.push(z.im);
        }
    }
}

/// Caching FFT planner — the per-thread spectral context.
///
/// Create once and reuse: tables are computed lazily per length and cached
/// behind [`Arc`]. The planner is `Send`, and [`Clone`] shares the cached
/// tables (cheap `Arc` bumps) while giving the clone fresh scratch buffers,
/// so fleet-study workers can start from a warmed planner.
///
/// ```
/// use sweetspot_dsp::fft::FftPlanner;
/// use sweetspot_dsp::Complex64;
///
/// let mut p = FftPlanner::new();
/// // Arbitrary (non-power-of-two) lengths are fine:
/// let mut buf = vec![Complex64::ONE; 12];
/// p.fft_in_place(&mut buf);
/// assert!((buf[0].re - 12.0).abs() < 1e-9); // DC bin = Σ x_n
/// ```
pub struct FftPlanner {
    /// The shared, lazily grown table cache. One lock acquisition per plan
    /// lookup — uncontended in the per-worker usage pattern (clones that
    /// share a cache are stepped by one thread at a time), and a rounding
    /// error next to the transform it precedes.
    tables: Arc<Mutex<PlanTables>>,
    scratch: FftScratch,
    /// This handle's own lookup/hit/miss counts (see [`FftHandleStats`]).
    handle_stats: FftHandleStats,
    /// Sorted transform lengths this handle has requested, split by plan
    /// kind (a length-`n` complex plan and a length-`n` real plan are
    /// different tables). A handful of entries per handle in practice —
    /// settled controllers revisit the same lengths, so steady state never
    /// inserts (and never allocates).
    seen_complex: Vec<usize>,
    seen_real: Vec<usize>,
}

/// Plan-request statistics of one planner *handle* (one clone).
///
/// Counted at the handle, not the shared cache, deliberately: the shared
/// cache's hit pattern depends on which other clones share it — i.e. on the
/// worker-shard topology — while a handle's request sequence is a pure
/// function of the signal it analyzes. Summing handle stats over members in
/// device order therefore gives the same totals for any `--threads N`, which
/// is what lets them ride in the deterministic metrics snapshot. A "miss"
/// here means *first request of that length by this handle*; whether the
/// shared cache happened to already hold the table (warmed by a sibling) or
/// has since evicted it is a topology/budget question answered separately by
/// [`FftCacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FftHandleStats {
    /// Plan requests issued (one per transform of length ≥ 2).
    pub lookups: Counter,
    /// Requests for a length this handle had already requested.
    pub hits: Counter,
    /// First-time lengths (each implies table construction unless a sibling
    /// handle already built it).
    pub misses: Counter,
}

impl FftHandleStats {
    /// Folds another handle's counts into this one.
    pub fn merge(&mut self, other: &FftHandleStats) {
        self.lookups.merge(other.lookups);
        self.hits.merge(other.hits);
        self.misses.merge(other.misses);
    }
}

/// Lifetime statistics of one shared plan cache (all handles together).
///
/// These depend on the shard split and byte budget — how many clones share
/// the cache, in what order they warm it, when LRU eviction strikes — so
/// they are *topology-scoped*: reported on `--timing` stderr, never in the
/// thread-count-invariant metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FftCacheStats {
    /// Tables constructed (first builds and rebuilds).
    pub builds: u64,
    /// Total bytes of table constructed over the cache's lifetime.
    pub built_bytes: u64,
    /// Tables evicted by the LRU byte budget.
    pub evictions: u64,
    /// Total bytes evicted.
    pub evicted_bytes: u64,
    /// Bytes spent re-building tables that had been evicted earlier — the
    /// direct churn cost of running under a too-small budget.
    pub rebuilt_bytes: u64,
    /// Bytes currently resident (same figure as
    /// [`FftPlanner::table_bytes`]).
    pub resident_bytes: u64,
}

/// One cached table plus the bookkeeping the byte-budgeted cache needs:
/// its heap footprint (computed once at build) and a last-use stamp for
/// least-recently-used eviction.
struct Cached<T> {
    plan: Arc<T>,
    bytes: usize,
    last_used: u64,
}

/// Which cache map an eviction victim lives in.
enum Victim {
    Pow2(usize),
    Bluestein(usize),
    Real(usize),
    Window(Window, usize),
}

/// Map-qualified table identity, for remembering what has been evicted so a
/// later re-build of the same table can be billed as churn.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum TableKey {
    Pow2(usize),
    Bluestein(usize),
    Real(usize),
    Window(Window, usize),
}

/// Every cached table, grouped so one lock guards them all.
///
/// With `budget: Some(bytes)` the cache evicts least-recently-used tables
/// whenever `resident` exceeds the budget; nested tables (a Bluestein plan's
/// inner power-of-two plan, a real plan's half-length complex plan) are
/// accounted at their own cache entry, and an evicted entry that is still
/// referenced through such a nesting simply stays alive behind its `Arc`
/// until the referencing plan is evicted too.
#[derive(Default)]
struct PlanTables {
    pow2: HashMap<usize, Cached<Pow2Plan>>,
    bluestein: HashMap<usize, Cached<BluesteinPlan>>,
    real: HashMap<usize, Cached<RealPlan>>,
    windows: HashMap<(Window, usize), Cached<WindowTable>>,
    /// Byte cap on `resident`; `None` (the default) means unbounded.
    budget: Option<usize>,
    /// Monotonic access counter; every lookup stamps its entry so eviction
    /// can pick the least-recently-used victim.
    tick: u64,
    /// Sum of the `bytes` of every entry currently held.
    resident: usize,
    /// Lifetime build/eviction accounting (see [`FftCacheStats`]).
    stats: FftCacheStats,
    /// Keys evicted at least once, so a re-build can be billed as
    /// `rebuilt_bytes`. Grows only at eviction time — a settled fleet under
    /// its budget never touches it.
    evicted_keys: HashSet<TableKey>,
}

impl PlanTables {
    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Bills a table construction: every build, plus churn accounting when
    /// the same table had been evicted before.
    fn note_build(&mut self, key: TableKey, bytes: usize) {
        self.stats.builds += 1;
        self.stats.built_bytes += bytes as u64;
        if self.evicted_keys.contains(&key) {
            self.stats.rebuilt_bytes += bytes as u64;
        }
    }

    /// Bills an eviction and remembers the key for rebuild accounting.
    fn note_evict(&mut self, key: TableKey, bytes: usize) {
        self.stats.evictions += 1;
        self.stats.evicted_bytes += bytes as u64;
        self.evicted_keys.insert(key);
    }

    fn pow2_plan(&mut self, len: usize) -> Arc<Pow2Plan> {
        let tick = self.stamp();
        if let Some(e) = self.pow2.get_mut(&len) {
            e.last_used = tick;
            return e.plan.clone();
        }
        let plan = Arc::new(Pow2Plan::new(len));
        let bytes = plan.table_bytes();
        self.resident += bytes;
        self.note_build(TableKey::Pow2(len), bytes);
        self.pow2.insert(len, Cached { plan: plan.clone(), bytes, last_used: tick });
        self.enforce_budget();
        plan
    }

    fn plan(&mut self, len: usize) -> Plan {
        if is_pow2(len) {
            Plan::Pow2(self.pow2_plan(len))
        } else {
            let tick = self.stamp();
            if let Some(e) = self.bluestein.get_mut(&len) {
                e.last_used = tick;
                return Plan::Bluestein(e.plan.clone());
            }
            let m = next_pow2(2 * len - 1);
            let inner = self.pow2_plan(m);
            let plan = Arc::new(BluesteinPlan::new(len, inner));
            let bytes = plan.table_bytes();
            self.resident += bytes;
            self.note_build(TableKey::Bluestein(len), bytes);
            let tick = self.stamp();
            self.bluestein.insert(len, Cached { plan: plan.clone(), bytes, last_used: tick });
            self.enforce_budget();
            Plan::Bluestein(plan)
        }
    }

    fn real_plan(&mut self, n: usize) -> Arc<RealPlan> {
        debug_assert!(n >= 2 && n.is_multiple_of(2));
        let tick = self.stamp();
        if let Some(e) = self.real.get_mut(&n) {
            e.last_used = tick;
            return e.plan.clone();
        }
        let inner = self.plan(n / 2);
        let plan = Arc::new(RealPlan::new(n, inner));
        let bytes = plan.table_bytes();
        self.resident += bytes;
        self.note_build(TableKey::Real(n), bytes);
        let tick = self.stamp();
        self.real.insert(n, Cached { plan: plan.clone(), bytes, last_used: tick });
        self.enforce_budget();
        plan
    }

    fn window_table(&mut self, window: Window, n: usize) -> Arc<WindowTable> {
        let tick = self.stamp();
        if let Some(e) = self.windows.get_mut(&(window, n)) {
            e.last_used = tick;
            return e.plan.clone();
        }
        let plan = Arc::new(WindowTable::new(window, n));
        let bytes = plan.resident_bytes();
        self.resident += bytes;
        self.note_build(TableKey::Window(window, n), bytes);
        self.windows.insert((window, n), Cached { plan: plan.clone(), bytes, last_used: tick });
        self.enforce_budget();
        plan
    }

    /// Evicts least-recently-used entries until `resident` fits the budget.
    ///
    /// The entry stamped at the current `tick` — the one the caller is about
    /// to hand out — is never the victim, so a single table larger than the
    /// whole budget still gets built and returned (the cache just holds
    /// nothing else alongside it).
    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.resident > budget {
            let newest = self.tick;
            let mut victim: Option<(Victim, u64)> = None;
            let mut consider = |cand: Victim, last_used: u64| {
                if last_used != newest
                    && victim.as_ref().is_none_or(|(_, lu)| last_used < *lu)
                {
                    victim = Some((cand, last_used));
                }
            };
            for (&k, e) in &self.pow2 {
                consider(Victim::Pow2(k), e.last_used);
            }
            for (&k, e) in &self.bluestein {
                consider(Victim::Bluestein(k), e.last_used);
            }
            for (&k, e) in &self.real {
                consider(Victim::Real(k), e.last_used);
            }
            for (&(w, n), e) in &self.windows {
                consider(Victim::Window(w, n), e.last_used);
            }
            let Some((key, _)) = victim else { return };
            let (table_key, bytes) = match key {
                Victim::Pow2(k) => (TableKey::Pow2(k), self.pow2.remove(&k).map(|e| e.bytes)),
                Victim::Bluestein(k) => (
                    TableKey::Bluestein(k),
                    self.bluestein.remove(&k).map(|e| e.bytes),
                ),
                Victim::Real(k) => (TableKey::Real(k), self.real.remove(&k).map(|e| e.bytes)),
                Victim::Window(w, n) => (
                    TableKey::Window(w, n),
                    self.windows.remove(&(w, n)).map(|e| e.bytes),
                ),
            };
            let bytes = bytes.unwrap_or(0);
            self.note_evict(table_key, bytes);
            self.resident -= bytes;
        }
    }
}

impl Default for FftPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for FftPlanner {
    /// Shares the table cache — past *and future* plans — with the clone;
    /// the clone gets fresh scratch buffers (scratch is working state, not a
    /// table) and fresh handle statistics (a clone's request history is its
    /// own). A fleet of per-device analyzers built from clones of one
    /// planner therefore holds every distinct plan exactly once.
    fn clone(&self) -> Self {
        FftPlanner {
            tables: Arc::clone(&self.tables),
            scratch: FftScratch::default(),
            handle_stats: FftHandleStats::default(),
            seen_complex: Vec::new(),
            seen_real: Vec::new(),
        }
    }
}

impl FftPlanner {
    /// Creates an empty planner (with its own fresh table cache — use
    /// [`Clone`] to share a cache).
    pub fn new() -> Self {
        FftPlanner {
            tables: Arc::new(Mutex::new(PlanTables::default())),
            scratch: FftScratch::default(),
            handle_stats: FftHandleStats::default(),
            seen_complex: Vec::new(),
            seen_real: Vec::new(),
        }
    }

    /// Counts one plan request against this handle: a hit when `len` was
    /// requested before (by this handle), a first-sight miss otherwise.
    fn note_lookup(stats: &mut FftHandleStats, seen: &mut Vec<usize>, len: usize) {
        stats.lookups.inc();
        match seen.binary_search(&len) {
            Ok(_) => stats.hits.inc(),
            Err(i) => {
                stats.misses.inc();
                seen.insert(i, len);
            }
        }
    }

    fn plan(&mut self, len: usize) -> Plan {
        Self::note_lookup(&mut self.handle_stats, &mut self.seen_complex, len);
        self.tables.lock().expect("fft plan cache poisoned").plan(len)
    }

    fn real_plan(&mut self, n: usize) -> Arc<RealPlan> {
        Self::note_lookup(&mut self.handle_stats, &mut self.seen_real, n);
        self.tables
            .lock()
            .expect("fft plan cache poisoned")
            .real_plan(n)
    }

    /// This handle's own plan-request counts (lookups/hits/misses). See
    /// [`FftHandleStats`] for why these are per-clone, not per-cache.
    pub fn handle_stats(&self) -> FftHandleStats {
        self.handle_stats
    }

    /// Lifetime build/eviction statistics of the *shared* table cache
    /// (topology-scoped: depends on which clones share it and the byte
    /// budget — keep it out of thread-count-invariant reports).
    pub fn cache_stats(&self) -> FftCacheStats {
        let tables = self.tables.lock().expect("fft plan cache poisoned");
        FftCacheStats {
            resident_bytes: tables.resident as u64,
            ..tables.stats
        }
    }

    /// The cached coefficient table for `window` at length `n`.
    ///
    /// Built once per `(window, n)`; spectral estimators multiply by the
    /// table instead of re-evaluating trig per sample per segment.
    pub fn window_table(&mut self, window: Window, n: usize) -> Arc<WindowTable> {
        self.tables
            .lock()
            .expect("fft plan cache poisoned")
            .window_table(window, n)
    }

    /// Caps the shared table cache at `budget` bytes (`None` removes the
    /// cap, the default). Once over budget the cache evicts
    /// least-recently-used tables; tables are pure functions of their
    /// length, so eviction never changes any result — a re-requested length
    /// rebuilds the identical table and pays only setup time. The cap
    /// applies to every clone sharing this cache.
    pub fn set_table_budget(&self, budget: Option<usize>) {
        let mut tables = self.tables.lock().expect("fft plan cache poisoned");
        tables.budget = budget;
        tables.enforce_budget();
    }

    /// Heap bytes the shared table cache currently holds.
    pub fn table_bytes(&self) -> usize {
        self.tables.lock().expect("fft plan cache poisoned").resident
    }

    /// Forward DFT, in place, unnormalized. Any length (including 0 and 1,
    /// which are no-ops).
    pub fn fft_in_place(&mut self, buf: &mut [Complex64]) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        let plan = self.plan(n);
        plan.fft(buf, &mut self.scratch.conv);
    }

    /// Inverse DFT, in place, scaled by `1/N` so it exactly undoes
    /// [`fft_in_place`](FftPlanner::fft_in_place).
    pub fn ifft_in_place(&mut self, buf: &mut [Complex64]) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        for x in buf.iter_mut() {
            *x = x.conj();
        }
        self.fft_in_place(buf);
        let scale = 1.0 / n as f64;
        for x in buf.iter_mut() {
            *x = x.conj().scale(scale);
        }
    }

    /// Heap bytes of the planner's *own* [`FftScratch`] (capacities, not
    /// lengths). Zero for planner clones whose transforms all run through
    /// the `*_into_with` variants — the fleet engine's per-member accounting
    /// pins exactly that, so a stream-sized buffer sneaking into 10⁵ member
    /// planners shows up as a test failure instead of a memory wall.
    pub fn scratch_resident_bytes(&self) -> usize {
        self.scratch.resident_bytes()
    }

    /// Forward DFT of a real signal into `out` as a **one-sided** spectrum:
    /// bins `0..=n/2` ([`one_sided_len`] entries; the mirror half is implied
    /// by conjugate symmetry). Uses the planner's own scratch — steady state
    /// allocates nothing once `out` has capacity.
    ///
    /// Even lengths take the packed fast path (one `n/2` complex FFT); odd
    /// lengths fall back to a full complex transform internally.
    pub fn fft_real_into(&mut self, input: &[f64], out: &mut Vec<Complex64>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.fft_real_into_with(input, out, &mut scratch);
        self.scratch = scratch;
    }

    /// [`fft_real_into`](FftPlanner::fft_real_into) with an explicit
    /// [`FftScratch`], for callers keeping their own warmed buffers.
    pub fn fft_real_into_with(
        &mut self,
        input: &[f64],
        out: &mut Vec<Complex64>,
        scratch: &mut FftScratch,
    ) {
        let n = input.len();
        out.clear();
        match n {
            0 => {}
            1 => out.push(Complex64::from_real(input[0])),
            _ if n.is_multiple_of(2) => {
                let plan = self.real_plan(n);
                plan.fft(input, out, scratch);
            }
            _ => {
                // Odd length: full complex transform, keep the first half.
                let plan = self.plan(n);
                scratch.full.clear();
                scratch
                    .full
                    .extend(input.iter().map(|&x| Complex64::from_real(x)));
                plan.fft(&mut scratch.full, &mut scratch.conv);
                out.extend_from_slice(&scratch.full[..one_sided_len(n)]);
            }
        }
    }

    /// Inverse of [`fft_real_into`](FftPlanner::fft_real_into): reconstructs
    /// the length-`n` real signal from its one-sided `spectrum`
    /// ([`one_sided_len`]`(n)` bins), scaled by `1/n`.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != one_sided_len(n)`.
    pub fn ifft_real_into(&mut self, spectrum: &[Complex64], n: usize, out: &mut Vec<f64>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.ifft_real_into_with(spectrum, n, out, &mut scratch);
        self.scratch = scratch;
    }

    /// [`ifft_real_into`](FftPlanner::ifft_real_into) with an explicit
    /// [`FftScratch`].
    pub fn ifft_real_into_with(
        &mut self,
        spectrum: &[Complex64],
        n: usize,
        out: &mut Vec<f64>,
        scratch: &mut FftScratch,
    ) {
        assert_eq!(
            spectrum.len(),
            one_sided_len(n),
            "one-sided spectrum of an n={n} signal must have {} bins",
            one_sided_len(n)
        );
        out.clear();
        match n {
            0 => {}
            1 => out.push(spectrum[0].re),
            _ if n.is_multiple_of(2) => {
                let plan = self.real_plan(n);
                plan.ifft(spectrum, out, scratch);
            }
            _ => {
                // Odd length: expand to the full spectrum by conjugate
                // symmetry, then a complex inverse transform.
                let plan = self.plan(n);
                scratch.full.clear();
                scratch.full.reserve(n);
                scratch.full.extend_from_slice(spectrum);
                for k in (1..=(n - 1) / 2).rev() {
                    let c = spectrum[k].conj();
                    scratch.full.push(c);
                }
                for z in scratch.full.iter_mut() {
                    *z = z.conj();
                }
                plan.fft(&mut scratch.full, &mut scratch.conv);
                let scale = 1.0 / n as f64;
                out.extend(scratch.full.iter().map(|z| z.re * scale));
            }
        }
    }

    /// Forward DFT of a real signal; returns all `N` complex bins.
    ///
    /// Allocating convenience wrapper: even lengths run the packed fast path
    /// and mirror the one-sided half; prefer
    /// [`fft_real_into`](FftPlanner::fft_real_into) in steady-state loops.
    pub fn fft_real(&mut self, input: &[f64]) -> Vec<Complex64> {
        let n = input.len();
        if n >= 2 && n.is_multiple_of(2) {
            let mut out = Vec::with_capacity(n);
            self.fft_real_into(input, &mut out);
            for j in n / 2 + 1..n {
                let c = out[n - j].conj();
                out.push(c);
            }
            out
        } else {
            let mut buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
            self.fft_in_place(&mut buf);
            buf
        }
    }

    /// Inverse DFT returning only real parts — the counterpart of
    /// [`fft_real`](FftPlanner::fft_real) for **full** spectra with
    /// (approximate) conjugate symmetry.
    pub fn ifft_real(&mut self, spectrum: &[Complex64]) -> Vec<f64> {
        let mut buf = spectrum.to_vec();
        self.ifft_in_place(&mut buf);
        buf.into_iter().map(|c| c.re).collect()
    }
}

/// Reference `O(N²)` DFT used to validate the fast paths in tests and to
/// cross-check odd lengths in benches. Forward, unnormalized.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| input[t] * Complex64::cis(-2.0 * PI * (t * k % n.max(1)) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; n];
        v[0] = Complex64::ONE;
        v
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut p = FftPlanner::new();
        for n in [2usize, 4, 8, 64, 3, 5, 12, 100] {
            let mut buf = impulse(n);
            p.fft_in_place(&mut buf);
            for b in &buf {
                assert!((b.re - 1.0).abs() < 1e-9 && b.im.abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let mut p = FftPlanner::new();
        let input: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let expected = dft_naive(&input);
        let mut buf = input;
        p.fft_in_place(&mut buf);
        assert_close(&buf, &expected, 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        let mut p = FftPlanner::new();
        for n in [3usize, 5, 6, 7, 9, 11, 15, 17, 31, 50, 101] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let expected = dft_naive(&input);
            let mut buf = input;
            p.fft_in_place(&mut buf);
            assert_close(&buf, &expected, 1e-8);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let mut p = FftPlanner::new();
        for n in [1usize, 2, 8, 13, 64, 100, 257] {
            let orig: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let mut buf = orig.clone();
            p.fft_in_place(&mut buf);
            p.ifft_in_place(&mut buf);
            assert_close(&buf, &orig, 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let mut p = FftPlanner::new();
        let n = 128;
        let k0 = 5;
        let input: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = p.fft_real(&input);
        // cos splits into bins k0 and n−k0, each with magnitude n/2.
        assert!((spec[k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        for (k, b) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(b.norm() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let mut p = FftPlanner::new();
        let n = 90; // even but non-pow2: packed rfft over a Bluestein half
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 0.3).collect();
        let spec = p.fft_real(&input);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn rfft_one_sided_matches_full_complex_fft() {
        let mut p = FftPlanner::new();
        // Even pow2, even Bluestein-half, odd, and tiny lengths.
        for n in [2usize, 4, 8, 64, 256, 6, 10, 12, 90, 100, 1000, 3, 7, 101] {
            let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() + 0.2).collect();
            let mut one_sided = Vec::new();
            p.fft_real_into(&input, &mut one_sided);
            assert_eq!(one_sided.len(), one_sided_len(n));
            let mut full: Vec<Complex64> =
                input.iter().map(|&x| Complex64::from_real(x)).collect();
            p.fft_in_place(&mut full);
            let tol = 1e-9 * n as f64;
            for (k, c) in one_sided.iter().enumerate() {
                assert!(
                    (c.re - full[k].re).abs() < tol && (c.im - full[k].im).abs() < tol,
                    "n={n} bin {k}: {c:?} vs {:?}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn rfft_roundtrip_recovers_signal() {
        let mut p = FftPlanner::new();
        for n in [1usize, 2, 4, 12, 64, 90, 100, 3, 7, 101, 255] {
            let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.413).cos() - 0.7).collect();
            let mut spec = Vec::new();
            p.fft_real_into(&input, &mut spec);
            let mut back = Vec::new();
            p.ifft_real_into(&spec, n, &mut back);
            assert_eq!(back.len(), n);
            for (a, b) in input.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fft_real_full_matches_one_sided_mirror() {
        let mut p = FftPlanner::new();
        for n in [8usize, 90, 101] {
            let input: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).sin()).collect();
            let full = p.fft_real(&input);
            let mut one_sided = Vec::new();
            p.fft_real_into(&input, &mut one_sided);
            for (k, c) in one_sided.iter().enumerate() {
                assert!((full[k] - *c).norm() < 1e-9 * n as f64, "n={n} bin {k}");
            }
        }
    }

    #[test]
    fn planner_is_send_and_clone_shares_tables() {
        fn assert_send<T: Send>() {}
        assert_send::<FftPlanner>();

        let mut warm = FftPlanner::new();
        let sig: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut expected = Vec::new();
        warm.fft_real_into(&sig, &mut expected);

        let mut moved = warm.clone();
        let from_thread = std::thread::spawn(move || {
            let mut out = Vec::new();
            moved.fft_real_into(&sig, &mut out);
            out
        })
        .join()
        .unwrap();
        assert_close(&from_thread, &expected, 0.0);
    }

    #[test]
    fn window_table_is_cached() {
        let mut p = FftPlanner::new();
        let a = p.window_table(Window::Hann, 64);
        let b = p.window_table(Window::Hann, 64);
        assert!(Arc::ptr_eq(&a, &b));
        let c = p.window_table(Window::Hann, 65);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut p = FftPlanner::new();
        for n in [32usize, 77] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).sin(), 0.1 * i as f64))
                .collect();
            let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
            let mut buf = input;
            p.fft_in_place(&mut buf);
            let freq_energy: f64 = buf.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn linearity() {
        let mut p = FftPlanner::new();
        let n = 24;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i as f64).cos()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.0)).collect();

        let mut fa = a.clone();
        p.fft_in_place(&mut fa);
        let mut fb = b.clone();
        p.fft_in_place(&mut fb);
        let mut fsum = sum;
        p.fft_in_place(&mut fsum);
        let expected: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y.scale(2.0)).collect();
        assert_close(&fsum, &expected, 1e-8);
    }

    #[test]
    fn zero_and_one_point_are_noops() {
        let mut p = FftPlanner::new();
        let mut empty: Vec<Complex64> = vec![];
        p.fft_in_place(&mut empty);
        let mut one = vec![Complex64::new(3.0, -1.0)];
        p.fft_in_place(&mut one);
        assert_eq!(one[0], Complex64::new(3.0, -1.0));
        p.ifft_in_place(&mut one);
        assert_eq!(one[0], Complex64::new(3.0, -1.0));

        let mut out = Vec::new();
        p.fft_real_into(&[], &mut out);
        assert!(out.is_empty());
        p.fft_real_into(&[2.5], &mut out);
        assert_eq!(out, vec![Complex64::from_real(2.5)]);
        let mut back = Vec::new();
        p.ifft_real_into(&out, 1, &mut back);
        assert_eq!(back, vec![2.5]);
    }

    #[test]
    fn planner_reuse_is_consistent() {
        let mut p = FftPlanner::new();
        let input: Vec<Complex64> = (0..48).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut first = input.clone();
        p.fft_in_place(&mut first);
        let mut second = input;
        p.fft_in_place(&mut second);
        assert_close(&first, &second, 0.0);
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1) && is_pow2(2) && is_pow2(1024));
        assert!(!is_pow2(0) && !is_pow2(3) && !is_pow2(12));
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(16), 16);
        assert_eq!(one_sided_len(0), 0);
        assert_eq!(one_sided_len(1), 1);
        assert_eq!(one_sided_len(8), 5);
        assert_eq!(one_sided_len(9), 5);
    }

    #[test]
    #[should_panic(expected = "one-sided spectrum")]
    fn ifft_real_into_rejects_wrong_bin_count() {
        let mut p = FftPlanner::new();
        let mut out = Vec::new();
        p.ifft_real_into(&[Complex64::ONE; 4], 8, &mut out);
    }

    #[test]
    fn table_budget_bounds_the_cache() {
        let mut p = FftPlanner::new();
        // Sweep many distinct non-power-of-two lengths: unbounded, the
        // cache grows with every one.
        let mut buf = Vec::new();
        for n in (101..151).step_by(2) {
            buf.clear();
            buf.resize(n, Complex64::ONE);
            p.fft_in_place(&mut buf);
        }
        let unbounded = p.table_bytes();
        assert!(unbounded > 100_000, "expected a grown cache, got {unbounded} B");

        // Capping evicts down to the budget immediately...
        let budget = unbounded / 8;
        p.set_table_budget(Some(budget));
        assert!(p.table_bytes() <= budget, "{} > {budget}", p.table_bytes());
        // ...and the cap holds across further sweeps of fresh lengths.
        for n in (201..251).step_by(2) {
            buf.clear();
            buf.resize(n, Complex64::ONE);
            p.fft_in_place(&mut buf);
        }
        assert!(p.table_bytes() <= budget, "{} > {budget}", p.table_bytes());
    }

    #[test]
    fn eviction_and_rebuild_is_bit_identical() {
        // Same input, three regimes: unbounded cache, a cache so small every
        // plan is rebuilt from scratch, and a rebuilt-after-eviction plan.
        // Tables are pure functions of length, so all spectra must match
        // bit for bit.
        let input: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut unbounded = FftPlanner::new();
        let mut reference = Vec::new();
        unbounded.fft_real_into(&input, &mut reference);

        let mut tiny = FftPlanner::new();
        tiny.set_table_budget(Some(1));
        let mut out = Vec::new();
        for _ in 0..3 {
            // Alternate lengths so each request misses and rebuilds.
            let mut churn = vec![Complex64::ONE; 77];
            tiny.fft_in_place(&mut churn);
            tiny.fft_real_into(&input, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert!(a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            }
        }
        // A one-byte budget keeps at most the in-flight plan chain: the
        // length-300 real plan pins its quantized twiddles plus the inner
        // Bluestein(150) chirp/kernel and pow2(512) tables — ~22 kB deep.
        assert!(tiny.table_bytes() <= 32 * 1024, "{}", tiny.table_bytes());
    }

    #[test]
    fn oversized_single_table_is_still_served() {
        let mut p = FftPlanner::new();
        p.set_table_budget(Some(1));
        let mut buf = vec![Complex64::ONE; 4096];
        p.fft_in_place(&mut buf); // must not loop forever or panic
        assert!((buf[0].re - 4096.0).abs() < 1e-6);
    }

    #[test]
    fn handle_stats_count_lookups_hits_and_misses() {
        let mut p = FftPlanner::new();
        let mut buf = vec![Complex64::ONE; 64];
        p.fft_in_place(&mut buf); // miss (complex 64)
        p.fft_in_place(&mut buf); // hit
        let input = vec![1.0f64; 64];
        let mut out = Vec::new();
        p.fft_real_into(&input, &mut out); // miss (real 64 ≠ complex 64)
        p.fft_real_into(&input, &mut out); // hit

        let s = p.handle_stats();
        assert_eq!(s.lookups.get(), 4);
        assert_eq!(s.hits.get(), 2);
        assert_eq!(s.misses.get(), 2);
        assert_eq!(s.lookups.get(), s.hits.get() + s.misses.get());

        // A clone shares tables but starts its own request history: its
        // first length-64 transform is a handle-level miss even though the
        // shared cache is warm.
        let mut clone = p.clone();
        let mut buf2 = vec![Complex64::ONE; 64];
        clone.fft_in_place(&mut buf2);
        assert_eq!(clone.handle_stats().lookups.get(), 1);
        assert_eq!(clone.handle_stats().misses.get(), 1);
        assert_eq!(p.handle_stats().lookups.get(), 4, "parent unchanged");

        let mut merged = p.handle_stats();
        merged.merge(&clone.handle_stats());
        assert_eq!(merged.lookups.get(), 5);
        assert_eq!(merged.hits.get() + merged.misses.get(), 5);
    }

    #[test]
    fn cache_stats_bill_evictions_and_rebuilds() {
        let mut p = FftPlanner::new();
        let mut buf = vec![Complex64::ONE; 128];
        p.fft_in_place(&mut buf);
        let warm = p.cache_stats();
        assert!(warm.builds >= 1);
        assert!(warm.built_bytes > 0);
        assert_eq!(warm.evictions, 0);
        assert_eq!(warm.rebuilt_bytes, 0);
        assert_eq!(warm.resident_bytes as usize, p.table_bytes());

        // Starve the cache so alternating lengths evict each other, then
        // re-request an evicted one: its bytes must be billed as rebuilt.
        p.set_table_budget(Some(1));
        let mut other = vec![Complex64::ONE; 77];
        p.fft_in_place(&mut other);
        p.fft_in_place(&mut buf); // rebuilds the evicted length-128 plan
        let churned = p.cache_stats();
        assert!(churned.evictions > 0);
        assert!(churned.evicted_bytes > 0);
        assert!(churned.rebuilt_bytes > 0);
        assert!(churned.built_bytes >= warm.built_bytes + churned.rebuilt_bytes);
    }
}

