//! Window (tapering) functions for spectral estimation.
//!
//! Windowing reduces spectral leakage when a trace is not periodic in its
//! observation interval — which production telemetry never is. The Nyquist
//! estimator uses [`Window::Hann`] by default; the plain rectangular window
//! reproduces the paper's raw-FFT methodology exactly.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// No tapering (all ones). Matches a raw FFT.
    Rectangular,
    /// Hann (raised cosine): good general-purpose leakage suppression.
    Hann,
    /// Hamming: slightly narrower main lobe than Hann, higher side lobes.
    Hamming,
    /// Blackman: strong side-lobe suppression (−58 dB), wider main lobe.
    Blackman,
    /// 4-term Blackman–Harris: very strong suppression (−92 dB).
    BlackmanHarris,
}

impl Window {
    /// Evaluates the window at sample `i` of `n` (symmetric convention).
    ///
    /// Returns 1.0 for every `i` when `n < 2` — a single sample cannot be
    /// tapered meaningfully.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n < 2 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
            }
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * (2.0 * PI * x).cos() + 0.14128 * (4.0 * PI * x).cos()
                    - 0.01168 * (6.0 * PI * x).cos()
            }
        }
    }

    /// Materializes the window as a coefficient vector of length `n`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Applies the window to `samples` in place.
    pub fn apply(self, samples: &mut [f64]) {
        let n = samples.len();
        if matches!(self, Window::Rectangular) {
            return;
        }
        for (i, s) in samples.iter_mut().enumerate() {
            *s *= self.coefficient(i, n);
        }
    }

    /// Coherent gain: mean of the coefficients. Divides amplitude estimates.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Energy (incoherent) gain: mean of squared coefficients. Divides power
    /// estimates so windowed PSDs remain comparable across window choices.
    pub fn energy_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.coefficients(n).iter().map(|c| c * c).sum::<f64>() / n as f64
    }

    /// All window variants, for sweeps and tests.
    pub const ALL: [Window; 5] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
        Window::BlackmanHarris,
    ];
}

/// A materialized window: coefficients plus their normalization gains.
///
/// Evaluating a window coefficient costs up to four trig calls per sample;
/// the spectral pipeline instead builds one table per `(window, n)` (cached
/// by `FftPlanner::window_table`) and multiplies segments by it.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTable {
    window: Window,
    coeffs: Vec<f64>,
    coherent_gain: f64,
    energy_gain: f64,
}

impl WindowTable {
    /// Materializes `window` at length `n` and precomputes its gains.
    ///
    /// Coefficients are stored with power-of-two capacity (see
    /// `fft::quantized_table`) so evicted tables recycle exactly in the
    /// planner's byte-budgeted cache.
    pub fn new(window: Window, n: usize) -> Self {
        let mut coeffs = crate::fft::quantized_table::<f64>(n);
        coeffs.extend((0..n).map(|i| window.coefficient(i, n)));
        let (coherent_gain, energy_gain) = if n == 0 {
            (1.0, 1.0)
        } else {
            (
                coeffs.iter().sum::<f64>() / n as f64,
                coeffs.iter().map(|c| c * c).sum::<f64>() / n as f64,
            )
        };
        WindowTable {
            window,
            coeffs,
            coherent_gain,
            energy_gain,
        }
    }

    /// The window shape this table was built from.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Number of samples the table covers.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` when the table covers zero samples.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The precomputed coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Heap bytes the table holds (capacity, not length) — feeds the FFT
    /// planner's byte-budgeted cache accounting.
    pub fn resident_bytes(&self) -> usize {
        self.coeffs.capacity() * std::mem::size_of::<f64>()
    }

    /// Coherent gain (mean coefficient); equals [`Window::coherent_gain`].
    pub fn coherent_gain(&self) -> f64 {
        self.coherent_gain
    }

    /// Energy gain (mean squared coefficient); equals
    /// [`Window::energy_gain`].
    pub fn energy_gain(&self) -> f64 {
        self.energy_gain
    }

    /// Multiplies the table into `samples` (no-op for the rectangular
    /// window).
    ///
    /// # Panics
    /// Panics if `samples.len()` differs from the table length.
    pub fn apply(&self, samples: &mut [f64]) {
        assert_eq!(
            samples.len(),
            self.coeffs.len(),
            "window table length mismatch"
        );
        if matches!(self.window, Window::Rectangular) {
            return;
        }
        for (s, &c) in samples.iter_mut().zip(&self.coeffs) {
            *s *= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(16);
        assert!(w.iter().all(|&c| c == 1.0));
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
        assert_eq!(Window::Rectangular.energy_gain(16), 1.0);
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let n = 65;
        let w = Window::Hann.coefficients(n);
        assert!(w[0].abs() < 1e-12);
        assert!(w[n - 1].abs() < 1e-12);
        assert!((w[n / 2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_windows_are_symmetric() {
        let n = 33;
        for win in Window::ALL {
            let w = win.coefficients(n);
            for i in 0..n {
                assert!(
                    (w[i] - w[n - 1 - i]).abs() < 1e-12,
                    "{win:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn all_windows_bounded_by_unity() {
        for win in Window::ALL {
            for &c in &win.coefficients(64) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&c), "{win:?}: {c}");
            }
        }
    }

    #[test]
    fn gains_ordering_matches_taper_aggressiveness() {
        let n = 256;
        // More aggressive tapers throw away more energy.
        let cg: Vec<f64> = Window::ALL.iter().map(|w| w.coherent_gain(n)).collect();
        assert!(cg[0] > cg[1] && cg[1] > cg[3] && cg[3] > cg[4]);
        for win in Window::ALL {
            let eg = win.energy_gain(n);
            let cg = win.coherent_gain(n);
            // Cauchy–Schwarz: mean(w²) ≥ mean(w)².
            assert!(eg + 1e-12 >= cg * cg, "{win:?}");
        }
    }

    #[test]
    fn apply_matches_coefficients() {
        let mut v = vec![2.0; 10];
        Window::Hamming.apply(&mut v);
        let w = Window::Hamming.coefficients(10);
        for (a, b) in v.iter().zip(&w) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_lengths_are_untapered() {
        for win in Window::ALL {
            assert_eq!(win.coefficient(0, 0), 1.0);
            assert_eq!(win.coefficient(0, 1), 1.0);
        }
    }

    #[test]
    fn window_table_matches_direct_evaluation() {
        for win in Window::ALL {
            let n = 97;
            let table = WindowTable::new(win, n);
            assert_eq!(table.window(), win);
            assert_eq!(table.len(), n);
            assert_eq!(table.coeffs(), win.coefficients(n).as_slice());
            assert_eq!(table.coherent_gain(), win.coherent_gain(n));
            assert_eq!(table.energy_gain(), win.energy_gain(n));

            let mut via_table = vec![1.5; n];
            table.apply(&mut via_table);
            let mut direct = vec![1.5; n];
            win.apply(&mut direct);
            assert_eq!(via_table, direct);
        }
    }

    #[test]
    fn empty_window_table_has_unit_gains() {
        let t = WindowTable::new(Window::Hann, 0);
        assert!(t.is_empty());
        assert_eq!(t.coherent_gain(), 1.0);
        assert_eq!(t.energy_gain(), 1.0);
    }
}
