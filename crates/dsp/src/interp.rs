//! Interpolation of regularly sampled signals at arbitrary time points.
//!
//! Used when reconstructing a signal from its (possibly downsampled) samples:
//! nearest-neighbour and zero-order hold model what a dashboard does today,
//! linear is the common pragmatic choice, and Whittaker–Shannon [`sinc`]
//! interpolation is the theoretically exact reconstruction of a band-limited
//! signal sampled above its Nyquist rate.

use std::f64::consts::PI;

/// Normalized sinc: `sin(πx)/(πx)`, with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Interpolation method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interp {
    /// Value of the closest sample in time.
    Nearest,
    /// Value of the most recent sample at or before `t` (zero-order hold).
    PreviousHold,
    /// Linear interpolation between bracketing samples.
    Linear,
    /// Whittaker–Shannon reconstruction. `half_width` truncates the kernel to
    /// that many samples on each side (`None` = full sum, exact but `O(N)`
    /// per point).
    Sinc {
        /// Kernel half-width in samples; `None` means the full-length sum.
        half_width: Option<usize>,
    },
}

impl Interp {
    /// Evaluates the reconstruction of `samples` (first sample at `t = 0`,
    /// spaced `1/sample_rate` apart) at time `t` seconds.
    ///
    /// Times outside the sampled span clamp to the edge values for the
    /// sample-holding methods, and use the (decaying) kernel tails for sinc.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `sample_rate` is not positive.
    pub fn at(&self, samples: &[f64], sample_rate: f64, t: f64) -> f64 {
        assert!(!samples.is_empty(), "cannot interpolate an empty signal");
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        let n = samples.len();
        // Fractional sample index, snapped to the grid when `t·fs` lands
        // within float round-off of an integer — otherwise `floor()`-based
        // methods would return the *previous* sample at exact grid points.
        let pos = {
            let raw = t * sample_rate;
            let snapped = raw.round();
            if (raw - snapped).abs() < 1e-9 * snapped.abs().max(1.0) {
                snapped
            } else {
                raw
            }
        };
        match *self {
            Interp::Nearest => {
                let idx = pos.round().clamp(0.0, (n - 1) as f64) as usize;
                samples[idx]
            }
            Interp::PreviousHold => {
                let idx = pos.floor().clamp(0.0, (n - 1) as f64) as usize;
                samples[idx]
            }
            Interp::Linear => {
                if pos <= 0.0 {
                    return samples[0];
                }
                if pos >= (n - 1) as f64 {
                    return samples[n - 1];
                }
                let lo = pos.floor() as usize;
                let frac = pos - lo as f64;
                samples[lo] * (1.0 - frac) + samples[lo + 1] * frac
            }
            Interp::Sinc { half_width } => {
                let (lo, hi) = match half_width {
                    Some(h) => {
                        let center = pos.round() as isize;
                        let lo = ((center - h as isize).max(0) as usize).min(n);
                        let hi = ((center + h as isize + 1).max(0) as usize).clamp(lo, n);
                        (lo, hi)
                    }
                    None => (0, n),
                };
                let window = &samples[lo..hi];
                if window.is_empty() {
                    // The truncated kernel does not reach the record at all
                    // (query far outside the sampled span): the full sum
                    // would be 0, so return that rather than dividing by a
                    // zero-length window below.
                    return 0.0;
                }
                let (weighted, weight, sum) = window.iter().enumerate().fold(
                    (0.0, 0.0, 0.0),
                    |(ws, w, s), (i, &x)| {
                        let k = sinc(pos - (lo + i) as f64);
                        (ws + x * k, w + k, s + x)
                    },
                );
                // Deficit compensation: over all integers the sinc weights
                // sum to exactly 1, but a finite (or truncated) record loses
                // the kernel tails, which shows up as a large DC error on
                // short records (the reconstruction of a constant droops).
                // Re-injecting the lost weight at the window's mean level
                // fixes that without disturbing long zero-mean records,
                // where the deficit correction vanishes.
                let mean = sum / window.len() as f64;
                weighted + mean * (1.0 - weight)
            }
        }
    }

    /// Evaluates the reconstruction at each time in `times` (seconds).
    pub fn resample(&self, samples: &[f64], sample_rate: f64, times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.at(samples, sample_rate, t)).collect()
    }

    /// Resamples onto a regular grid at `dst_rate` spanning the same duration
    /// (`samples.len() / sample_rate` seconds, half-open).
    pub fn resample_to_rate(&self, samples: &[f64], sample_rate: f64, dst_rate: f64) -> Vec<f64> {
        assert!(dst_rate > 0.0, "dst_rate must be positive");
        let duration = samples.len() as f64 / sample_rate;
        let m = (duration * dst_rate).round().max(1.0) as usize;
        (0..m)
            .map(|i| self.at(samples, sample_rate, i as f64 / dst_rate))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_basics() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-12);
    }

    #[test]
    fn all_methods_are_exact_on_sample_points() {
        let samples = [1.0, -2.0, 3.0, 0.5];
        let fs = 2.0;
        for m in [
            Interp::Nearest,
            Interp::PreviousHold,
            Interp::Linear,
            Interp::Sinc { half_width: None },
        ] {
            for (i, &want) in samples.iter().enumerate() {
                let got = m.at(&samples, fs, i as f64 / fs);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{m:?} at sample {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn nearest_picks_closest() {
        let samples = [0.0, 10.0];
        assert_eq!(Interp::Nearest.at(&samples, 1.0, 0.4), 0.0);
        assert_eq!(Interp::Nearest.at(&samples, 1.0, 0.6), 10.0);
    }

    #[test]
    fn previous_hold_is_causal() {
        let samples = [0.0, 10.0];
        assert_eq!(Interp::PreviousHold.at(&samples, 1.0, 0.99), 0.0);
        assert_eq!(Interp::PreviousHold.at(&samples, 1.0, 1.0), 10.0);
    }

    #[test]
    fn linear_midpoint() {
        let samples = [0.0, 10.0];
        assert!((Interp::Linear.at(&samples, 1.0, 0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linear_clamps_out_of_range() {
        let samples = [2.0, 4.0, 8.0];
        assert_eq!(Interp::Linear.at(&samples, 1.0, -5.0), 2.0);
        assert_eq!(Interp::Linear.at(&samples, 1.0, 99.0), 8.0);
    }

    #[test]
    fn sinc_reconstructs_bandlimited_tone() {
        // 3 Hz tone sampled at 32 Hz — far above Nyquist. Sinc reconstruction
        // at off-grid points must match the analytic signal away from edges.
        let fs = 32.0;
        let n = 256;
        let f = 3.0;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect();
        let m = Interp::Sinc { half_width: None };
        for k in 0..40 {
            let t = 2.0 + k as f64 * 0.083; // interior region
            let got = m.at(&samples, fs, t);
            let want = (2.0 * PI * f * t).sin();
            assert!((got - want).abs() < 1e-3, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn truncated_sinc_approximates_full() {
        let fs = 16.0;
        let samples: Vec<f64> = (0..128)
            .map(|i| (2.0 * PI * 1.0 * i as f64 / fs).sin())
            .collect();
        let full = Interp::Sinc { half_width: None };
        let truncated = Interp::Sinc { half_width: Some(20) };
        let t = 4.03;
        // The sinc kernel decays like 1/x, so a 20-sample truncation leaves a
        // small but visible tail error.
        assert!((full.at(&samples, fs, t) - truncated.at(&samples, fs, t)).abs() < 0.1);
    }

    #[test]
    fn resample_to_rate_lengths() {
        let samples = vec![1.0; 100];
        let out = Interp::Linear.resample_to_rate(&samples, 10.0, 5.0);
        assert_eq!(out.len(), 50);
        let out = Interp::Linear.resample_to_rate(&samples, 10.0, 20.0);
        assert_eq!(out.len(), 200);
        assert!(out.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn resample_at_times() {
        let samples = [0.0, 1.0, 2.0, 3.0];
        let out = Interp::Linear.resample(&samples, 1.0, &[0.5, 1.5, 2.5]);
        assert_eq!(out, vec![0.5, 1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_signal_panics() {
        Interp::Linear.at(&[], 1.0, 0.0);
    }

    #[test]
    fn truncated_sinc_far_outside_span_is_zero_not_nan() {
        let samples = [5.0, 6.0, 7.0, 8.0];
        let m = Interp::Sinc { half_width: Some(2) };
        // Query far before and far after the record: the truncated kernel
        // window is empty on both sides.
        for t in [-100.0, 100.0] {
            let v = m.at(&samples, 1.0, t);
            assert_eq!(v, 0.0, "t={t}: {v}");
        }
    }

    #[test]
    fn sinc_deficit_compensation_holds_dc_on_short_records() {
        // A constant signal must reconstruct exactly even from a 6-sample
        // record — the finite-record kernel deficit is re-injected at the
        // window mean (the regression behind the posteriori quality bug).
        let samples = [42.0; 6];
        for m in [
            Interp::Sinc { half_width: None },
            Interp::Sinc { half_width: Some(64) },
        ] {
            for k in 0..50 {
                let t = k as f64 * 0.11;
                let v = m.at(&samples, 1.0, t);
                assert!((v - 42.0).abs() < 1e-9, "{m:?} t={t}: {v}");
            }
        }
    }
}
