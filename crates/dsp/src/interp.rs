//! Interpolation of regularly sampled signals at arbitrary time points.
//!
//! Used when reconstructing a signal from its (possibly downsampled) samples:
//! nearest-neighbour and zero-order hold model what a dashboard does today,
//! linear is the common pragmatic choice, and Whittaker–Shannon [`sinc`]
//! interpolation is the theoretically exact reconstruction of a band-limited
//! signal sampled above its Nyquist rate.

use std::f64::consts::PI;

/// Normalized sinc: `sin(πx)/(πx)`, with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Interpolation method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interp {
    /// Value of the closest sample in time.
    Nearest,
    /// Value of the most recent sample at or before `t` (zero-order hold).
    PreviousHold,
    /// Linear interpolation between bracketing samples.
    Linear,
    /// Whittaker–Shannon reconstruction. `half_width` truncates the kernel to
    /// that many samples on each side (`None` = full sum, exact but `O(N)`
    /// per point).
    Sinc {
        /// Kernel half-width in samples; `None` means the full-length sum.
        half_width: Option<usize>,
    },
}

impl Interp {
    /// Evaluates the reconstruction of `samples` (first sample at `t = 0`,
    /// spaced `1/sample_rate` apart) at time `t` seconds.
    ///
    /// Times outside the sampled span clamp to the edge values for the
    /// sample-holding methods, and use the (decaying) kernel tails for sinc.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `sample_rate` is not positive.
    pub fn at(&self, samples: &[f64], sample_rate: f64, t: f64) -> f64 {
        assert!(!samples.is_empty(), "cannot interpolate an empty signal");
        assert!(sample_rate > 0.0, "sample_rate must be positive");
        let n = samples.len();
        let pos = grid_position(t, sample_rate);
        match *self {
            Interp::Nearest => {
                let idx = pos.round().clamp(0.0, (n - 1) as f64) as usize;
                samples[idx]
            }
            Interp::PreviousHold => {
                let idx = pos.floor().clamp(0.0, (n - 1) as f64) as usize;
                samples[idx]
            }
            Interp::Linear => {
                if pos <= 0.0 {
                    return samples[0];
                }
                if pos >= (n - 1) as f64 {
                    return samples[n - 1];
                }
                let lo = pos.floor() as usize;
                let frac = pos - lo as f64;
                samples[lo] * (1.0 - frac) + samples[lo + 1] * frac
            }
            Interp::Sinc { half_width } => {
                let (lo, hi) = match half_width {
                    Some(h) => {
                        let center = pos.round() as isize;
                        let lo = ((center - h as isize).max(0) as usize).min(n);
                        let hi = ((center + h as isize + 1).max(0) as usize).clamp(lo, n);
                        (lo, hi)
                    }
                    None => (0, n),
                };
                sinc_window_eval(samples, lo, hi, pos)
            }
        }
    }

    /// Evaluates the reconstruction at each time in `times` (seconds).
    ///
    /// For the truncated-sinc kernel over monotone (non-decreasing) `times`
    /// — the common resampling-onto-a-grid case — the kernel window is
    /// advanced incrementally across the record instead of being recomputed
    /// from scratch at every sample; results are identical to calling
    /// [`Interp::at`] per point.
    pub fn resample(&self, samples: &[f64], sample_rate: f64, times: &[f64]) -> Vec<f64> {
        if let Interp::Sinc { half_width: Some(h) } = *self {
            if times.windows(2).all(|w| w[0] <= w[1]) {
                return sinc_resample_monotone(samples, sample_rate, h, times);
            }
        }
        times.iter().map(|&t| self.at(samples, sample_rate, t)).collect()
    }

    /// Resamples onto a regular grid at `dst_rate` spanning the same duration
    /// (`samples.len() / sample_rate` seconds, half-open).
    ///
    /// Grid times are monotone, so the truncated-sinc kernel takes the
    /// incremental-window path of [`Interp::resample`].
    pub fn resample_to_rate(&self, samples: &[f64], sample_rate: f64, dst_rate: f64) -> Vec<f64> {
        assert!(dst_rate > 0.0, "dst_rate must be positive");
        let duration = samples.len() as f64 / sample_rate;
        let m = (duration * dst_rate).round().max(1.0) as usize;
        let times: Vec<f64> = (0..m).map(|i| i as f64 / dst_rate).collect();
        self.resample(samples, sample_rate, &times)
    }
}

/// Fractional sample index of time `t`, snapped to the grid when `t·fs`
/// lands within float round-off of an integer — otherwise `floor()`-based
/// methods would return the *previous* sample at exact grid points.
fn grid_position(t: f64, sample_rate: f64) -> f64 {
    let raw = t * sample_rate;
    let snapped = raw.round();
    if (raw - snapped).abs() < 1e-9 * snapped.abs().max(1.0) {
        snapped
    } else {
        raw
    }
}

/// Truncated-sinc evaluation of `samples[lo..hi]` at fractional position
/// `pos` — the shared kernel of [`Interp::at`] and the monotone resampling
/// fast path.
///
/// Deficit compensation: over all integers the sinc weights sum to exactly
/// 1, but a finite (or truncated) record loses the kernel tails, which
/// shows up as a large DC error on short records (the reconstruction of a
/// constant droops). Re-injecting the lost weight at the window's mean
/// level fixes that without disturbing long zero-mean records, where the
/// deficit correction vanishes.
fn sinc_window_eval(samples: &[f64], lo: usize, hi: usize, pos: f64) -> f64 {
    let window = &samples[lo..hi];
    if window.is_empty() {
        // The truncated kernel does not reach the record at all (query far
        // outside the sampled span): the full sum would be 0, so return
        // that rather than dividing by a zero-length window below.
        return 0.0;
    }
    let (weighted, weight, sum) = window.iter().enumerate().fold(
        (0.0, 0.0, 0.0),
        |(ws, w, s), (i, &x)| {
            let k = sinc(pos - (lo + i) as f64);
            (ws + x * k, w + k, s + x)
        },
    );
    let mean = sum / window.len() as f64;
    weighted + mean * (1.0 - weight)
}

/// Truncated-sinc evaluation over monotone query times: the `[lo, hi)`
/// kernel-window cursors only ever move right, so the per-sample span
/// search of [`Interp::at`] is hoisted out of the inner loop. Results are
/// identical to the pointwise path — both call [`sinc_window_eval`].
fn sinc_resample_monotone(samples: &[f64], sample_rate: f64, h: usize, times: &[f64]) -> Vec<f64> {
    assert!(!samples.is_empty(), "cannot interpolate an empty signal");
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    let n = samples.len();
    let h = h as isize;
    let mut out = Vec::with_capacity(times.len());
    let mut lo = 0usize;
    let mut hi = 0usize;
    for &t in times {
        let pos = grid_position(t, sample_rate);
        let center = pos.round() as isize;
        while lo < n && (lo as isize) < center - h {
            lo += 1;
        }
        while hi < n && (hi as isize) < center + h + 1 {
            hi += 1;
        }
        out.push(sinc_window_eval(samples, lo, hi.max(lo), pos));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_basics() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-12);
    }

    #[test]
    fn all_methods_are_exact_on_sample_points() {
        let samples = [1.0, -2.0, 3.0, 0.5];
        let fs = 2.0;
        for m in [
            Interp::Nearest,
            Interp::PreviousHold,
            Interp::Linear,
            Interp::Sinc { half_width: None },
        ] {
            for (i, &want) in samples.iter().enumerate() {
                let got = m.at(&samples, fs, i as f64 / fs);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{m:?} at sample {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn nearest_picks_closest() {
        let samples = [0.0, 10.0];
        assert_eq!(Interp::Nearest.at(&samples, 1.0, 0.4), 0.0);
        assert_eq!(Interp::Nearest.at(&samples, 1.0, 0.6), 10.0);
    }

    #[test]
    fn previous_hold_is_causal() {
        let samples = [0.0, 10.0];
        assert_eq!(Interp::PreviousHold.at(&samples, 1.0, 0.99), 0.0);
        assert_eq!(Interp::PreviousHold.at(&samples, 1.0, 1.0), 10.0);
    }

    #[test]
    fn linear_midpoint() {
        let samples = [0.0, 10.0];
        assert!((Interp::Linear.at(&samples, 1.0, 0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linear_clamps_out_of_range() {
        let samples = [2.0, 4.0, 8.0];
        assert_eq!(Interp::Linear.at(&samples, 1.0, -5.0), 2.0);
        assert_eq!(Interp::Linear.at(&samples, 1.0, 99.0), 8.0);
    }

    #[test]
    fn sinc_reconstructs_bandlimited_tone() {
        // 3 Hz tone sampled at 32 Hz — far above Nyquist. Sinc reconstruction
        // at off-grid points must match the analytic signal away from edges.
        let fs = 32.0;
        let n = 256;
        let f = 3.0;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect();
        let m = Interp::Sinc { half_width: None };
        for k in 0..40 {
            let t = 2.0 + k as f64 * 0.083; // interior region
            let got = m.at(&samples, fs, t);
            let want = (2.0 * PI * f * t).sin();
            assert!((got - want).abs() < 1e-3, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn truncated_sinc_approximates_full() {
        let fs = 16.0;
        let samples: Vec<f64> = (0..128)
            .map(|i| (2.0 * PI * 1.0 * i as f64 / fs).sin())
            .collect();
        let full = Interp::Sinc { half_width: None };
        let truncated = Interp::Sinc { half_width: Some(20) };
        let t = 4.03;
        // The sinc kernel decays like 1/x, so a 20-sample truncation leaves a
        // small but visible tail error.
        assert!((full.at(&samples, fs, t) - truncated.at(&samples, fs, t)).abs() < 0.1);
    }

    #[test]
    fn resample_to_rate_lengths() {
        let samples = vec![1.0; 100];
        let out = Interp::Linear.resample_to_rate(&samples, 10.0, 5.0);
        assert_eq!(out.len(), 50);
        let out = Interp::Linear.resample_to_rate(&samples, 10.0, 20.0);
        assert_eq!(out.len(), 200);
        assert!(out.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn resample_at_times() {
        let samples = [0.0, 1.0, 2.0, 3.0];
        let out = Interp::Linear.resample(&samples, 1.0, &[0.5, 1.5, 2.5]);
        assert_eq!(out, vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn monotone_sinc_resample_matches_pointwise_at() {
        let fs = 8.0;
        let samples: Vec<f64> = (0..96)
            .map(|i| (2.0 * PI * 0.7 * i as f64 / fs).sin() + 0.3)
            .collect();
        let m = Interp::Sinc { half_width: Some(6) };
        // Monotone grid including out-of-span queries on both sides (the
        // incremental window must clamp exactly like `at` does).
        let times: Vec<f64> = (0..200).map(|i| -3.0 + i as f64 * 0.11).collect();
        let fast = m.resample(&samples, fs, &times);
        for (&t, &got) in times.iter().zip(&fast) {
            let want = m.at(&samples, fs, t);
            assert_eq!(got, want, "t={t}");
        }
    }

    #[test]
    fn non_monotone_sinc_resample_falls_back_correctly() {
        let samples: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).cos()).collect();
        let m = Interp::Sinc { half_width: Some(4) };
        let times = [5.0, 2.0, 7.3, 1.1];
        let out = m.resample(&samples, 1.0, &times);
        for (&t, &got) in times.iter().zip(&out) {
            assert_eq!(got, m.at(&samples, 1.0, t), "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_signal_panics() {
        Interp::Linear.at(&[], 1.0, 0.0);
    }

    #[test]
    fn truncated_sinc_far_outside_span_is_zero_not_nan() {
        let samples = [5.0, 6.0, 7.0, 8.0];
        let m = Interp::Sinc { half_width: Some(2) };
        // Query far before and far after the record: the truncated kernel
        // window is empty on both sides.
        for t in [-100.0, 100.0] {
            let v = m.at(&samples, 1.0, t);
            assert_eq!(v, 0.0, "t={t}: {v}");
        }
    }

    #[test]
    fn sinc_deficit_compensation_holds_dc_on_short_records() {
        // A constant signal must reconstruct exactly even from a 6-sample
        // record — the finite-record kernel deficit is re-injected at the
        // window mean (the regression behind the posteriori quality bug).
        let samples = [42.0; 6];
        for m in [
            Interp::Sinc { half_width: None },
            Interp::Sinc { half_width: Some(64) },
        ] {
            for k in 0..50 {
                let t = k as f64 * 0.11;
                let v = m.at(&samples, 1.0, t);
                assert!((v - 42.0).abs() < 1e-9, "{m:?} t={t}: {v}");
            }
        }
    }
}
