//! A minimal double-precision complex number.
//!
//! The offline dependency set has no `num-complex`, and the FFT only needs a
//! handful of operations, so we implement exactly those. The layout is
//! `repr(C)` (two `f64`s) so slices of [`Complex64`] are cache-friendly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate `re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root of [`norm`]).
    ///
    /// [`norm`]: Complex64::norm
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_manual_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(4.0, -5.0);
        // (2+3i)(4−5i) = 8 −10i +12i −15i² = 23 + 2i
        assert!(close(a * b, Complex64::new(23.0, 2.0)));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(4.0, -5.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let a = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((a.norm() - 2.0).abs() < EPS);
        assert!((a.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.3;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let e = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!(close(e, Complex64::new(-1.0, 0.0)));
    }

    #[test]
    fn sum_folds_over_zero() {
        let v = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)];
        let s: Complex64 = v.iter().copied().sum();
        assert!(close(s, Complex64::new(3.0, -2.0)));
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        let mut x = a;
        x += b;
        assert!(close(x, a + b));
        x -= b;
        assert!(close(x, a));
        x *= b;
        assert!(close(x, a * b));
        x /= b;
        assert!(close(x, a));
    }
}
