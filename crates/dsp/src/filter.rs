//! Filtering primitives.
//!
//! The paper's reconstruction (§4.3) is an ideal ("brick-wall") low-pass in
//! the frequency domain: FFT, zero every component above the cutoff, IFFT.
//! [`fft_lowpass`] implements exactly that. The small-amplitude-noise
//! suppression mentioned in §4.1 is covered by [`moving_average`],
//! [`single_pole_lowpass`] and [`median_filter`].

use crate::fft::FftPlanner;

/// Ideal low-pass: keeps frequency content in `[0, cutoff_hz]`, zeroes the
/// rest, and returns the re-synthesized time-domain signal.
///
/// This is the paper's reconstruction filter (§4.3): *"taking an FFT of the
/// sampled signal, setting all frequency components above f₀ to 0 and then
/// taking the IFFT"*. The filter runs one-sided through the real-input FFT
/// fast path; zeroing a one-sided bin zeroes its negative twin implicitly,
/// so the output stays real by construction.
///
/// # Panics
/// Panics if `samples` is empty, `sample_rate <= 0`, or `cutoff_hz < 0`.
pub fn fft_lowpass(
    planner: &mut FftPlanner,
    samples: &[f64],
    sample_rate: f64,
    cutoff_hz: f64,
) -> Vec<f64> {
    assert!(!samples.is_empty(), "cannot filter an empty signal");
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    assert!(cutoff_hz >= 0.0, "cutoff must be non-negative");
    let n = samples.len();
    let mut spec = Vec::with_capacity(crate::fft::one_sided_len(n));
    planner.fft_real_into(samples, &mut spec);
    let resolution = sample_rate / n as f64;
    for (k, c) in spec.iter_mut().enumerate() {
        if k as f64 * resolution > cutoff_hz {
            *c = crate::Complex64::ZERO;
        }
    }
    let mut out = Vec::with_capacity(n);
    planner.ifft_real_into(&spec, n, &mut out);
    out
}

/// Centered moving average of odd width `window` (edges use the available
/// neighborhood, so output length equals input length).
///
/// # Panics
/// Panics if `window` is zero or even.
pub fn moving_average(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd and positive");
    let half = window / 2;
    let n = samples.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            samples[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// First-order (single-pole) IIR low-pass: `y[i] = α·x[i] + (1−α)·y[i−1]`.
///
/// `alpha` in `(0, 1]`; 1.0 passes the signal through unchanged.
///
/// # Panics
/// Panics unless `0 < alpha <= 1`.
pub fn single_pole_lowpass(samples: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1], got {alpha}");
    let mut out = Vec::with_capacity(samples.len());
    let mut y = match samples.first() {
        Some(&x) => x,
        None => return out,
    };
    for &x in samples {
        y = alpha * x + (1.0 - alpha) * y;
        out.push(y);
    }
    out
}

/// The `alpha` for [`single_pole_lowpass`] whose −3 dB point sits at
/// `cutoff_hz` for a signal sampled at `sample_rate`.
///
/// # Panics
/// Panics if either rate is not positive.
pub fn alpha_for_cutoff(cutoff_hz: f64, sample_rate: f64) -> f64 {
    assert!(cutoff_hz > 0.0 && sample_rate > 0.0, "rates must be positive");
    let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz);
    let dt = 1.0 / sample_rate;
    dt / (rc + dt)
}

/// Centered median filter of odd width `window` — robust spike suppression
/// (the "noise especially of a small amplitude can be filtered" remark in
/// §4.1). Edges use the available neighborhood.
///
/// # Panics
/// Panics if `window` is zero or even.
pub fn median_filter(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd and positive");
    let half = window / 2;
    let n = samples.len();
    let mut scratch: Vec<f64> = Vec::with_capacity(window);
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            scratch.clear();
            scratch.extend_from_slice(&samples[lo..hi]);
            scratch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            scratch[scratch.len() / 2]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn two_tone(n: usize, fs: f64, f1: f64, f2: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * f1 * t).sin() + (2.0 * PI * f2 * t).sin()
            })
            .collect()
    }

    #[test]
    fn lowpass_removes_high_tone_keeps_low_tone() {
        let mut p = FftPlanner::new();
        let fs = 1000.0;
        let n = 1000;
        let sig = two_tone(n, fs, 10.0, 200.0);
        let filtered = fft_lowpass(&mut p, &sig, fs, 50.0);
        let want: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 10.0 * i as f64 / fs).sin())
            .collect();
        let err: f64 = filtered
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64;
        assert!(err < 1e-18, "residual {err}");
    }

    #[test]
    fn lowpass_with_cutoff_above_nyquist_is_identity() {
        let mut p = FftPlanner::new();
        let sig = two_tone(512, 100.0, 3.0, 30.0);
        let out = fft_lowpass(&mut p, &sig, 100.0, 50.0);
        for (a, b) in out.iter().zip(&sig) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn lowpass_zero_cutoff_keeps_only_dc() {
        let mut p = FftPlanner::new();
        let sig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 5.0).collect();
        let out = fft_lowpass(&mut p, &sig, 1.0, 0.0);
        let mean = sig.iter().sum::<f64>() / sig.len() as f64;
        for v in out {
            assert!((v - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn lowpass_output_is_real_for_odd_lengths() {
        let mut p = FftPlanner::new();
        let sig = two_tone(501, 100.0, 2.0, 40.0);
        let out = fft_lowpass(&mut p, &sig, 100.0, 10.0);
        assert_eq!(out.len(), 501);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn moving_average_flattens_constant() {
        let v = vec![4.0; 20];
        assert_eq!(moving_average(&v, 5), v);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(moving_average(&v, 1), v);
    }

    #[test]
    fn moving_average_attenuates_alternation() {
        let v: Vec<f64> = (0..32).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let out = moving_average(&v, 3);
        // Interior of an alternating ±1 with width 3 is ±1/3.
        for &x in &out[1..31] {
            assert!(x.abs() < 0.34);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn moving_average_even_window_panics() {
        moving_average(&[1.0, 2.0], 2);
    }

    #[test]
    fn single_pole_alpha_one_is_identity() {
        let v: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        assert_eq!(single_pole_lowpass(&v, 1.0), v);
    }

    #[test]
    fn single_pole_converges_to_step() {
        let mut v = vec![0.0; 5];
        v.extend(vec![1.0; 200]);
        let out = single_pole_lowpass(&v, 0.1);
        assert!((out.last().unwrap() - 1.0).abs() < 1e-6);
        // Monotone rise after the step.
        for w in out[5..].windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn alpha_for_cutoff_in_unit_interval() {
        let a = alpha_for_cutoff(1.0, 100.0);
        assert!(a > 0.0 && a < 1.0);
        // Higher cutoff ⇒ larger alpha (less smoothing).
        assert!(alpha_for_cutoff(10.0, 100.0) > a);
    }

    #[test]
    fn median_filter_removes_isolated_spike() {
        let mut v = vec![1.0; 21];
        v[10] = 100.0;
        let out = median_filter(&v, 3);
        assert!(out.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn median_filter_preserves_step_edge() {
        let mut v = vec![0.0; 10];
        v.extend(vec![1.0; 10]);
        let out = median_filter(&v, 5);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[19], 1.0);
        // A median filter keeps a monotone step monotone.
        for w in out.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn filters_handle_empty_input() {
        assert!(moving_average(&[], 3).is_empty());
        assert!(single_pole_lowpass(&[], 0.5).is_empty());
        assert!(median_filter(&[], 3).is_empty());
    }
}
