//! Uniform quantization (§4.3 of the paper).
//!
//! Measurement readings are quantized in practice — a temperature sensor
//! rounds to the nearest integer. Quantization adds broadband noise whose
//! power grows with the quantization step; the paper's estimator copes via
//! the 99%-energy threshold, and its reconstruction can *re-apply* the same
//! quantizer to recover the stored representation exactly.

/// A uniform mid-tread quantizer: `q(x) = round((x − offset)/step)·step + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    step: f64,
    offset: f64,
}

impl Quantizer {
    /// Quantizer with the given step and zero offset.
    ///
    /// # Panics
    /// Panics if `step` is not finite and positive.
    pub fn new(step: f64) -> Self {
        Self::with_offset(step, 0.0)
    }

    /// Quantizer with the given step and reconstruction offset.
    ///
    /// # Panics
    /// Panics if `step` is not finite and positive, or `offset` is not finite.
    pub fn with_offset(step: f64, offset: f64) -> Self {
        assert!(step.is_finite() && step > 0.0, "step must be positive, got {step}");
        assert!(offset.is_finite(), "offset must be finite");
        Quantizer { step, offset }
    }

    /// The quantization step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Quantizes a single value.
    pub fn quantize(&self, x: f64) -> f64 {
        ((x - self.offset) / self.step).round() * self.step + self.offset
    }

    /// Quantizes a slice in place.
    pub fn apply(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.quantize(*x);
        }
    }

    /// Returns a quantized copy of `xs`.
    pub fn quantized(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Theoretical quantization-noise power `step²/12` (uniform error model).
    pub fn noise_power(&self) -> f64 {
        self.step * self.step / 12.0
    }

    /// Signal-to-quantization-noise ratio in dB for a signal of the given
    /// power.
    ///
    /// # Panics
    /// Panics if `signal_power` is not positive.
    pub fn sqnr_db(&self, signal_power: f64) -> f64 {
        assert!(signal_power > 0.0, "signal power must be positive");
        10.0 * (signal_power / self.noise_power()).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_quantizer_rounds() {
        let q = Quantizer::new(1.0);
        assert_eq!(q.quantize(2.4), 2.0);
        assert_eq!(q.quantize(2.6), 3.0);
        assert_eq!(q.quantize(-1.4), -1.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(0.25);
        for &x in &[0.1, 3.333, -7.77, 1e6 + 0.07] {
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(0.5);
        for k in -100..100 {
            let x = k as f64 * 0.0317;
            assert!((q.quantize(x) - x).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn offset_shifts_the_grid() {
        let q = Quantizer::with_offset(1.0, 0.5);
        assert_eq!(q.quantize(0.9), 0.5);
        assert_eq!(q.quantize(1.2), 1.5);
    }

    #[test]
    fn apply_and_quantized_agree() {
        let q = Quantizer::new(2.0);
        let orig = vec![0.9, 1.1, 2.9, -3.3];
        let copy = q.quantized(&orig);
        let mut in_place = orig;
        q.apply(&mut in_place);
        assert_eq!(copy, in_place);
    }

    #[test]
    fn noise_power_model() {
        let q = Quantizer::new(1.0);
        assert!((q.noise_power() - 1.0 / 12.0).abs() < 1e-15);
        // Empirical check: quantization error power of a smooth ramp is close
        // to step²/12.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.0137).collect();
        let err_power = xs
            .iter()
            .map(|&x| {
                let e = q.quantize(x) - x;
                e * e
            })
            .sum::<f64>()
            / xs.len() as f64;
        assert!((err_power - q.noise_power()).abs() < 0.01);
    }

    #[test]
    fn sqnr_increases_with_finer_steps() {
        let coarse = Quantizer::new(1.0);
        let fine = Quantizer::new(0.01);
        assert!(fine.sqnr_db(1.0) > coarse.sqnr_db(1.0));
        // Halving the step buys ~6 dB.
        let a = Quantizer::new(0.5).sqnr_db(1.0);
        let b = Quantizer::new(0.25).sqnr_db(1.0);
        assert!((b - a - 6.02).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        Quantizer::new(0.0);
    }
}
