//! # sweetspot-dsp
//!
//! Signal-processing substrate for the `sweetspot` workspace — a from-scratch
//! implementation of the numerics the HotNets'21 paper *"Towards a Cost vs.
//! Quality Sweet Spot for Monitoring Networks"* relies on:
//!
//! * complex arithmetic ([`Complex64`]),
//! * fast Fourier transforms ([`fft::FftPlanner`]: iterative radix-2
//!   Cooley–Tukey plus Bluestein's chirp-z algorithm for arbitrary lengths),
//! * window functions ([`window::Window`]),
//! * power-spectral-density estimation ([`psd`]: periodogram and Welch),
//! * filtering ([`filter`]: FFT brick-wall low-pass, moving average, IIR,
//!   median),
//! * resampling and interpolation ([`resample`], [`interp`]: decimation,
//!   zero-stuff upsampling, nearest/linear/sinc reconstruction),
//! * quantization ([`quantize`]), and
//! * descriptive statistics ([`stats`]: RMSE, percentiles, CDFs, five-number
//!   summaries).
//!
//! Everything is deterministic, allocation-conscious and `f64`-based. The
//! crate has **no dependencies**; correctness is guarded by unit tests and
//! property tests (Parseval's theorem, round-trips, linearity, conjugate
//! symmetry).
//!
//! ## Example
//!
//! ```
//! use sweetspot_dsp::fft::FftPlanner;
//! use sweetspot_dsp::Complex64;
//!
//! let mut planner = FftPlanner::new();
//! let mut buf: Vec<Complex64> = (0..8)
//!     .map(|i| Complex64::new((i as f64).sin(), 0.0))
//!     .collect();
//! let orig = buf.clone();
//! planner.fft_in_place(&mut buf);
//! planner.ifft_in_place(&mut buf);
//! for (a, b) in orig.iter().zip(&buf) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod interp;
pub mod psd;
pub mod quantize;
pub mod resample;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex64;
pub use spectrum::Spectrum;
