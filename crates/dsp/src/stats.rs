//! Descriptive statistics, error metrics and distribution summaries.
//!
//! The paper's evaluation reports CDFs (Figure 4), box plots (Figure 5) and
//! L2 distances (Figure 6); this module supplies those plus the usual error
//! metrics the quality model in `sweetspot-monitor` is built on.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance. Returns 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Euclidean (L2) distance between two equal-length signals — the metric of
/// Figure 6 ("The L2 distance between these signals is 0").
///
/// # Panics
/// Panics if lengths differ.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "L2 distance needs equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Root-mean-square error between two equal-length signals.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty(), "RMSE of empty signals is undefined");
    assert_eq!(a.len(), b.len(), "RMSE needs equal lengths");
    (a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64)
        .sqrt()
}

/// RMSE normalized by the value range of `reference`. Returns 0 when the
/// reference is constant and the signals match; `f64::INFINITY` when the
/// reference is constant but the signals differ.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn nrmse(reference: &[f64], candidate: &[f64]) -> f64 {
    let e = rmse(reference, candidate);
    let (min, max) = min_max(reference);
    let range = max - min;
    if range <= 0.0 {
        if e == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        e / range
    }
}

/// Largest absolute pointwise difference.
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error needs equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Minimum and maximum of a slice. Returns `(0.0, 0.0)` for an empty slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = xs[0];
    let mut hi = xs[0];
    for &x in &xs[1..] {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// Pearson correlation coefficient. Returns 0.0 if either side is constant.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty(), "correlation of empty signals is undefined");
    assert_eq!(a.len(), b.len(), "correlation needs equal lengths");
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Percentile of `xs` (0..=100) with linear interpolation between order
/// statistics — matches `numpy.percentile`'s default.
///
/// # Panics
/// Panics if `xs` is empty or `p ∉ [0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice is undefined");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical cumulative distribution function (Figure 4's plot type).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from (unsorted) samples; NaNs are dropped.
    pub fn new(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), linearly interpolated.
    ///
    /// # Panics
    /// Panics if the CDF is empty or `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        percentile(&self.sorted, q * 100.0)
    }

    /// `(value, cumulative_fraction)` pairs for plotting, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// The underlying sorted samples.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Five-number summary (Figure 5's box plot): min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "five-number summary of an empty slice");
        FiveNumber {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 25.0),
            median: percentile(xs, 50.0),
            q3: percentile(xs, 75.0),
            max: percentile(xs, 100.0),
        }
    }

    /// Interquartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(stddev(&xs), 2.0);
    }

    #[test]
    fn empty_slices_are_graceful() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min_max(&[]), (0.0, 0.0));
    }

    #[test]
    fn l2_distance_of_identical_is_zero() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(l2_distance(&xs, &xs), 0.0);
    }

    #[test]
    fn l2_distance_pythagorean() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn rmse_and_max_error() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(rmse(&a, &b), 1.0);
        assert_eq!(max_abs_error(&a, &b), 1.0);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let reference = [0.0, 10.0];
        let candidate = [1.0, 10.0];
        assert!((nrmse(&reference, &candidate) - (0.5f64.sqrt() / 10.0)).abs() < 1e-12);
    }

    #[test]
    fn nrmse_constant_reference() {
        assert_eq!(nrmse(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
        assert_eq!(nrmse(&[5.0, 5.0], &[5.0, 6.0]), f64::INFINITY);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
    }

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn cdf_drops_nans() {
        let cdf = Cdf::new([1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_quantile_matches_percentile() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = Cdf::new(xs);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let cdf = Cdf::new([3.0, 1.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 > w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn five_number_summary() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let f = FiveNumber::of(&xs);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 5.0);
        assert_eq!(f.max, 9.0);
        assert_eq!(f.q1, 3.0);
        assert_eq!(f.q3, 7.0);
        assert_eq!(f.iqr(), 4.0);
    }
}
