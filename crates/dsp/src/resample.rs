//! Sample-rate conversion.
//!
//! Two families of operations:
//!
//! * **Decimation** ([`decimate`], [`fractional_decimate`]) — keep a subset of
//!   samples. This models what a *monitoring system* does when it polls less
//!   often: no anti-alias filter protects it, which is precisely how aliasing
//!   arises in practice (§2 of the paper).
//! * **Fourier resampling** ([`resample_fft`], [`upsample_fft`]) — the ideal
//!   band-limited conversion used for reconstruction (§4.3): pad or truncate
//!   the spectrum and inverse-transform.

use crate::complex::Complex64;
use crate::fft::{one_sided_len, FftPlanner};

/// Keeps every `factor`-th sample, starting with the first.
///
/// No anti-alias filtering — by design (see module docs).
///
/// # Panics
/// Panics if `factor == 0`.
pub fn decimate(samples: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be positive");
    samples.iter().step_by(factor).copied().collect()
}

/// Decimates by a possibly non-integer `ratio ≥ 1`: output sample `i` is the
/// input sample nearest to position `i · ratio`.
///
/// Models a poller running at `original_rate / ratio` against a store of
/// high-rate samples.
///
/// # Panics
/// Panics if `ratio < 1`.
pub fn fractional_decimate(samples: &[f64], ratio: f64) -> Vec<f64> {
    assert!(ratio >= 1.0, "ratio must be ≥ 1, got {ratio}");
    if samples.is_empty() {
        return Vec::new();
    }
    let out_len = ((samples.len() as f64) / ratio).ceil() as usize;
    (0..out_len)
        .map(|i| {
            let idx = (i as f64 * ratio).round() as usize;
            samples[idx.min(samples.len() - 1)]
        })
        .collect()
}

/// Ideal Fourier resampling of a real signal to `new_len` points spanning the
/// same duration.
///
/// Upsampling zero-pads the spectrum (band-limited interpolation); downsampling
/// truncates it, which applies an ideal anti-alias low-pass at the new Nyquist
/// frequency. The even-length Nyquist bin is split/merged so the output stays
/// real. Energy is scaled so amplitudes are preserved.
///
/// # Panics
/// Panics if `samples` is empty or `new_len == 0`.
pub fn resample_fft(planner: &mut FftPlanner, samples: &[f64], new_len: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(new_len);
    resample_fft_into(planner, samples, new_len, &mut out);
    out
}

/// [`resample_fft`] into a caller-owned output buffer (cleared first), for
/// pipelines that resample repeatedly (e.g. the §6 correlation roundtrip).
///
/// Both the analysis and the synthesis run one-sided through the real-input
/// FFT fast path: the source's one-sided spectrum is mapped onto the
/// target's one-sided grid (the mirror half is implied by conjugate
/// symmetry) and inverse-transformed with the packed real inverse.
///
/// # Panics
/// Panics if `samples` is empty or `new_len == 0`.
pub fn resample_fft_into(
    planner: &mut FftPlanner,
    samples: &[f64],
    new_len: usize,
    out: &mut Vec<f64>,
) {
    assert!(!samples.is_empty(), "cannot resample an empty signal");
    assert!(new_len > 0, "new_len must be positive");
    let n = samples.len();
    if new_len == n {
        out.clear();
        out.extend_from_slice(samples);
        return;
    }
    let mut spec = Vec::with_capacity(one_sided_len(n));
    planner.fft_real_into(samples, &mut spec);
    let m = new_len;
    let mut out_spec = vec![Complex64::ZERO; one_sided_len(m)];

    // Number of strictly-positive frequencies shared by both lengths.
    let keep_pos = ((n - 1) / 2).min((m - 1) / 2);
    out_spec[0] = spec[0];
    out_spec[1..=keep_pos].copy_from_slice(&spec[1..=keep_pos]);
    if m > n {
        // Upsampling: if n is even, its Nyquist bin must be split between the
        // two mirrored positions of the longer spectrum (the mirror half of
        // the one-sided target carries the conjugate implicitly).
        if n.is_multiple_of(2) {
            out_spec[n / 2] = spec[n / 2].scale(0.5);
        }
    } else {
        // Downsampling: if m is even, fold the two source bins that map onto
        // the new Nyquist position (they are conjugates, so the sum is the
        // real `2·Re`). Summing — not averaging — makes up-then-down an
        // exact inverse and matches true decimation of a Nyquist-frequency
        // cosine.
        if m.is_multiple_of(2) {
            out_spec[m / 2] = Complex64::from_real(2.0 * spec[m / 2].re);
        }
    }
    let scale = m as f64 / n as f64;
    for c in &mut out_spec {
        *c = c.scale(scale);
    }
    planner.ifft_real_into(&out_spec, m, out);
}

/// Convenience wrapper: upsamples by an integer `factor` via [`resample_fft`].
///
/// # Panics
/// Panics if `factor == 0` or `samples` is empty.
pub fn upsample_fft(planner: &mut FftPlanner, samples: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "upsampling factor must be positive");
    resample_fft(planner, samples, samples.len() * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, f: f64) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn decimate_basic() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate(&v, 3), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(decimate(&v, 1), v);
    }

    #[test]
    fn decimate_empty() {
        assert!(decimate(&[], 4).is_empty());
    }

    #[test]
    fn fractional_decimate_integer_ratio_matches_decimate() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        assert_eq!(fractional_decimate(&v, 4.0), decimate(&v, 4));
    }

    #[test]
    fn fractional_decimate_ratio_one_is_identity() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(fractional_decimate(&v, 1.0), v);
    }

    #[test]
    fn fractional_decimate_noninteger() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let out = fractional_decimate(&v, 2.5);
        assert_eq!(out, vec![0.0, 3.0, 5.0, 8.0]);
    }

    #[test]
    fn resample_identity_when_len_unchanged() {
        let mut p = FftPlanner::new();
        let v = tone(64, 8.0, 1.0);
        assert_eq!(resample_fft(&mut p, &v, 64), v);
    }

    #[test]
    fn upsample_preserves_tone() {
        let mut p = FftPlanner::new();
        let fs = 32.0;
        let n = 128;
        let v = tone(n, fs, 3.0);
        let up = upsample_fft(&mut p, &v, 4);
        assert_eq!(up.len(), 4 * n);
        // The upsampled signal must match the analytic tone at the new rate.
        let want = tone(4 * n, 4.0 * fs, 3.0);
        let err: f64 = up
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / up.len() as f64;
        assert!(err < 1e-6, "MSE {err}");
    }

    #[test]
    fn downsample_above_nyquist_preserves_tone() {
        let mut p = FftPlanner::new();
        // 1 Hz tone at 64 Hz → resample to 8 Hz (still > 2 Hz Nyquist rate).
        let v = tone(640, 64.0, 1.0);
        let down = resample_fft(&mut p, &v, 80);
        let want = tone(80, 8.0, 1.0);
        let err: f64 = down
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / down.len() as f64;
        assert!(err < 1e-6, "MSE {err}");
    }

    #[test]
    fn down_then_up_roundtrip_for_bandlimited() {
        let mut p = FftPlanner::new();
        // Band-limited: tones at 1 and 2 Hz, original 64 Hz, down to 8 Hz.
        let n = 512;
        let fs = 64.0;
        let v: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * t).sin() + 0.5 * (4.0 * PI * t).cos()
            })
            .collect();
        let down = resample_fft(&mut p, &v, n / 8);
        let up = resample_fft(&mut p, &down, n);
        let err: f64 = up
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64;
        assert!(err < 1e-9, "round-trip MSE {err}");
    }

    #[test]
    fn downsample_below_nyquist_loses_energy() {
        let mut p = FftPlanner::new();
        // 20 Hz tone at 64 Hz; resampling to 8 Hz (Nyquist 4 Hz) must kill it.
        let v = tone(640, 64.0, 20.0);
        let down = resample_fft(&mut p, &v, 80);
        let power: f64 = down.iter().map(|x| x * x).sum::<f64>() / down.len() as f64;
        assert!(power < 1e-9, "anti-alias filter leaked power {power}");
    }

    #[test]
    fn resample_handles_odd_lengths() {
        let mut p = FftPlanner::new();
        let v = tone(101, 10.0, 1.0);
        let up = resample_fft(&mut p, &v, 303);
        assert_eq!(up.len(), 303);
        let down = resample_fft(&mut p, &up, 101);
        let err: f64 = down
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / v.len() as f64;
        assert!(err < 1e-9, "odd round-trip MSE {err}");
    }

    #[test]
    fn dc_preserved_by_resampling() {
        let mut p = FftPlanner::new();
        let v = vec![5.0; 100];
        for m in [10usize, 50, 200, 333] {
            let out = resample_fft(&mut p, &v, m);
            assert!(
                out.iter().all(|&x| (x - 5.0).abs() < 1e-9),
                "DC broken at m={m}"
            );
        }
    }
}
