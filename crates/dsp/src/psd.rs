//! Power-spectral-density estimation.
//!
//! Two estimators are provided:
//!
//! * [`periodogram`] — the raw squared-magnitude FFT the paper's §3.2 method
//!   uses ("compute the FFT ... the sum of the PSD across all FFT bins").
//! * [`welch`] — averaged, overlapped, windowed segments; lower variance on
//!   noisy traces at the cost of frequency resolution. Exposed because the
//!   estimator ablation (DESIGN.md §6.2) compares the two.
//!
//! Both return a one-sided [`Spectrum`] normalized as *power per bin* with
//! window energy-gain compensation, so cumulative-energy fractions are
//! comparable across window choices.
//!
//! The `*_into` variants ([`periodogram_into`], [`welch_into`]) write into
//! caller-owned buffers through a reusable [`PsdScratch`]: one windowed-
//! segment buffer, one spectrum buffer and one [`FftScratch`] are shared
//! across all segments, and window coefficients come from the planner's
//! cached per-`(window, n)` tables — so the steady-state inner loop performs
//! **zero heap allocations per segment** (pinned by
//! `tests/alloc_steady_state.rs`). Keeping the FFT working buffers inside
//! the scratch (rather than the planner) matters at fleet scale: every
//! member's estimator holds a lightweight planner clone, and routing the
//! transform through the caller's scratch keeps those clones permanently
//! empty instead of each retaining stream-sized conv/half/full buffers.

use crate::complex::Complex64;
use crate::fft::{one_sided_len, FftPlanner, FftScratch};
use crate::spectrum::Spectrum;
use crate::window::Window;

/// Configuration for [`periodogram`].
#[derive(Debug, Clone, Copy)]
pub struct PsdConfig {
    /// Taper applied before the FFT.
    pub window: Window,
    /// Subtract the segment mean first. Removes the (usually enormous) DC
    /// component so the energy threshold reflects signal *dynamics*; the
    /// Nyquist estimator re-inserts DC accounting explicitly.
    pub detrend: bool,
}

impl Default for PsdConfig {
    fn default() -> Self {
        PsdConfig {
            window: Window::Rectangular,
            detrend: false,
        }
    }
}

/// Configuration for [`welch`].
#[derive(Debug, Clone, Copy)]
pub struct WelchConfig {
    /// Samples per segment. Clamped to the signal length.
    pub segment_len: usize,
    /// Fractional overlap between consecutive segments in `[0, 0.95]`.
    pub overlap: f64,
    /// Taper applied to each segment.
    pub window: Window,
    /// Subtract each segment's mean before windowing.
    pub detrend: bool,
}

impl Default for WelchConfig {
    fn default() -> Self {
        WelchConfig {
            segment_len: 256,
            overlap: 0.5,
            window: Window::Hann,
            detrend: true,
        }
    }
}

/// Reusable scratch buffers for the PSD estimators.
///
/// Holds the windowed-segment buffer, the one-sided spectrum buffer and a
/// per-segment power buffer; all grow on demand and are reused across calls.
/// Keep one per long-lived estimator (the Nyquist estimator owns one) so the
/// steady-state pipeline allocates nothing.
#[derive(Debug, Default)]
pub struct PsdScratch {
    /// Windowed (and detrended) copy of the current segment.
    seg: Vec<f64>,
    /// One-sided spectrum of the current segment.
    spec: Vec<Complex64>,
    /// Per-segment folded power, used by [`welch_into`]'s accumulation.
    power: Vec<f64>,
    /// FFT working buffers, threaded into the planner's `*_into_with` fast
    /// path so per-member planner clones never grow private scratch.
    fft: FftScratch,
}

impl PsdScratch {
    /// Creates empty scratch space; buffers grow on first use.
    pub fn new() -> Self {
        PsdScratch::default()
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths) —
    /// the per-worker memory-footprint accounting of the fleet engine.
    pub fn resident_bytes(&self) -> usize {
        self.seg.capacity() * std::mem::size_of::<f64>()
            + self.spec.capacity() * std::mem::size_of::<Complex64>()
            + self.power.capacity() * std::mem::size_of::<f64>()
            + self.fft.resident_bytes()
    }
}

/// The shared kernel: one windowed segment's one-sided per-bin power into
/// `out` (cleared first).
///
/// Interior bins are doubled (they carry the energy of both the positive and
/// negative frequency); DC and — for even `n` — the Nyquist bin are not.
/// Everything is normalized by `n²` and the window energy gain.
fn segment_power_into(
    planner: &mut FftPlanner,
    seg: &mut Vec<f64>,
    spec: &mut Vec<Complex64>,
    fft: &mut FftScratch,
    samples: &[f64],
    cfg: PsdConfig,
    out: &mut Vec<f64>,
) {
    let n = samples.len();
    seg.clear();
    seg.extend_from_slice(samples);
    if cfg.detrend {
        let mean = seg.iter().sum::<f64>() / n as f64;
        for s in seg.iter_mut() {
            *s -= mean;
        }
    }
    let table = planner.window_table(cfg.window, n);
    table.apply(seg);
    planner.fft_real_into_with(seg, spec, fft);
    let norm = (n as f64) * (n as f64) * table.energy_gain();
    out.clear();
    out.reserve(spec.len());
    for (k, c) in spec.iter().enumerate() {
        let is_dc = k == 0;
        let is_nyquist = n.is_multiple_of(2) && k == n / 2;
        let mut p = c.norm_sqr();
        if !is_dc && !is_nyquist {
            p *= 2.0;
        }
        out.push(p / norm);
    }
}

/// [`periodogram`] into a caller-owned power buffer (cleared first) —
/// the allocation-free core for steady-state pipelines. The buffer holds
/// [`one_sided_len`]`(samples.len())` bins; wrap it with
/// [`Spectrum::from_psd`] (and reclaim it via `Spectrum::into_power`).
///
/// # Panics
/// Panics if `samples` is empty.
pub fn periodogram_into(
    planner: &mut FftPlanner,
    scratch: &mut PsdScratch,
    samples: &[f64],
    cfg: PsdConfig,
    out: &mut Vec<f64>,
) {
    assert!(!samples.is_empty(), "cannot estimate the PSD of an empty signal");
    segment_power_into(
        planner,
        &mut scratch.seg,
        &mut scratch.spec,
        &mut scratch.fft,
        samples,
        cfg,
        out,
    );
}

/// Single-segment PSD estimate (§3.2's raw method when
/// `PsdConfig::default()` is used).
///
/// Normalization: power per bin divided by `n²` and the window energy gain,
/// so a full-scale tone reads the same power regardless of `n` or window.
///
/// # Panics
/// Panics if `samples` is empty or `sample_rate` is not positive.
pub fn periodogram(
    planner: &mut FftPlanner,
    samples: &[f64],
    sample_rate: f64,
    cfg: PsdConfig,
) -> Spectrum {
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    let mut scratch = PsdScratch::new();
    let mut power = Vec::new();
    periodogram_into(planner, &mut scratch, samples, cfg, &mut power);
    Spectrum::from_psd(power, sample_rate, samples.len())
}

/// [`welch`] into a caller-owned power buffer (cleared first).
///
/// Returns the segment length the buffer must be interpreted against: the
/// configured `segment_len` clamped to the trace length, so a signal
/// shorter than one segment degenerates to exactly one full-length
/// periodogram. The inner loop reuses `scratch` across segments and
/// performs no per-segment allocations in steady state.
///
/// # Panics
/// Panics if `samples` is empty, `segment_len == 0`, or
/// `overlap ∉ [0, 0.95]`.
pub fn welch_into(
    planner: &mut FftPlanner,
    scratch: &mut PsdScratch,
    samples: &[f64],
    cfg: WelchConfig,
    out: &mut Vec<f64>,
) -> usize {
    assert!(!samples.is_empty(), "cannot estimate the PSD of an empty signal");
    assert!(cfg.segment_len > 0, "segment_len must be positive");
    assert!(
        (0.0..=0.95).contains(&cfg.overlap),
        "overlap must be in [0, 0.95], got {}",
        cfg.overlap
    );
    let seg_len = cfg.segment_len.min(samples.len());
    let hop = ((seg_len as f64) * (1.0 - cfg.overlap)).round().max(1.0) as usize;
    let seg_cfg = PsdConfig {
        window: cfg.window,
        detrend: cfg.detrend,
    };
    let PsdScratch { seg, spec, power, fft } = scratch;
    out.clear();
    out.resize(one_sided_len(seg_len), 0.0);
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + seg_len <= samples.len() {
        segment_power_into(planner, seg, spec, fft, &samples[start..start + seg_len], seg_cfg, power);
        for (a, p) in out.iter_mut().zip(power.iter()) {
            *a += *p;
        }
        segments += 1;
        start += hop;
    }
    // `seg_len <= samples.len()` by the clamp above, so the loop always ran.
    debug_assert!(segments > 0);
    for a in out.iter_mut() {
        *a /= segments as f64;
    }
    seg_len
}

/// Welch's method: average the periodograms of overlapping windowed segments.
///
/// Lower-variance than [`periodogram`] on stochastic signals; resolution is
/// `sample_rate / segment_len`. Trailing samples that do not fill a final
/// segment are dropped (standard practice). If the signal is shorter than
/// `segment_len`, a single full-length segment is used.
///
/// # Panics
/// Panics if `samples` is empty, `sample_rate <= 0`, `segment_len == 0`, or
/// `overlap ∉ [0, 0.95]`.
pub fn welch(
    planner: &mut FftPlanner,
    samples: &[f64],
    sample_rate: f64,
    cfg: WelchConfig,
) -> Spectrum {
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    let mut scratch = PsdScratch::new();
    let mut acc = Vec::new();
    let n = welch_into(planner, &mut scratch, samples, cfg, &mut acc);
    Spectrum::from_psd(acc, sample_rate, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, f: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn tone_power_is_half_amplitude_squared() {
        let mut p = FftPlanner::new();
        let fs = 1000.0;
        let n = 1000;
        // 50 Hz lands exactly on a bin for n=1000, fs=1000.
        let s = periodogram(&mut p, &tone(n, fs, 50.0, 2.0), fs, PsdConfig::default());
        let peak = s.peak_bins(1)[0];
        assert!((peak.0 - 50.0).abs() < 1e-9);
        // A sine of amplitude A carries power A²/2 = 2.0.
        assert!((peak.1 - 2.0).abs() < 1e-9, "got {}", peak.1);
    }

    #[test]
    fn dc_power_is_mean_squared() {
        let mut p = FftPlanner::new();
        let s = periodogram(&mut p, &vec![3.0; 64], 1.0, PsdConfig::default());
        assert!((s.power_of_bin(0) - 9.0).abs() < 1e-9);
        assert!(s.power()[1..].iter().all(|&x| x < 1e-18));
    }

    #[test]
    fn detrend_removes_dc() {
        let mut p = FftPlanner::new();
        let cfg = PsdConfig {
            detrend: true,
            ..PsdConfig::default()
        };
        let mut sig = tone(512, 1.0, 0.1, 1.0);
        for s in &mut sig {
            *s += 100.0;
        }
        let s = periodogram(&mut p, &sig, 1.0, cfg);
        assert!(s.power_of_bin(0) < 1e-12);
    }

    #[test]
    fn windowed_tone_power_is_compensated() {
        let mut p = FftPlanner::new();
        let fs = 1000.0;
        let n = 1000;
        let cfg = PsdConfig {
            window: Window::Hann,
            detrend: false,
        };
        let s = periodogram(&mut p, &tone(n, fs, 50.0, 2.0), fs, cfg);
        // The tone smears over the main lobe; its total power must still be
        // ≈ A²/2 after energy-gain compensation.
        let band = s.power_in_band(45.0, 55.0);
        assert!((band - 2.0).abs() < 0.05, "band power {band}");
    }

    #[test]
    fn parseval_total_power_matches_time_domain() {
        let mut p = FftPlanner::new();
        let sig: Vec<f64> = (0..777).map(|i| (i as f64 * 0.013).sin() * 1.5 + 0.2).collect();
        let s = periodogram(&mut p, &sig, 1.0, PsdConfig::default());
        let time_power = sig.iter().map(|x| x * x).sum::<f64>() / sig.len() as f64;
        assert!(
            (s.total_power() - time_power).abs() < 1e-9 * time_power,
            "{} vs {}",
            s.total_power(),
            time_power
        );
    }

    #[test]
    fn welch_reduces_variance_on_noise() {
        let mut p = FftPlanner::new();
        // Deterministic pseudo-noise (LCG) to avoid a rand dependency here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let noise: Vec<f64> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let raw = periodogram(&mut p, &noise, 1.0, PsdConfig::default());
        let avg = welch(
            &mut p,
            &noise,
            1.0,
            WelchConfig {
                segment_len: 256,
                overlap: 0.5,
                window: Window::Hann,
                detrend: true,
            },
        );
        // Raw and Welch spectra have different bin counts (and so different
        // per-bin means); compare the squared coefficient of variation of the
        // flat noise floor instead of absolute variances.
        let cv2 = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
            v / (m * m)
        };
        assert!(cv2(&avg.power()[1..]) < cv2(&raw.power()[1..]) / 4.0);
    }

    #[test]
    fn welch_falls_back_to_single_segment() {
        let mut p = FftPlanner::new();
        let sig = tone(100, 10.0, 1.0, 1.0);
        let w = welch(
            &mut p,
            &sig,
            10.0,
            WelchConfig {
                segment_len: 1000,
                ..WelchConfig::default()
            },
        );
        assert_eq!(w.segment_len(), 100);
    }

    #[test]
    fn welch_resolution_is_segment_based() {
        let mut p = FftPlanner::new();
        let sig = tone(2048, 100.0, 10.0, 1.0);
        let w = welch(
            &mut p,
            &sig,
            100.0,
            WelchConfig {
                segment_len: 256,
                overlap: 0.5,
                window: Window::Hann,
                detrend: false,
            },
        );
        assert!((w.resolution() - 100.0 / 256.0).abs() < 1e-12);
        let peak = w.peak_bins(1)[0];
        assert!((peak.0 - 10.0).abs() <= w.resolution());
    }

    #[test]
    fn odd_length_signals_supported() {
        let mut p = FftPlanner::new();
        let sig = tone(501, 50.0, 5.0, 1.0);
        let s = periodogram(&mut p, &sig, 50.0, PsdConfig::default());
        assert_eq!(s.bin_count(), 251);
        let peak = s.peak_bins(1)[0];
        assert!((peak.0 - 5.0).abs() <= s.resolution());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_signal_panics() {
        let mut p = FftPlanner::new();
        periodogram(&mut p, &[], 1.0, PsdConfig::default());
    }
}
