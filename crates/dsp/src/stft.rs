//! Short-time Fourier transform (spectrogram).
//!
//! The moving-window Nyquist tracking of the paper's Figure 7 is, in DSP
//! terms, a thresholded spectrogram: per-window PSDs over a sliding frame.
//! [`stft`] computes that spectrogram directly — one [`Spectrum`] per frame
//! — for callers that want the full time-frequency picture rather than the
//! tracker's scalar per window (e.g. diagnosing *what* raised a signal's
//! Nyquist rate, not just *that* it rose).

use crate::fft::{one_sided_len, FftPlanner};
use crate::psd::{periodogram_into, PsdConfig, PsdScratch};
use crate::spectrum::Spectrum;
use crate::window::Window;

/// STFT configuration.
#[derive(Debug, Clone, Copy)]
pub struct StftConfig {
    /// Samples per frame.
    pub frame_len: usize,
    /// Samples between frame starts (`<= frame_len` ⇒ overlap).
    pub hop: usize,
    /// Taper applied to each frame.
    pub window: Window,
    /// Remove each frame's mean before transforming.
    pub detrend: bool,
}

impl Default for StftConfig {
    fn default() -> Self {
        StftConfig {
            frame_len: 256,
            hop: 128,
            window: Window::Hann,
            detrend: true,
        }
    }
}

/// One frame of the spectrogram.
#[derive(Debug, Clone)]
pub struct StftFrame {
    /// Index of the frame's first sample in the input.
    pub start: usize,
    /// The frame's one-sided PSD.
    pub spectrum: Spectrum,
}

/// Computes the spectrogram of `samples` taken at `sample_rate` Hz.
///
/// Only full frames are produced (a trailing partial frame is dropped,
/// matching [`crate::psd::welch`] and the paper's moving-window method).
/// Returns an empty vector when the signal is shorter than one frame.
///
/// # Panics
/// Panics if `frame_len` or `hop` is zero, or `sample_rate` is not positive.
pub fn stft(
    planner: &mut FftPlanner,
    samples: &[f64],
    sample_rate: f64,
    cfg: StftConfig,
) -> Vec<StftFrame> {
    assert!(cfg.frame_len > 0, "frame_len must be positive");
    assert!(cfg.hop > 0, "hop must be positive");
    assert!(sample_rate > 0.0, "sample_rate must be positive");
    let psd_cfg = PsdConfig {
        window: cfg.window,
        detrend: cfg.detrend,
    };
    // Pre-size the output from the frame-count geometry and stream every
    // frame through one shared scratch: the loop's only allocation is each
    // frame's own (exact-capacity) power buffer.
    let frame_count = if samples.len() >= cfg.frame_len {
        (samples.len() - cfg.frame_len) / cfg.hop + 1
    } else {
        0
    };
    let mut frames = Vec::with_capacity(frame_count);
    let mut scratch = PsdScratch::new();
    let bins = one_sided_len(cfg.frame_len);
    let mut start = 0usize;
    while start + cfg.frame_len <= samples.len() {
        let mut power = Vec::with_capacity(bins);
        periodogram_into(
            planner,
            &mut scratch,
            &samples[start..start + cfg.frame_len],
            psd_cfg,
            &mut power,
        );
        frames.push(StftFrame {
            start,
            spectrum: Spectrum::from_psd(power, sample_rate, cfg.frame_len),
        });
        start += cfg.hop;
    }
    debug_assert_eq!(frames.len(), frame_count);
    frames
}

/// The per-frame frequency of peak power — a ridge track through the
/// spectrogram (useful for following a drifting tone).
pub fn ridge(frames: &[StftFrame]) -> Vec<(usize, f64)> {
    frames
        .iter()
        .map(|f| {
            let peak = f.spectrum.peak_bins(1);
            (f.start, peak.first().map_or(0.0, |p| p.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn chirp_like(n: usize, fs: f64, f1: f64, f2: f64) -> Vec<f64> {
        // Two half-signals at different tones (an abrupt "regime change").
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f = if i < n / 2 { f1 } else { f2 };
                (2.0 * PI * f * t).sin()
            })
            .collect()
    }

    #[test]
    fn frame_geometry() {
        let mut p = FftPlanner::new();
        let frames = stft(
            &mut p,
            &vec![0.0; 1000],
            1.0,
            StftConfig {
                frame_len: 256,
                hop: 128,
                ..StftConfig::default()
            },
        );
        // Starts: 0,128,…,744 → (1000−256)/128+1 = 6 full frames.
        assert_eq!(frames.len(), 6);
        assert_eq!(frames[0].start, 0);
        assert_eq!(frames[5].start, 640);
        assert_eq!(frames[0].spectrum.bin_count(), 129);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let mut p = FftPlanner::new();
        assert!(stft(&mut p, &vec![0.0; 100], 1.0, StftConfig::default()).is_empty());
    }

    #[test]
    fn spectrogram_localizes_the_regime_change() {
        let mut p = FftPlanner::new();
        let fs = 100.0;
        let sig = chirp_like(4000, fs, 5.0, 20.0);
        let frames = stft(
            &mut p,
            &sig,
            fs,
            StftConfig {
                frame_len: 512,
                hop: 256,
                ..StftConfig::default()
            },
        );
        let r = ridge(&frames);
        // Early frames peak near 5 Hz; late frames near 20 Hz.
        let early: Vec<f64> = r.iter().filter(|(s, _)| *s < 1200).map(|(_, f)| *f).collect();
        let late: Vec<f64> = r.iter().filter(|(s, _)| *s > 2400).map(|(_, f)| *f).collect();
        assert!(!early.is_empty() && !late.is_empty());
        for f in early {
            assert!((f - 5.0).abs() < 1.0, "early peak at {f}");
        }
        for f in late {
            assert!((f - 20.0).abs() < 1.0, "late peak at {f}");
        }
    }

    #[test]
    fn frames_are_physically_normalized() {
        // A unit tone's per-frame power reads A²/2 regardless of overlap.
        let mut p = FftPlanner::new();
        let fs = 100.0;
        let sig: Vec<f64> = (0..2000)
            .map(|i| (2.0 * PI * 10.0 * i as f64 / fs).sin())
            .collect();
        let frames = stft(&mut p, &sig, fs, StftConfig::default());
        for f in &frames {
            let band = f.spectrum.power_in_band(8.0, 12.0);
            assert!((band - 0.5).abs() < 0.05, "frame power {band}");
        }
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn zero_hop_panics() {
        let mut p = FftPlanner::new();
        stft(
            &mut p,
            &vec![0.0; 512],
            1.0,
            StftConfig {
                hop: 0,
                ..StftConfig::default()
            },
        );
    }
}
