//! One-sided power spectra with physical frequency axes.
//!
//! [`Spectrum`] is the common currency between the PSD estimators in
//! [`crate::psd`] and the Nyquist-rate logic in `sweetspot-core`: it knows the
//! sample rate that produced it, maps bins to Hz, and answers the question at
//! the heart of the paper's §3.2 method — *"up to which frequency must I go to
//! capture X% of the signal's energy?"*.

/// A one-sided power spectrum of a real signal.
///
/// Bin `k` covers frequency `k · sample_rate / n` where `n` is the length of
/// the analyzed (time-domain) segment. The last bin is the Nyquist frequency
/// `sample_rate / 2` when `n` is even.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    power: Vec<f64>,
    sample_rate: f64,
    n: usize,
}

impl Spectrum {
    /// Wraps a one-sided PSD.
    ///
    /// `power` must hold `n/2 + 1` bins for even `n` or `(n+1)/2` for odd `n`
    /// (the natural one-sided lengths); `sample_rate` is in Hz.
    ///
    /// # Panics
    /// Panics if the bin count does not match `n`, if `sample_rate` is not
    /// finite and positive, or if any power is negative/NaN.
    pub fn from_psd(power: Vec<f64>, sample_rate: f64, n: usize) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample_rate must be positive, got {sample_rate}"
        );
        let expected = if n.is_multiple_of(2) { n / 2 + 1 } else { n.div_ceil(2) };
        assert_eq!(
            power.len(),
            expected,
            "one-sided PSD of an n={n} signal must have {expected} bins"
        );
        assert!(
            power.iter().all(|p| p.is_finite() && *p >= 0.0),
            "PSD bins must be finite and non-negative"
        );
        Spectrum {
            power,
            sample_rate,
            n,
        }
    }

    /// Number of one-sided bins.
    pub fn bin_count(&self) -> usize {
        self.power.len()
    }

    /// Length of the time-domain segment this spectrum came from.
    pub fn segment_len(&self) -> usize {
        self.n
    }

    /// Sample rate (Hz) of the analyzed signal.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Frequency spacing between adjacent bins, `sample_rate / n` (Hz).
    pub fn resolution(&self) -> f64 {
        self.sample_rate / self.n as f64
    }

    /// The folding (Nyquist) frequency of the *analysis*, `sample_rate / 2`.
    pub fn folding_frequency(&self) -> f64 {
        self.sample_rate / 2.0
    }

    /// Center frequency (Hz) of bin `k`.
    pub fn frequency_of_bin(&self, k: usize) -> f64 {
        k as f64 * self.resolution()
    }

    /// Power in bin `k`.
    pub fn power_of_bin(&self, k: usize) -> f64 {
        self.power[k]
    }

    /// The raw one-sided PSD values.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Consumes the spectrum and returns its power buffer, capacity intact —
    /// steady-state pipelines hand the buffer back to the next
    /// `periodogram_into`/`welch_into` call instead of reallocating.
    pub fn into_power(self) -> Vec<f64> {
        self.power
    }

    /// Sum of all bin powers (total energy proxy; see §3.2 step (a)).
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Smallest frequency `f` such that bins `0..=k(f)` contain at least
    /// `fraction` of the total power — §3.2 step (b).
    ///
    /// Returns [`EnergyCapture::AllBinsNeeded`] when only the *last* bin
    /// completes the capture (the paper's "probably already aliased" case),
    /// [`EnergyCapture::Captured`] otherwise. A spectrum with zero total
    /// power captures everything at DC.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn frequency_capturing_energy(&self, fraction: f64) -> EnergyCapture {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let total = self.total_power();
        if total <= 0.0 {
            return EnergyCapture::Captured { frequency: 0.0 };
        }
        let target = fraction * total;
        let mut acc = 0.0;
        for (k, &p) in self.power.iter().enumerate() {
            acc += p;
            // The `1e-12` slack absorbs summation round-off so a fraction of
            // exactly 1.0 still terminates at the true last contributing bin.
            if acc + 1e-12 * total >= target {
                if k == self.power.len() - 1 && self.power.len() > 1 {
                    return EnergyCapture::AllBinsNeeded;
                }
                return EnergyCapture::Captured {
                    frequency: self.frequency_of_bin(k),
                };
            }
        }
        EnergyCapture::AllBinsNeeded
    }

    /// Cumulative energy fraction per bin (monotone, ends at 1.0 unless the
    /// spectrum is all-zero).
    pub fn cumulative_fraction(&self) -> Vec<f64> {
        let total = self.total_power();
        if total <= 0.0 {
            return vec![0.0; self.power.len()];
        }
        let mut acc = 0.0;
        self.power
            .iter()
            .map(|&p| {
                acc += p;
                acc / total
            })
            .collect()
    }

    /// The `count` strongest bins as `(frequency_hz, power)`, descending by
    /// power. Useful for tone detection in the aliasing experiments.
    pub fn peak_bins(&self, count: usize) -> Vec<(f64, f64)> {
        let mut indexed: Vec<(usize, f64)> =
            self.power.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        indexed
            .into_iter()
            .take(count)
            .map(|(k, p)| (self.frequency_of_bin(k), p))
            .collect()
    }

    /// The `count` strongest *distinct* peaks as `(frequency_hz, power)`:
    /// greedy selection of the strongest bins with at least
    /// `min_separation_hz` between chosen peaks, so one smeared lobe cannot
    /// occupy several slots.
    pub fn peak_frequencies(&self, count: usize, min_separation_hz: f64) -> Vec<(f64, f64)> {
        let mut indexed: Vec<(usize, f64)> =
            self.power.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut chosen: Vec<(f64, f64)> = Vec::with_capacity(count);
        for (k, p) in indexed {
            let f = self.frequency_of_bin(k);
            if chosen
                .iter()
                .all(|&(cf, _)| (cf - f).abs() >= min_separation_hz)
            {
                chosen.push((f, p));
                if chosen.len() == count {
                    break;
                }
            }
        }
        chosen
    }

    /// Total power in the closed frequency band `[f_lo, f_hi]` (Hz).
    pub fn power_in_band(&self, f_lo: f64, f_hi: f64) -> f64 {
        self.power
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = self.frequency_of_bin(*k);
                f >= f_lo && f <= f_hi
            })
            .map(|(_, &p)| p)
            .sum()
    }
}

/// Result of an energy-capture query (§3.2 steps (b)/(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnergyCapture {
    /// The target fraction is reached at `frequency` Hz before the last bin.
    Captured {
        /// Smallest bin frequency capturing the requested energy fraction.
        frequency: f64,
    },
    /// Every bin (including the last) was needed — the trace is likely
    /// already aliased; the paper records −1 in this case.
    AllBinsNeeded,
}

impl EnergyCapture {
    /// The captured frequency, or `None` for [`EnergyCapture::AllBinsNeeded`].
    pub fn frequency(self) -> Option<f64> {
        match self {
            EnergyCapture::Captured { frequency } => Some(frequency),
            EnergyCapture::AllBinsNeeded => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum(power: Vec<f64>, fs: f64, n: usize) -> Spectrum {
        Spectrum::from_psd(power, fs, n)
    }

    #[test]
    fn bin_to_frequency_mapping() {
        let s = spectrum(vec![0.0; 5], 8.0, 8); // bins at 0,1,2,3,4 Hz
        assert_eq!(s.resolution(), 1.0);
        assert_eq!(s.frequency_of_bin(3), 3.0);
        assert_eq!(s.folding_frequency(), 4.0);
        assert_eq!(s.bin_count(), 5);
    }

    #[test]
    fn odd_length_bin_count() {
        let s = spectrum(vec![0.0; 4], 7.0, 7);
        assert_eq!(s.bin_count(), 4);
        assert!((s.frequency_of_bin(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn wrong_bin_count_panics() {
        spectrum(vec![0.0; 4], 8.0, 8);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        spectrum(vec![1.0, -0.5, 0.0, 0.0, 0.0], 8.0, 8);
    }

    #[test]
    fn energy_capture_simple() {
        // 90% of energy at DC, 10% at bin 2.
        let s = spectrum(vec![9.0, 0.0, 1.0, 0.0, 0.0], 10.0, 8);
        match s.frequency_capturing_energy(0.9) {
            EnergyCapture::Captured { frequency } => assert_eq!(frequency, 0.0),
            other => panic!("{other:?}"),
        }
        match s.frequency_capturing_energy(0.99) {
            EnergyCapture::Captured { frequency } => {
                assert!((frequency - 2.0 * 10.0 / 8.0).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn energy_capture_all_bins_needed() {
        // Energy spread to the very last bin → aliased indicator.
        let s = spectrum(vec![1.0, 1.0, 1.0, 1.0, 1.0], 10.0, 8);
        assert_eq!(s.frequency_capturing_energy(0.99), EnergyCapture::AllBinsNeeded);
        assert_eq!(s.frequency_capturing_energy(0.99).frequency(), None);
    }

    #[test]
    fn energy_capture_zero_spectrum_is_dc() {
        let s = spectrum(vec![0.0; 5], 10.0, 8);
        assert_eq!(
            s.frequency_capturing_energy(0.99),
            EnergyCapture::Captured { frequency: 0.0 }
        );
    }

    #[test]
    fn energy_capture_fraction_one_on_compact_spectrum() {
        // All energy in the first two bins: fraction 1.0 must not claim
        // AllBinsNeeded.
        let s = spectrum(vec![1.0, 3.0, 0.0, 0.0, 0.0], 10.0, 8);
        match s.frequency_capturing_energy(1.0) {
            EnergyCapture::Captured { frequency } => {
                assert!((frequency - 10.0 / 8.0).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cumulative_fraction_monotone_and_normalized() {
        let s = spectrum(vec![1.0, 2.0, 3.0, 4.0, 0.0], 10.0, 8);
        let c = s.cumulative_fraction();
        for w in c.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((c.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_bins_sorted_by_power() {
        let s = spectrum(vec![0.5, 4.0, 1.0, 3.0, 0.0], 10.0, 8);
        let peaks = s.peak_bins(2);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].0 - 1.0 * 10.0 / 8.0).abs() < 1e-12);
        assert_eq!(peaks[0].1, 4.0);
        assert_eq!(peaks[1].1, 3.0);
    }

    #[test]
    fn peak_frequencies_respect_separation() {
        // Bins 1 and 2 are a single smeared lobe; bin 4 is a second peak.
        let s = spectrum(vec![0.0, 5.0, 4.0, 0.1, 3.0], 8.0, 8);
        let peaks = s.peak_frequencies(2, 1.5);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].0, 1.0); // strongest bin (1 Hz)
        assert_eq!(peaks[1].0, 4.0); // bin 2 skipped (too close), bin 4 chosen
    }

    #[test]
    fn power_in_band_inclusive() {
        let s = spectrum(vec![1.0, 2.0, 4.0, 8.0, 16.0], 8.0, 8);
        assert_eq!(s.power_in_band(1.0, 3.0), 2.0 + 4.0 + 8.0);
        assert_eq!(s.power_in_band(0.0, 4.0), s.total_power());
        assert_eq!(s.power_in_band(5.0, 9.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        spectrum(vec![0.0; 5], 8.0, 8).frequency_capturing_energy(0.0);
    }
}
