//! Contiguous typed arenas with byte-level footprint accounting.
//!
//! The fleet simulator's memory wall (ISSUE 6) was scattered ownership:
//! 10⁵ member records, each a separate heap object dragging its own working
//! buffers, cost ~46 GB where the durable state is a few hundred bytes per
//! member. The cure has two halves — per-worker scratch (see
//! `monitor::poller::EpochScratch`) for the transient buffers, and *this
//! crate* for the durable half: shard-local arenas that keep every member
//! record in one contiguous block addressed by index handles.
//!
//! Two allocators cover the two durable shapes:
//!
//! * [`Slab<T>`] — a typed, append-only record store. `push` returns a
//!   [`Handle<T>`] (a `u32` index branded with the element type); records
//!   never move or drop until the slab does, so handles stay valid for the
//!   slab's lifetime. Epoch loops iterate it like a slice — one cache
//!   stream, no pointer chasing.
//! * [`BumpArena<T>`] — a typed bump allocator for small fixed-length
//!   buffers (per-member accumulators, requirement tables). `alloc` carves
//!   a [`Span`] out of one growing block; spans are dereferenced to slices
//!   on demand.
//!
//! Both report [`resident_bytes`](Slab::resident_bytes) (capacity, not
//! length — what the process actually holds) and track a high-water mark so
//! tests can pin "per-member bytes stay flat as the fleet scales"
//! (`crates/analysis/tests/alloc_steady_state.rs`).

use std::fmt;
use std::marker::PhantomData;

/// Index-based handle into a [`Slab<T>`]: 4 bytes instead of a pointer,
/// branded with the element type so a handle from a `Slab<A>` cannot be
/// used on a `Slab<B>` by accident. (Handles from *different slabs of the
/// same type* are not distinguished — keep one slab per role, as the fleet
/// shards do.)
pub struct Handle<T> {
    index: u32,
    _brand: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// The raw slab index.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

// Manual impls: `derive` would bound them on `T: Clone` etc., but a handle
// is plain data regardless of what it points at.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<T> Eq for Handle<T> {}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({})", self.index)
    }
}

/// A typed, append-only arena of records in one contiguous allocation.
///
/// Records are addressed by [`Handle<T>`] and never move (logically — the
/// backing storage may reallocate while growing, which is why handles are
/// indices, not pointers). There is no per-record free: fleet shards build
/// once and run for the whole simulation, so the only teardown is dropping
/// the slab.
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    items: Vec<T>,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { items: Vec::new() }
    }

    /// An empty slab with room for `capacity` records (one allocation up
    /// front instead of doubling growth).
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Appends a record, returning its handle.
    ///
    /// # Panics
    /// Panics past `u32::MAX` records (a 4-billion-member shard is beyond
    /// any fleet this simulates).
    pub fn push(&mut self, value: T) -> Handle<T> {
        let index = u32::try_from(self.items.len()).expect("slab overflow: > u32::MAX records");
        self.items.push(value);
        Handle {
            index,
            _brand: PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The record behind `handle`.
    pub fn get(&self, handle: Handle<T>) -> &T {
        &self.items[handle.index()]
    }

    /// Mutable access to the record behind `handle`.
    pub fn get_mut(&mut self, handle: Handle<T>) -> &mut T {
        &mut self.items[handle.index()]
    }

    /// All handles, in insertion order.
    pub fn handles(&self) -> impl Iterator<Item = Handle<T>> + '_ {
        (0..self.items.len() as u32).map(|index| Handle {
            index,
            _brand: PhantomData,
        })
    }

    /// Iterates records in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Mutably iterates records in insertion order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.items.iter_mut()
    }

    /// The records as one contiguous slice (insertion order).
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Bytes of record storage the slab holds (capacity, not length).
    /// Heap owned *inside* records is the records' business — see
    /// `FleetMember::resident_bytes` for the composed figure.
    pub fn resident_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<T>()
    }
}

impl<'a, T> IntoIterator for &'a Slab<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut Slab<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter_mut()
    }
}

/// A fixed-length slice carved from a [`BumpArena<T>`]. Plain data — copy
/// it freely, it stays valid as long as the arena lives (the arena never
/// frees individual spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    /// Elements in the span.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// `true` for a zero-length span.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A typed bump allocator: many small fixed-length buffers packed into one
/// growing block, addressed by [`Span`]. No per-span free — drop the whole
/// arena (or [`reset`](BumpArena::reset) it) when the run ends.
#[derive(Debug, Clone, Default)]
pub struct BumpArena<T> {
    data: Vec<T>,
}

impl<T> BumpArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        BumpArena { data: Vec::new() }
    }

    /// An empty arena pre-sized for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        BumpArena {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bump-allocates `len` elements initialized to `value`.
    ///
    /// # Panics
    /// Panics past `u32::MAX` total elements.
    pub fn alloc_fill(&mut self, value: T, len: usize) -> Span
    where
        T: Clone,
    {
        self.alloc_from_iter(std::iter::repeat_n(value, len))
    }

    /// Bump-allocates a copy of `values`.
    pub fn alloc_slice(&mut self, values: &[T]) -> Span
    where
        T: Clone,
    {
        self.alloc_from_iter(values.iter().cloned())
    }

    /// Bump-allocates whatever `iter` yields, as one span.
    pub fn alloc_from_iter(&mut self, iter: impl IntoIterator<Item = T>) -> Span {
        let start = self.data.len();
        self.data.extend(iter);
        let len = self.data.len() - start;
        Span {
            start: u32::try_from(start).expect("bump arena overflow: > u32::MAX elements"),
            len: u32::try_from(len).expect("bump arena overflow: span > u32::MAX elements"),
        }
    }

    /// The slice behind `span`.
    pub fn get(&self, span: Span) -> &[T] {
        &self.data[span.start as usize..span.start as usize + span.len as usize]
    }

    /// Mutable access to the slice behind `span`.
    pub fn get_mut(&mut self, span: Span) -> &mut [T] {
        &mut self.data[span.start as usize..span.start as usize + span.len as usize]
    }

    /// Two disjoint spans, both mutable (e.g. an accumulator updated from a
    /// requirement table in the same arena).
    ///
    /// # Panics
    /// Panics if the spans overlap.
    pub fn get_pair_mut(&mut self, a: Span, b: Span) -> (&mut [T], &mut [T]) {
        let (lo, hi, swap) = if a.start <= b.start {
            (a, b, false)
        } else {
            (b, a, true)
        };
        assert!(
            lo.start + lo.len <= hi.start,
            "spans overlap: {lo:?} vs {hi:?}"
        );
        let (head, tail) = self.data.split_at_mut(hi.start as usize);
        let first = &mut head[lo.start as usize..lo.start as usize + lo.len as usize];
        let second = &mut tail[..hi.len as usize];
        if swap {
            (second, first)
        } else {
            (first, second)
        }
    }

    /// Total elements allocated.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Forgets every span but keeps the block for reuse. All outstanding
    /// spans become logically dangling — only call between runs.
    pub fn reset(&mut self) {
        self.data.clear();
    }

    /// Bytes the arena's block holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_pushes_and_resolves_handles() {
        let mut slab = Slab::new();
        let a = slab.push("alpha");
        let b = slab.push("beta");
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get(a), "alpha");
        assert_eq!(*slab.get(b), "beta");
        *slab.get_mut(a) = "gamma";
        assert_eq!(*slab.get(a), "gamma");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn slab_handles_iterate_in_insertion_order() {
        let mut slab = Slab::new();
        for i in 0..10 {
            slab.push(i * i);
        }
        let via_handles: Vec<i32> = slab.handles().map(|h| *slab.get(h)).collect();
        let via_iter: Vec<i32> = slab.iter().copied().collect();
        assert_eq!(via_handles, via_iter);
        assert_eq!(via_handles[7], 49);
        assert_eq!(slab.as_slice().len(), 10);
    }

    #[test]
    fn slab_records_are_contiguous() {
        let mut slab = Slab::with_capacity(4);
        slab.push(1u64);
        slab.push(2u64);
        slab.push(3u64);
        let s = slab.as_slice();
        // Contiguity is the point of the slab: adjacent records are exactly
        // one stride apart.
        let stride = std::mem::size_of::<u64>();
        let base = s.as_ptr() as usize;
        assert_eq!(&s[1] as *const u64 as usize, base + stride);
        assert_eq!(&s[2] as *const u64 as usize, base + 2 * stride);
    }

    #[test]
    fn slab_resident_bytes_tracks_capacity() {
        let slab: Slab<u64> = Slab::with_capacity(100);
        assert_eq!(slab.resident_bytes(), 100 * 8);
        let empty: Slab<u64> = Slab::new();
        assert_eq!(empty.resident_bytes(), 0);
    }

    #[test]
    fn bump_allocates_disjoint_spans() {
        let mut arena = BumpArena::new();
        let a = arena.alloc_fill(0.0f64, 3);
        let b = arena.alloc_slice(&[1.0, 2.0]);
        assert_eq!(arena.get(a), &[0.0, 0.0, 0.0]);
        assert_eq!(arena.get(b), &[1.0, 2.0]);
        arena.get_mut(a)[1] = 9.0;
        assert_eq!(arena.get(a), &[0.0, 9.0, 0.0]);
        // `a`'s write never bleeds into `b`.
        assert_eq!(arena.get(b), &[1.0, 2.0]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn bump_pair_mut_borrows_both_orders() {
        let mut arena = BumpArena::new();
        let a = arena.alloc_fill(1.0f64, 2);
        let b = arena.alloc_fill(2.0f64, 2);
        {
            let (sa, sb) = arena.get_pair_mut(a, b);
            sa[0] += sb[0];
        }
        {
            let (sb, sa) = arena.get_pair_mut(b, a);
            sb[1] += sa[1];
        }
        assert_eq!(arena.get(a), &[3.0, 1.0]);
        assert_eq!(arena.get(b), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bump_pair_mut_rejects_overlap() {
        let mut arena = BumpArena::new();
        let a = arena.alloc_fill(0u8, 4);
        let mut arena2 = BumpArena::new();
        let _ = arena2.alloc_fill(0u8, 4);
        // Fabricate an overlapping pair by reusing the same span twice.
        let _ = arena.get_pair_mut(a, a);
    }

    #[test]
    fn bump_reset_keeps_capacity() {
        let mut arena = BumpArena::new();
        arena.alloc_fill(7u32, 1000);
        let bytes = arena.resident_bytes();
        assert!(bytes >= 4000);
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.resident_bytes(), bytes, "reset must keep the block");
    }
}
