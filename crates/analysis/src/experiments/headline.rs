//! **Headline statistics** (§3.2 text) — "In total, we studied 1613 metric
//! and device pairs (14 distinct metrics). Of these, 89% were sampling at
//! higher than their Nyquist rate. … in 20% of the examples the sampling
//! rate can be reduced by a factor of 1000×. … the existing sampling rate is
//! below the Nyquist rate … in about 11% of the metric-device pairs. …
//! for the temperature signal, the Nyquist rate ranges from 7.99×10⁻⁷ Hz to
//! 0.003 Hz across the monitored devices."

use crate::study::{FleetStudy, StudyConfig};
use sweetspot_core::reduction::ReductionSummary;
use sweetspot_telemetry::MetricKind;

/// The §3.2 headline numbers, paper vs measured.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Fleet-wide reduction summary.
    pub summary: ReductionSummary,
    /// Temperature Nyquist-rate range `(min, max)` in Hz.
    pub temperature_range: Option<(f64, f64)>,
}

/// Runs the headline experiment.
pub fn run(cfg: StudyConfig) -> Headline {
    from_study(&FleetStudy::run(cfg))
}

/// Computes headline numbers from an existing study.
pub fn from_study(study: &FleetStudy) -> Headline {
    let temperature_range = study
        .nyquist_five_number(MetricKind::Temperature)
        .map(|f| (f.min, f.max));
    Headline {
        summary: study.summary(),
        temperature_range,
    }
}

impl Headline {
    /// Text rendering with the paper's numbers alongside.
    pub fn render(&self) -> String {
        let s = &self.summary;
        let mut out = String::from("Headline statistics (paper §3.2 vs measured)\n");
        out.push_str(&format!(
            "  metric-device pairs      : {:>6}        (paper: 1613)\n",
            s.pairs
        ));
        out.push_str(&format!(
            "  over-sampled today       : {:>5.1}%        (paper: 89%)\n",
            s.oversampled_fraction * 100.0
        ));
        out.push_str(&format!(
            "  under-sampled today      : {:>5.1}%        (paper: 11%)\n",
            s.undersampled_fraction * 100.0
        ));
        out.push_str(&format!(
            "  reducible ≥10×           : {:>5.1}%\n",
            s.reducible_10x * 100.0
        ));
        out.push_str(&format!(
            "  reducible ≥100×          : {:>5.1}%\n",
            s.reducible_100x * 100.0
        ));
        out.push_str(&format!(
            "  reducible ≥1000×         : {:>5.1}%        (paper: ~20%)\n",
            s.reducible_1000x * 100.0
        ));
        if let Some((lo, hi)) = self.temperature_range {
            out.push_str(&format!(
                "  temperature Nyquist range: {lo:.2e} .. {hi:.2e} Hz (paper: 7.99e-7 .. 3e-3)\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::FleetConfig;
    use sweetspot_timeseries::Seconds;

    #[test]
    fn headline_shape_tracks_paper() {
        let h = run(StudyConfig {
            fleet: FleetConfig {
                seed: 4,
                devices_per_metric: 12,
                trace_duration: Seconds::from_days(1.0),
            },
            ..StudyConfig::default()
        });
        let s = &h.summary;
        assert_eq!(s.pairs, 14 * 12);
        // Shape targets (DESIGN.md §4): most pairs over-sampled, a visible
        // minority under-sampled, a sizeable tail of ≥1000× reductions.
        assert!(
            (0.7..=0.97).contains(&s.oversampled_fraction),
            "oversampled {}",
            s.oversampled_fraction
        );
        assert!(
            s.undersampled_fraction > 0.03,
            "undersampled {}",
            s.undersampled_fraction
        );
        assert!(
            s.reducible_1000x > 0.02,
            "1000x tail {}",
            s.reducible_1000x
        );
        assert!(s.reducible_10x >= s.reducible_100x);
        assert!(s.reducible_100x >= s.reducible_1000x);
        let (lo, hi) = h.temperature_range.expect("temperature estimated");
        assert!(lo < hi);
        assert!(h.render().contains("paper: 1613"));
    }
}
