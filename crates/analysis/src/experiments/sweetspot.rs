//! **The title experiment** — the cost-vs-quality sweet spot.
//!
//! The paper argues (§1, §4) that Nyquist-guided sampling reaches today's
//! monitoring quality at a fraction of the cost. This driver makes the
//! trade-off concrete on the simulator: sweep fixed-rate policies across
//! multipliers of the production rate to trace the cost-vs-quality
//! frontier, then place the §4 policies (a-posteriori thinning, §4.2
//! adaptive) on the same axes and find the knee.

use sweetspot_core::adaptive::AdaptiveConfig;
use sweetspot_monitor::device::SimDevice;
use sweetspot_monitor::sweep::{knee_point, rate_sweep, SweepPoint};
use sweetspot_monitor::system::{MonitoringSystem, Policy};
use sweetspot_telemetry::events::{Event, EventKind};
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{Hertz, Seconds};

/// A labelled point on the cost-vs-quality plane.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Display label.
    pub label: String,
    /// Total cost units.
    pub cost: f64,
    /// Mean reconstruction NRMSE.
    pub nrmse: f64,
    /// Mean event recall.
    pub event_recall: f64,
}

/// Sweet-spot experiment results.
#[derive(Debug, Clone)]
pub struct SweetSpot {
    /// The fixed-rate frontier.
    pub frontier: Vec<SweepPoint>,
    /// The knee of the frontier.
    pub knee: Option<SweepPoint>,
    /// The §4 policies placed on the same axes.
    pub policies: Vec<PolicyPoint>,
}

/// Builds the experiment fleet: temperature + link-utilization devices with
/// a few injected events so the recall axis is meaningful.
pub fn build_devices(seed: u64, per_metric: usize) -> Vec<SimDevice> {
    let mut devices = Vec::new();
    for kind in [MetricKind::Temperature, MetricKind::LinkUtil] {
        let profile = MetricProfile::for_kind(kind);
        for idx in 0..per_metric {
            let trace = DeviceTrace::synthesize(profile, idx, seed);
            // Two mid-run events per device: a 20-minute spike and a
            // 30-minute level shift.
            let magnitude = profile.half_range() * 0.5;
            let trace = trace.with_events(vec![
                Event::new(EventKind::Spike, 40_000.0 + idx as f64 * 971.0, 1200.0, magnitude),
                Event::new(
                    EventKind::LevelShift,
                    110_000.0 + idx as f64 * 1771.0,
                    1800.0,
                    magnitude,
                ),
            ]);
            devices.push(SimDevice::new(trace));
        }
    }
    devices
}

/// Runs the sweet-spot experiment.
pub fn run(seed: u64, per_metric: usize, days: f64, multipliers: &[f64]) -> SweetSpot {
    let system = MonitoringSystem::default();
    let duration = Seconds::from_days(days);

    let mut devices = build_devices(seed, per_metric);
    let frontier = rate_sweep(&system, &mut devices, multipliers, duration);
    let knee = knee_point(&frontier).copied();

    let mut policies = Vec::new();
    for (label, policy) in [
        (
            "posteriori-nyquist",
            Policy::PosterioriNyquist { headroom: 1.25 },
        ),
        (
            "adaptive-§4.2",
            Policy::Adaptive(AdaptiveConfig {
                initial_rate: Hertz(1.0 / 300.0),
                min_rate: Hertz(1e-6),
                max_rate: Hertz(1.0),
                epoch: Seconds::from_hours(12.0),
                ..AdaptiveConfig::default()
            }),
        ),
    ] {
        let outcome = system.run_fleet(&mut devices, &policy, duration);
        policies.push(PolicyPoint {
            label: label.to_string(),
            cost: outcome.cost.total(),
            nrmse: outcome.mean_nrmse,
            event_recall: outcome.mean_event_recall,
        });
    }

    SweetSpot {
        frontier,
        knee,
        policies,
    }
}

impl SweetSpot {
    /// Text rendering: the frontier table plus the policy points.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Sweet spot: cost vs quality (fixed-rate frontier + §4 policies)\n",
        );
        let mut rows: Vec<Vec<String>> = self
            .frontier
            .iter()
            .map(|p| {
                vec![
                    format!("fixed {:.2}x", p.rate_multiplier),
                    format!("{:.0}", p.cost),
                    format!("{:.4}", p.nrmse),
                    format!("{:.2}", p.event_recall),
                ]
            })
            .collect();
        for p in &self.policies {
            rows.push(vec![
                p.label.clone(),
                format!("{:.0}", p.cost),
                format!("{:.4}", p.nrmse),
                format!("{:.2}", p.event_recall),
            ]);
        }
        out.push_str(&crate::report::table(
            &["policy", "cost", "NRMSE", "event recall"],
            &rows,
        ));
        if let Some(k) = &self.knee {
            out.push_str(&format!(
                "knee of the frontier: {:.2}x production rate (cost {:.0}, NRMSE {:.4})\n",
                k.rate_multiplier, k.cost, k.nrmse
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_monotone_and_policies_beat_production() {
        let result = run(11, 2, 2.0, &[0.05, 0.25, 1.0]);
        assert_eq!(result.frontier.len(), 3);
        // Cost strictly increases along the frontier.
        for w in result.frontier.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
        // The production point (1.0×): full cost. The §4 a-posteriori
        // policy must dominate it on total cost at comparable quality.
        let production = result.frontier.last().unwrap();
        let posteriori = &result.policies[0];
        assert!(
            posteriori.cost < production.cost,
            "posteriori {} vs production {}",
            posteriori.cost,
            production.cost
        );
        assert!(
            posteriori.nrmse < production.nrmse * 3.0 + 0.05,
            "posteriori quality comparable: {} vs {}",
            posteriori.nrmse,
            production.nrmse
        );
        assert!(result.knee.is_some());
        assert!(result.render().contains("knee"));
    }
}
