//! **Figure 1** — "The fraction of devices (collection points) at which our
//! production data center currently measures various metrics above the
//! Nyquist rate; each bar coalesces information from O(10³) devices."

use crate::report::bar_chart;
use crate::study::{FleetStudy, StudyConfig};
use sweetspot_telemetry::MetricKind;

/// Figure 1 data: per-metric fraction of devices sampling above Nyquist.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// `(metric, fraction_above_nyquist)` rows in [`MetricKind::ALL`] order.
    pub rows: Vec<(MetricKind, f64)>,
    /// Total metric-device pairs analyzed. (Per-metric counts can differ —
    /// the paper-scale population gives three metrics one extra device — so
    /// the caption reports the exact total rather than a per-metric count.)
    pub pairs_total: usize,
}

/// Runs the Figure 1 experiment.
pub fn run(cfg: StudyConfig) -> Fig1 {
    from_study(&FleetStudy::run(cfg))
}

/// Runs Figure 1 on an existing study (to share work with fig4/fig5).
pub fn from_study(study: &FleetStudy) -> Fig1 {
    Fig1 {
        rows: study.oversampled_fraction_per_metric(),
        pairs_total: study.pairs.len(),
    }
}

impl Fig1 {
    /// Text rendering of the bar chart.
    pub fn render(&self) -> String {
        let rows: Vec<(String, f64)> = self
            .rows
            .iter()
            .map(|(k, f)| (k.name().to_string(), *f))
            .collect();
        bar_chart(
            &format!(
                "Figure 1: fraction of devices sampling above the Nyquist rate \
                 ({} metric-device pairs)",
                self.pairs_total
            ),
            &rows,
            40,
        )
    }

    /// Fleet-wide mean of the per-metric fractions.
    pub fn mean_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|(_, f)| f).sum::<f64>() / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::FleetConfig;
    use sweetspot_timeseries::Seconds;

    #[test]
    fn fig1_shape_matches_paper() {
        let fig = run(StudyConfig {
            fleet: FleetConfig {
                seed: 1,
                devices_per_metric: 5,
                trace_duration: Seconds::from_days(1.0),
            },
            ..StudyConfig::default()
        });
        assert_eq!(fig.rows.len(), 14);
        // The paper's headline: the vast majority of collection points are
        // above the Nyquist rate for most metrics.
        assert!(fig.mean_fraction() > 0.6, "mean {}", fig.mean_fraction());
        let rendered = fig.render();
        assert!(rendered.contains("Figure 1"));
        assert!(rendered.contains("Temperature"));
    }
}
