//! **Figure 7** — "The inferred Nyquist rates over time for the signal
//! depicted in Figure 6. The timestamps mark the beginning of the moving
//! window. We use a step of 5 minutes for the moving window and a window
//! size of 6 hours."

use crate::experiments::fig6::evented_device;
use sweetspot_core::tracker::{summarize, track, TrackSummary, TrackedPoint, TrackerConfig};
use sweetspot_timeseries::{Hertz, Seconds};

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Device identity used (same selection rule as Figure 6).
    pub device: String,
    /// The tracked series: one point per window start.
    pub points: Vec<TrackedPoint>,
    /// Aggregate over the run.
    pub summary: TrackSummary,
    /// The device's true Nyquist rate (known from the generator).
    pub true_rate: Hertz,
}

/// Runs the Figure 7 experiment over `days` of 5-minute temperature data
/// (the same evented device as Figure 6 — "the signal depicted in Figure 6").
pub fn run(seed: u64, days: f64) -> Fig7 {
    let dev = evented_device(seed);
    let rate = Hertz(1.0 / 300.0);
    let series = dev.ground_truth(rate, Seconds::from_days(days));
    let points = track(&series, TrackerConfig::paper_fig7());
    Fig7 {
        device: dev.meta().to_string(),
        summary: summarize(&points),
        points,
        true_rate: dev.true_nyquist_rate(),
    }
}

impl Fig7 {
    /// Text rendering: a sparkline of inferred rate over time.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 7: inferred Nyquist rate over time ({}; 6h window, 5min step)\n",
            self.device
        );
        let rates: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.estimate.rate().map_or(f64::NAN, |r| r.value()))
            .collect();
        let max = rates.iter().copied().filter(|r| r.is_finite()).fold(0.0, f64::max);
        // Downsample the timeline to ~72 columns for display.
        let cols = 72.min(rates.len());
        let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let mut line = String::from("  ");
        for c in 0..cols {
            let idx = c * rates.len() / cols;
            let r = rates[idx];
            let g = if r.is_nan() || max <= 0.0 {
                '?'
            } else {
                glyphs[((r / max) * 8.0).round().clamp(0.0, 8.0) as usize]
            };
            line.push(g);
        }
        out.push_str(&line);
        out.push('\n');
        out.push_str(&format!(
            "  windows={}  min={}  mean={}  max={}  aliased={}  (true rate {})\n",
            self.summary.total_windows,
            fmt_rate(self.summary.min_rate),
            fmt_rate(self.summary.mean_rate),
            fmt_rate(self.summary.max_rate),
            self.summary.aliased_windows,
            self.true_rate,
        ));
        out
    }
}

fn fmt_rate(r: Option<Hertz>) -> String {
    r.map_or("n/a".into(), |r| r.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_tracks_the_paper_geometry() {
        let fig = run(0xF17, 3.0);
        // 3 days at 5-min steps with 6-h windows: (3·288 − 72 + 1) windows.
        assert_eq!(fig.points.len(), 3 * 288 - 72 + 1);
        // Window starts step by 5 minutes.
        let d = fig.points[1].window_start.value() - fig.points[0].window_start.value();
        assert!((d - 300.0).abs() < 1e-9);
        // Inferred rates stay near/below the highest content present: the
        // stationary band edge or, during the flap episode, the flap's third
        // harmonic. The 6-hour window resolves only 72 samples, so the
        // estimate carries a slack of a few window-resolution bins (Hann
        // main lobe) on top.
        use crate::experiments::fig6::FLAP_FREQ;
        let resolution = (1.0 / 300.0) / 72.0;
        let content_rate = fig.true_rate.value().max(2.0 * 3.0 * FLAP_FREQ);
        let max = fig.summary.max_rate.expect("some window estimates");
        assert!(
            max.value() <= content_rate + 12.0 * resolution,
            "max {} vs content {} (+slack)",
            max,
            content_rate
        );
        assert!(
            max.value() >= fig.true_rate.value() * 0.05,
            "max {} vs true {}",
            max,
            fig.true_rate
        );
        assert!(fig.render().contains("Figure 7"));
    }

    #[test]
    fn rate_varies_across_windows() {
        // §3.2: "We also notice different Nyquist rate at different time
        // periods on the same device."
        let fig = run(0xF17, 3.0);
        let (min, max) = (
            fig.summary.min_rate.unwrap().value(),
            fig.summary.max_rate.unwrap().value(),
        );
        assert!(max > min, "tracker should show time variation");
    }
}
