//! **Figure 3** — the paper's worked aliasing example: a superposition of
//! sine waves at **400 and 440 Hz**, sampled at **890 Hz** (above the
//! Nyquist rate), **800 Hz** (slightly below) and **600 Hz** (far below);
//! top row shows the sampled spectra, bottom row the reconstructions.
//!
//! This driver reproduces all eight panels numerically: for each variant it
//! reports the two strongest spectral peaks (where aliasing is visible) and
//! the time-domain reconstruction error against the original signal (where
//! distortion is visible).

use std::f64::consts::PI;
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::interp::Interp;
use sweetspot_dsp::psd::{periodogram, PsdConfig};
use sweetspot_dsp::stats;
use sweetspot_dsp::window::Window;

/// The paper's tone pair.
pub const TONES: [f64; 2] = [400.0, 440.0];
/// The paper's sampling-rate variants (panel b, c, d).
pub const VARIANT_RATES: [f64; 3] = [890.0, 800.0, 600.0];
/// The "original" high-rate signal (panels a/e) — representing continuous
/// time.
pub const BASE_RATE: f64 = 2000.0;

/// One sampled variant (one column of Figure 3).
#[derive(Debug, Clone)]
pub struct Fig3Variant {
    /// Sampling rate of this variant.
    pub sample_rate: f64,
    /// The two strongest spectral peaks `(hz, power)`, strongest first.
    pub peaks: Vec<(f64, f64)>,
    /// NRMSE of the sinc reconstruction against the original signal
    /// (interior 80%).
    pub reconstruction_nrmse: f64,
    /// Is this variant sampled below the signal's Nyquist rate (880 Hz)?
    pub below_nyquist: bool,
}

/// Figure 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The original signal's two strongest peaks.
    pub original_peaks: Vec<(f64, f64)>,
    /// One entry per sampled variant.
    pub variants: Vec<Fig3Variant>,
}

fn signal(t: f64) -> f64 {
    TONES.iter().map(|&f| (2.0 * PI * f * t).sin()).sum()
}

/// Runs the Figure 3 experiment over `duration` seconds of signal.
pub fn run(duration: f64) -> Fig3 {
    let mut planner = FftPlanner::new();
    let psd_cfg = PsdConfig {
        window: Window::Hann,
        detrend: false,
    };

    let n_base = (BASE_RATE * duration).round() as usize;
    let original: Vec<f64> = (0..n_base).map(|i| signal(i as f64 / BASE_RATE)).collect();
    let original_spec = periodogram(&mut planner, &original, BASE_RATE, psd_cfg);

    let variants = VARIANT_RATES
        .iter()
        .map(|&fs| {
            let n = (fs * duration).round() as usize;
            let sampled: Vec<f64> = (0..n).map(|i| signal(i as f64 / fs)).collect();
            let spec = periodogram(&mut planner, &sampled, fs, psd_cfg);
            // Reconstruct ("upsampled", panels f–h) on the base grid and
            // compare with the original over the interior.
            let interp = Interp::Sinc {
                half_width: Some(96),
            };
            let margin = n_base / 10;
            let mut orig_int = Vec::with_capacity(n_base - 2 * margin);
            let mut recon_int = Vec::with_capacity(n_base - 2 * margin);
            for (k, &orig) in original.iter().enumerate().take(n_base - margin).skip(margin) {
                let t = k as f64 / BASE_RATE;
                orig_int.push(orig);
                recon_int.push(interp.at(&sampled, fs, t));
            }
            Fig3Variant {
                sample_rate: fs,
                peaks: spec.peak_frequencies(2, 15.0),
                reconstruction_nrmse: stats::nrmse(&orig_int, &recon_int),
                below_nyquist: fs < 2.0 * TONES[1],
            }
        })
        .collect();

    Fig3 {
        original_peaks: original_spec.peak_frequencies(2, 15.0),
        variants,
    }
}

impl Fig3 {
    /// Text rendering of all eight panels' content.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 3: 400+440 Hz two-tone, sampled at 890/800/600 Hz\n",
        );
        out.push_str(&format!(
            "  original peaks: {:.1} Hz, {:.1} Hz\n",
            self.original_peaks[0].0, self.original_peaks[1].0
        ));
        let rows: Vec<Vec<String>> = self
            .variants
            .iter()
            .map(|v| {
                vec![
                    format!("{:.0}", v.sample_rate),
                    format!("{:.1}", v.peaks[0].0),
                    format!("{:.1}", v.peaks[1].0),
                    format!("{:.4}", v.reconstruction_nrmse),
                    if v.below_nyquist { "yes" } else { "no" }.into(),
                ]
            })
            .collect();
        out.push_str(&crate::report::table(
            &["fs (Hz)", "peak1 (Hz)", "peak2 (Hz)", "recon NRMSE", "below Nyquist?"],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_to_either(peak: f64, targets: &[f64], tol: f64) -> bool {
        targets.iter().any(|t| (peak - t).abs() <= tol)
    }

    #[test]
    fn panel_shapes_match_the_paper() {
        let fig = run(2.0);
        let tol = 2.0; // Hz; generous vs the 0.5 Hz resolution

        // Panel (a): original shows 400 and 440.
        assert!(close_to_either(fig.original_peaks[0].0, &TONES, tol));
        assert!(close_to_either(fig.original_peaks[1].0, &TONES, tol));

        // Panel (b): 890 Hz — above Nyquist, peaks in place, clean recon.
        let v890 = &fig.variants[0];
        assert!(!v890.below_nyquist);
        assert!(close_to_either(v890.peaks[0].0, &TONES, tol));
        assert!(close_to_either(v890.peaks[1].0, &TONES, tol));
        assert!(
            v890.reconstruction_nrmse < 0.05,
            "890 Hz NRMSE {}",
            v890.reconstruction_nrmse
        );

        // Panel (c): 800 Hz — 440 folds to 360. (The 400 Hz tone sits exactly
        // at the folding frequency and samples to ~zero at this phase, so
        // only the folded 360 Hz peak is constrained.)
        let v800 = &fig.variants[1];
        assert!(v800.below_nyquist);
        assert!(close_to_either(v800.peaks[0].0, &[360.0], tol));
        assert!(
            v800.reconstruction_nrmse > 5.0 * v890.reconstruction_nrmse,
            "800 Hz must be visibly distorted: {} vs {}",
            v800.reconstruction_nrmse,
            v890.reconstruction_nrmse
        );

        // Panel (d): 600 Hz — folds to 200 and 160; badly distorted.
        let v600 = &fig.variants[2];
        let folded_600 = [200.0, 160.0];
        assert!(close_to_either(v600.peaks[0].0, &folded_600, tol));
        assert!(close_to_either(v600.peaks[1].0, &folded_600, tol));
        assert!(v600.reconstruction_nrmse > v890.reconstruction_nrmse * 5.0);
    }

    #[test]
    fn render_contains_all_rates() {
        let fig = run(1.0);
        let s = fig.render();
        for rate in ["890", "800", "600"] {
            assert!(s.contains(rate), "missing {rate} in render");
        }
    }
}
