//! **Ablations** — the design choices DESIGN.md §6 calls out.
//!
//! * [`cutoff`] — the 99% energy threshold (§3.2 discusses 99.99%: "would
//!   increase our estimate of the Nyquist rate and reduce performance gains
//!   but … does not necessarily lead to a lower reconstruction error").
//! * [`detector_accuracy`] — dual-rate detector TPR/FPR (§4.1), including
//!   the integer-ratio failure mode the paper's footnote warns about.
//! * [`adaptive_memory`] — §4.2 memory on/off re-ramp cost.
//! * [`quantization`] — quanta sweep vs estimator and reconstruction (§4.3).

use sweetspot_core::adaptive::{AdaptiveConfig, AdaptiveSampler};
use sweetspot_core::aliasing::{companion_rate, detect_aliasing, DualRateConfig};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::reconstruct::{roundtrip, ReconstructionConfig};
use sweetspot_core::source::FunctionSource;
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::quantize::Quantizer;
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// One row of the cutoff ablation.
#[derive(Debug, Clone, Copy)]
pub struct CutoffRow {
    /// Energy cutoff used.
    pub cutoff: f64,
    /// Mean estimated Nyquist rate across devices (Hz).
    pub mean_rate: f64,
    /// Mean interior reconstruction NRMSE at that rate.
    pub mean_nrmse: f64,
}

/// A1: sweep the energy cutoff over temperature devices.
///
/// Runs on *measured* traces (white measurement noise + quantization), not
/// pristine ground truth: the cutoff's job is to discard the noise floor.
/// Expected shape: the estimated rate grows with the cutoff (tighter cutoffs
/// chase noise into higher bins) while the reconstruction error barely
/// improves — §3.2: a 99.99% threshold "would increase our estimate of the
/// Nyquist rate and reduce performance gains but … does not necessarily
/// lead to a lower reconstruction error since the delta that is being
/// captured is often just the noise".
pub fn cutoff(seed: u64, devices: usize, cutoffs: &[f64]) -> Vec<CutoffRow> {
    use sweetspot_timeseries::clean::{clean, CleanConfig};
    let profile = MetricProfile::for_kind(MetricKind::Temperature);
    let mut planner = FftPlanner::new();
    let mut rows = Vec::new();
    for &c in cutoffs {
        let mut est = NyquistEstimator::new(NyquistConfig {
            energy_cutoff: c,
            ..NyquistConfig::default()
        });
        let mut rates = Vec::new();
        let mut errors = Vec::new();
        let mut idx = 0usize;
        while rates.len() < devices && idx < devices * 20 {
            let dev = DeviceTrace::synthesize(profile, idx, seed);
            idx += 1;
            if dev.is_undersampled_at_production_rate()
                || dev.model().total_amplitude() < 10.0
            {
                continue;
            }
            let fs = Hertz(dev.true_nyquist_rate().value() * 8.0);
            let duration = Seconds(4096.0 / fs.value());
            let raw = dev.measured(fs, duration, 0xA1);
            let series = match clean(
                &raw,
                CleanConfig {
                    interval: Some(fs.period()),
                    outlier_mads: Some(8.0),
                },
            ) {
                Ok(s) => s,
                Err(_) => continue,
            };
            if let Some(rate) = est.estimate_series(&series).rate() {
                // Reconstruction error vs the *clean* ground truth: does the
                // extra captured "signal" actually buy fidelity? (Comparing
                // against the measured trace would reward keeping noise.)
                let (recon, _) = roundtrip(
                    &mut planner,
                    &series,
                    Hertz(rate.value() * 1.25),
                    ReconstructionConfig::default(),
                );
                let truth = dev.ground_truth(series.sample_rate(), duration);
                let n = recon.len().min(truth.len());
                let margin = n / 10;
                let err = sweetspot_dsp::stats::nrmse(
                    &truth.values()[margin..n - margin],
                    &recon.values()[margin..n - margin],
                );
                rates.push(rate.value());
                errors.push(err);
            }
        }
        rows.push(CutoffRow {
            cutoff: c,
            mean_rate: rates.iter().sum::<f64>() / rates.len().max(1) as f64,
            mean_nrmse: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
        });
    }
    rows
}

/// A2 result: detector confusion counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectorAccuracy {
    /// Aliased signals correctly flagged.
    pub true_positives: usize,
    /// Aliased signals missed.
    pub false_negatives: usize,
    /// Clean signals correctly passed.
    pub true_negatives: usize,
    /// Clean signals wrongly flagged.
    pub false_positives: usize,
}

impl DetectorAccuracy {
    /// True-positive rate.
    pub fn tpr(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            1.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        let n = self.true_negatives + self.false_positives;
        if n == 0 {
            0.0
        } else {
            self.false_positives as f64 / n as f64
        }
    }
}

/// A2: detector accuracy over tones straddling the secondary fold, with
/// noise.
pub fn detector_accuracy(cases_per_side: usize) -> DetectorAccuracy {
    let f1 = 1.0;
    let f2 = companion_rate(Hertz(f1)).value();
    let fold = f2 / 2.0; // ≈ 0.309
    let duration = 3000.0;
    let cfg = DualRateConfig::default();
    let mut acc = DetectorAccuracy::default();
    let mut lcg = 0x0123_4567_89AB_CDEFu64;
    let mut noise = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((lcg >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.02
    };
    for i in 0..cases_per_side {
        // Clean: tone safely below the fold. Aliased: tone above it (but
        // below f1/2 so only the slow stream aliases).
        let frac = (i as f64 + 0.5) / cases_per_side as f64;
        let clean_tone = fold * (0.1 + 0.6 * frac);
        let aliased_tone = fold * (1.2 + 0.3 * frac);
        for (tone, is_aliased) in [(clean_tone, false), (aliased_tone, true)] {
            let make = |rate: f64, n_off: &mut dyn FnMut() -> f64| {
                let n = (rate * duration).round() as usize;
                let values: Vec<f64> = (0..n)
                    .map(|k| {
                        let t = k as f64 / rate;
                        (2.0 * std::f64::consts::PI * tone * t).sin() + n_off()
                    })
                    .collect();
                RegularSeries::new(Seconds::ZERO, Seconds(1.0 / rate), values)
            };
            let fast = make(f1, &mut noise);
            let slow = make(f2, &mut noise);
            let verdict = detect_aliasing(&fast, &slow, cfg);
            match (is_aliased, verdict.aliased) {
                (true, true) => acc.true_positives += 1,
                (true, false) => acc.false_negatives += 1,
                (false, false) => acc.true_negatives += 1,
                (false, true) => acc.false_positives += 1,
            }
        }
    }
    acc
}

/// A3 result: probe epochs needed to clear aliasing after a recurrence.
#[derive(Debug, Clone, Copy)]
pub struct MemoryAblation {
    /// Aliased (probing) epochs during the second episode, with memory.
    pub with_memory: usize,
    /// Same without memory.
    pub without_memory: usize,
}

/// A3: two identical high-frequency episodes. The first must last long
/// enough for the multiplicative probe to clear aliasing and *record* the
/// required rate; memory then re-ramps to it directly when the episode
/// recurs, while the memory-less controller pays the full probe ladder
/// again.
pub fn adaptive_memory() -> MemoryAblation {
    const FLAP1: (f64, f64) = (50_000.0, 100_000.0);
    const FLAP2: (f64, f64) = (160_000.0, 210_000.0);
    let flappy = |t: f64| {
        let base = (2.0 * std::f64::consts::PI * 0.005 * t).sin();
        let flap = |(t0, t1): (f64, f64)| {
            if t >= t0 && t < t1 {
                0.9 * (2.0 * std::f64::consts::PI * 0.5 * t).sin()
            } else {
                0.0
            }
        };
        base + flap(FLAP1) + flap(FLAP2)
    };
    let run = |memory: bool| {
        let mut source = FunctionSource::new(flappy);
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(0.05),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(5000.0),
            memory,
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(250_000.0));
        reports
            .iter()
            .filter(|r| r.start.value() >= FLAP2.0 && r.start.value() < FLAP2.1)
            .filter(|r| r.aliased)
            .count()
    };
    MemoryAblation {
        with_memory: run(true),
        without_memory: run(false),
    }
}

/// A4 row: quantization step vs estimate and reconstruction error.
#[derive(Debug, Clone, Copy)]
pub struct QuantizationRow {
    /// Quantization step applied to the readout.
    pub step: f64,
    /// Estimated Nyquist rate from the quantized trace.
    pub estimated_rate: f64,
    /// Interior NRMSE of the reconstruction (with §4.3 re-quantization).
    pub interior_nrmse: f64,
}

/// A4: coarser quanta add broadband noise; the 99% threshold keeps the
/// estimate stable until the quanta rival the signal amplitude.
pub fn quantization(seed: u64, steps: &[f64]) -> Vec<QuantizationRow> {
    let dev = crate::experiments::fig6::pick_device(seed);
    let fs = Hertz(dev.true_nyquist_rate().value() * 8.0);
    let series = dev.ground_truth(fs, Seconds(4096.0 / fs.value()));
    let mut est = NyquistEstimator::new(NyquistConfig::default());
    let mut planner = FftPlanner::new();
    steps
        .iter()
        .map(|&step| {
            let q = Quantizer::new(step);
            let quantized = RegularSeries::new(
                series.start(),
                series.interval(),
                q.quantized(series.values()),
            );
            let rate = est
                .estimate_series(&quantized)
                .rate()
                .map_or(f64::NAN, |r| r.value());
            let target = if rate.is_nan() {
                dev.true_nyquist_rate()
            } else {
                Hertz(rate * 1.25)
            };
            let (_, report) = roundtrip(
                &mut planner,
                &quantized,
                target,
                ReconstructionConfig { requantize: Some(step) },
            );
            QuantizationRow {
                step,
                estimated_rate: rate,
                interior_nrmse: report.interior_nrmse,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_rate_grows_but_error_stays_flat() {
        let rows = cutoff(0xAB1, 4, &[0.99, 0.999, 0.9999]);
        assert_eq!(rows.len(), 3);
        // Rates are monotone in the cutoff.
        assert!(rows[0].mean_rate <= rows[1].mean_rate + 1e-12);
        assert!(rows[1].mean_rate <= rows[2].mean_rate + 1e-12);
        // Reconstruction at 99% is already good; tightening the cutoff buys
        // little (paper's argument for 99%).
        assert!(rows[0].mean_nrmse < 0.12, "99% NRMSE {}", rows[0].mean_nrmse);
        assert!(
            rows[2].mean_nrmse > rows[0].mean_nrmse - 0.1,
            "tighter cutoffs cannot be dramatically better"
        );
    }

    #[test]
    fn detector_is_accurate_on_both_sides() {
        let acc = detector_accuracy(8);
        assert!(acc.tpr() >= 0.85, "TPR {}", acc.tpr());
        assert!(acc.fpr() <= 0.15, "FPR {}", acc.fpr());
    }

    #[test]
    fn memory_accelerates_reramp() {
        let m = adaptive_memory();
        assert!(
            m.with_memory < m.without_memory,
            "memory {} vs none {}",
            m.with_memory,
            m.without_memory
        );
    }

    #[test]
    fn quantization_is_tolerated_until_quanta_rival_amplitude() {
        let rows = quantization(0xAB4, &[0.01, 1.0]);
        assert_eq!(rows.len(), 2);
        // Fine quanta: estimator finds a rate, reconstruction is tight.
        assert!(rows[0].estimated_rate.is_finite());
        assert!(rows[0].interior_nrmse < 0.05, "fine {}", rows[0].interior_nrmse);
        // Coarse quanta still produce a usable estimate (the 99% cutoff
        // discards quantization noise) with bounded error.
        assert!(rows[1].interior_nrmse < 0.5, "coarse {}", rows[1].interior_nrmse);
    }
}
