//! **Figure 6** — "Comparing an actual temperature signal in blue (sampled
//! every 5 minutes) with the signal in red that was downsampled to the
//! nyquist rate and then upsampled back again just for the purpose of
//! comparison. The L2 distance between these signals is 0."
//!
//! Pipeline: a temperature device polled every 5 minutes for a week; the
//! moving-window tracker (Figure 7's machinery) infers the Nyquist rate; the
//! trace is decimated to the inferred rate and reconstructed. The driver
//! reports the L2 distance for the unquantized path (the paper's
//! information-theoretic claim — exactly recoverable, L2 ≈ 0) and the
//! quantized path with §4.3 re-quantization (near-exact: residuals are lone
//! quantization-boundary flips).

use sweetspot_core::reconstruct::{roundtrip, ReconstructionConfig, ReconstructionReport};
use sweetspot_core::tracker::{track, TrackerConfig};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// Figure 6 data.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Device identity used.
    pub device: String,
    /// The inferred Nyquist rate used for downsampling (max over windows,
    /// with the §4.2 headroom).
    pub inferred_rate: Hertz,
    /// Decimation factor achieved (5-min polls → this much sparser).
    pub factor: usize,
    /// Roundtrip report on the *unquantized* signal (information-theoretic
    /// claim).
    pub ideal: ReconstructionReport,
    /// Roundtrip report on the quantized signal with re-quantization (§4.3).
    pub quantized: ReconstructionReport,
    /// Fraction of quantized samples recovered exactly.
    pub exact_fraction: f64,
}

/// Picks a temperature device that is well-sampled at production rate,
/// has a band edge the 6-hour tracker window can resolve, leaves room for a
/// real decimation factor below the 5-minute polling rate, and moves far
/// enough above its 1-unit quantization step that the quantization-noise
/// floor stays under the estimator's 1% energy budget (§4.3).
pub fn pick_device(seed: u64) -> DeviceTrace {
    let profile = MetricProfile::for_kind(MetricKind::Temperature);
    for idx in 0..200 {
        let dev = DeviceTrace::synthesize(profile, idx, seed);
        let edge = dev.true_band_edge().value();
        if !dev.is_undersampled_at_production_rate()
            && (5e-5..2.5e-4).contains(&edge)
            && dev.model().total_amplitude() >= 15.0
        {
            return dev;
        }
    }
    panic!("no suitable temperature device in 200 draws");
}

/// Flap oscillation frequency of the Figure 6/7 episode (Hz).
pub const FLAP_FREQ: f64 = 1.4e-4;
/// Flap onset (seconds from trace start).
pub const FLAP_START: f64 = 1.5 * 86_400.0;
/// Flap duration (seconds).
pub const FLAP_DURATION: f64 = 0.75 * 86_400.0;

/// The Figure 6/7 device: [`pick_device`] plus a mid-run link-flap episode
/// (1.5 days in, 18 hours long) that temporarily raises the signal's local
/// Nyquist rate — the non-stationarity Figure 7 visualizes and §4.2 adapts
/// to. The flap tone (softened square ⇒ content up to `3·FLAP_FREQ =
/// 4.2×10⁻⁴ Hz`) stays below the production folding frequency, so the
/// 5-minute trace still captures it.
pub fn evented_device(seed: u64) -> DeviceTrace {
    use sweetspot_telemetry::events::{Event, EventKind};
    let dev = pick_device(seed);
    // Modest magnitude: windows that only partially overlap the flap see a
    // gated oscillation whose spectral skirts spread ∝ magnitude²; keeping
    // the flap at 20% of the signal amplitude keeps those skirts inside the
    // estimator's 1% energy budget within a bin or two.
    let magnitude = dev.model().total_amplitude() * 0.2;
    dev.clone().with_events(vec![Event::new(
        EventKind::LinkFlap { flap_freq: FLAP_FREQ },
        FLAP_START,
        FLAP_DURATION,
        magnitude,
    )])
}

/// Runs the Figure 6 experiment over `days` of signal.
pub fn run(seed: u64, days: f64) -> Fig6 {
    let dev = evented_device(seed);
    let rate = Hertz(1.0 / 300.0); // the paper's 5-minute polling
    let duration = Seconds::from_days(days);
    let mut planner = FftPlanner::new();

    // Unquantized ground truth (the "actual signal" before sensor readout).
    let ideal_series = dev.ground_truth(rate, duration);
    // Quantized readout (what the sensor reports, at the profile's LSB).
    let quant = sweetspot_dsp::quantize::Quantizer::new(dev.profile().quant_step);
    let quant_values: Vec<f64> = ideal_series.values().iter().map(|v| quant.quantize(*v)).collect();
    let quant_series = RegularSeries::new(
        ideal_series.start(),
        ideal_series.interval(),
        quant_values,
    );

    // Infer the Nyquist rate with the §4.2/Figure 7 machinery on the
    // *quantized* trace. The robust statistic is the 95th percentile of the
    // window estimates, not the maximum: with ~2000 windows, the max rides
    // on the single worst quantization-noise excursion, while p95 still
    // covers any episode occupying ≥5% of the run (the 18-hour flap covers
    // ~11% of a week). Headroom ×1.25 on top, as in the controller.
    //
    // The window is 12 hours, not Figure 7's 6: it must (a) fit entirely
    // inside the 18-hour flap so some windows see the episode undiluted and
    // its harmonics clear the 1% energy budget, and (b) hold enough samples
    // (144 at 5-minute polls) that quantization noise spread across the bins
    // stays under that budget — 72-sample windows are noise-limited and
    // inflate the high percentiles toward the folding frequency.
    let tracked = track(
        &quant_series,
        TrackerConfig {
            window: Seconds::from_hours(12.0),
            ..TrackerConfig::paper_fig7()
        },
    );
    let rates: Vec<f64> = tracked
        .iter()
        .filter_map(|p| p.estimate.rate().map(|r| r.value()))
        .collect();
    let inferred = if rates.is_empty() {
        dev.true_nyquist_rate()
    } else {
        Hertz(sweetspot_dsp::stats::percentile(&rates, 95.0))
    };
    let target = Hertz(inferred.value() * 1.25);

    let (_, ideal) = roundtrip(&mut planner, &ideal_series, target, ReconstructionConfig::default());
    let (recon_q, quantized) = roundtrip(
        &mut planner,
        &quant_series,
        target,
        ReconstructionConfig { requantize: Some(dev.profile().quant_step) },
    );
    let n = recon_q.len();
    let exact = quant_series.values()[..n]
        .iter()
        .zip(recon_q.values())
        .filter(|(a, b)| (*a - *b).abs() < 1e-9)
        .count();

    Fig6 {
        device: dev.meta().to_string(),
        inferred_rate: inferred,
        factor: ideal.factor,
        ideal,
        quantized,
        exact_fraction: exact as f64 / n as f64,
    }
}

impl Fig6 {
    /// Text rendering.
    pub fn render(&self) -> String {
        format!(
            "Figure 6: temperature downsample-to-Nyquist → reconstruct ({})\n\
               inferred Nyquist rate : {}\n\
               decimation factor     : {}x fewer samples than 5-min polling\n\
               unquantized L2        : {:.3e}  (interior NRMSE {:.3e})  [paper: 0]\n\
               quantized+requant L2  : {:.3e}  (exact samples: {:.1}%)\n",
            self.device,
            self.inferred_rate,
            self.factor,
            self.ideal.l2,
            self.ideal.interior_nrmse,
            self.quantized.l2,
            self.exact_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reproduces_the_l2_zero_shape() {
        let fig = run(0xF16, 7.0);
        // Real reduction achieved.
        assert!(fig.factor >= 2, "factor {}", fig.factor);
        // Unquantized: (near-)perfect recovery — the paper's L2 = 0.
        assert!(
            fig.ideal.interior_nrmse < 0.02,
            "ideal interior NRMSE {}",
            fig.ideal.interior_nrmse
        );
        // Quantized with §4.3 re-quantization: the large majority of samples
        // recovered exactly. Residuals away from transitions are lone
        // quantization-boundary flips; the worst pointwise error sits at the
        // flap's gating edges (and the record boundary), where the step-like
        // transition concentrates content above the stored rate — a low-pass
        // reconstruction can overshoot a couple of extra 0.5-unit quanta
        // right there.
        assert!(
            fig.exact_fraction > 0.8,
            "exact fraction {}",
            fig.exact_fraction
        );
        assert!(fig.quantized.max_abs <= 1.5 + 1e-9, "max {}", fig.quantized.max_abs);
        assert!(fig.render().contains("Figure 6"));
    }
}
