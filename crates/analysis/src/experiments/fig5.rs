//! **Figure 5** — "A box plot of the Nyquist rate of each monitoring
//! system." Per metric, the distribution of estimated Nyquist rates across
//! devices; the paper's y-axis runs 0 … 0.008 Hz, and temperature alone
//! spans 7.99×10⁻⁷ … 0.003 Hz.

use crate::report::boxplot_table;
use crate::study::{FleetStudy, StudyConfig};
use sweetspot_dsp::stats::FiveNumber;
use sweetspot_telemetry::MetricKind;

/// Figure 5 data: per-metric five-number summaries of Nyquist rates (Hz).
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(metric, summary)`; metrics with no non-aliased pairs are omitted.
    pub rows: Vec<(MetricKind, FiveNumber)>,
}

/// Runs the Figure 5 experiment.
pub fn run(cfg: StudyConfig) -> Fig5 {
    from_study(&FleetStudy::run(cfg))
}

/// Builds Figure 5 from an existing study.
pub fn from_study(study: &FleetStudy) -> Fig5 {
    Fig5 {
        rows: MetricKind::ALL
            .iter()
            .filter_map(|&kind| study.nyquist_five_number(kind).map(|f| (kind, f)))
            .collect(),
    }
}

impl Fig5 {
    /// Text rendering of the box-plot table.
    pub fn render(&self) -> String {
        let rows: Vec<(String, FiveNumber)> = self
            .rows
            .iter()
            .map(|(k, f)| (k.name().to_string(), *f))
            .collect();
        boxplot_table(
            "Figure 5: estimated Nyquist rate per monitoring system (Hz)",
            &rows,
        )
    }

    /// The summary for one metric.
    pub fn for_metric(&self, kind: MetricKind) -> Option<&FiveNumber> {
        self.rows.iter().find(|(k, _)| *k == kind).map(|(_, f)| f)
    }

    /// The largest maximum across metrics (the paper's y-limit ≈ 0.008 Hz).
    pub fn global_max(&self) -> f64 {
        self.rows.iter().map(|(_, f)| f.max).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::FleetConfig;
    use sweetspot_timeseries::Seconds;

    #[test]
    fn boxplot_shape_matches_paper() {
        let fig = run(StudyConfig {
            fleet: FleetConfig {
                seed: 3,
                devices_per_metric: 24,
                trace_duration: Seconds::from_days(1.0),
            },
            ..StudyConfig::default()
        });
        assert!(fig.rows.len() >= 12, "most metrics have non-aliased pairs");
        // All rates in the paper's plot range: below ~0.02 Hz (its axis
        // tops at 0.008; our FCS profile allows slightly higher edges).
        assert!(fig.global_max() < 0.04, "global max {}", fig.global_max());
        // Temperature spans about a decade or more across devices (paper:
        // 7.99e-7 .. 3e-3; a one-day trace floors the low end at one FFT
        // bin ≈ 2.3e-5 Hz, compressing the visible spread).
        let t = fig.for_metric(MetricKind::Temperature).expect("temperature");
        assert!(
            t.max / t.min.max(1e-9) > 8.0,
            "temperature spread {} .. {}",
            t.min,
            t.max
        );
        assert!(fig.render().contains("Temperature"));
    }
}
