//! **Figure 2** — the frequency-domain picture of sampling: *"Sampling a
//! signal at frequency f₁ and reconstructing it can be thought of, in the
//! frequency domain, as adding copies of the signal which are f₁ apart."*
//!
//! The experiment makes the spectral-copy picture concrete: a single tone at
//! `f0` sampled at `fs` shows its alias images at `|k·fs ± f0|`; when
//! `fs > 2·f0` the baseband image stays separate (recoverable), when
//! `fs < 2·f0` the first image folds into the baseband (aliasing).

use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::psd::{periodogram, PsdConfig};
use sweetspot_timeseries::Hertz;

/// One sampled variant of the tone.
#[derive(Debug, Clone)]
pub struct SpectralCopyCase {
    /// Sampling rate used.
    pub sample_rate: f64,
    /// Where the strongest baseband spectral peak landed (Hz).
    pub measured_peak: f64,
    /// Where theory says it must land: `min(f0 mod fs, fs − f0 mod fs)`.
    pub predicted_peak: f64,
    /// Whether this variant is aliased (`fs < 2·f0`).
    pub aliased: bool,
    /// The §3.2 estimator's verdict on this variant.
    pub estimate_rate: Option<f64>,
}

/// Figure 2 data.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The tone frequency.
    pub tone_hz: f64,
    /// One case per sampling rate.
    pub cases: Vec<SpectralCopyCase>,
}

/// Runs the spectral-copies experiment for `tone_hz` under each rate.
pub fn run(tone_hz: f64, sample_rates: &[f64], duration: f64) -> Fig2 {
    let mut planner = FftPlanner::new();
    let mut estimator = NyquistEstimator::new(NyquistConfig::default());
    let cases = sample_rates
        .iter()
        .map(|&fs| {
            let n = (fs * duration).round() as usize;
            let samples: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * tone_hz * i as f64 / fs).sin())
                .collect();
            let spec = periodogram(&mut planner, &samples, fs, PsdConfig::default());
            let measured_peak = spec.peak_bins(1)[0].0;
            let folded = tone_hz % fs;
            let predicted_peak = folded.min((fs - folded).abs());
            let estimate_rate = estimator
                .estimate_samples(&samples, Hertz(fs))
                .rate()
                .map(|r| r.value());
            SpectralCopyCase {
                sample_rate: fs,
                measured_peak,
                predicted_peak,
                aliased: fs < 2.0 * tone_hz,
                estimate_rate,
            }
        })
        .collect();
    Fig2 {
        tone_hz,
        cases,
    }
}

impl Fig2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 2: spectral copies of a {} Hz tone under different sampling rates\n",
            self.tone_hz
        );
        let rows: Vec<Vec<String>> = self
            .cases
            .iter()
            .map(|c| {
                vec![
                    format!("{:.1}", c.sample_rate),
                    format!("{:.2}", c.predicted_peak),
                    format!("{:.2}", c.measured_peak),
                    if c.aliased { "yes".into() } else { "no".into() },
                    c.estimate_rate
                        .map_or("aliased".into(), |r| format!("{r:.2}")),
                ]
            })
            .collect();
        out.push_str(&crate::report::table(
            &["fs (Hz)", "predicted peak", "measured peak", "aliased?", "est. Nyquist rate"],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_land_where_theory_says() {
        // 100 Hz tone at fs ∈ {400 (clean), 150 (aliased → 50), 90 (→ 10)}.
        let fig = run(100.0, &[400.0, 150.0, 90.0], 4.0);
        for c in &fig.cases {
            let resolution = c.sample_rate / (c.sample_rate * 4.0); // 1/duration
            assert!(
                (c.measured_peak - c.predicted_peak).abs() <= resolution,
                "fs={}: measured {} vs predicted {}",
                c.sample_rate,
                c.measured_peak,
                c.predicted_peak
            );
        }
        assert!(!fig.cases[0].aliased);
        assert!(fig.cases[1].aliased && fig.cases[2].aliased);
        // Aliased folds: 150−100 = 50, 100−90 = 10.
        assert!((fig.cases[1].predicted_peak - 50.0).abs() < 1e-9);
        assert!((fig.cases[2].predicted_peak - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_rate() {
        let fig = run(100.0, &[400.0, 150.0], 2.0);
        let s = fig.render();
        assert!(s.contains("400.0"));
        assert!(s.contains("150.0"));
    }
}
