//! **Figure 4** — "CDFs of the ratio between the actual sampling rate and
//! the computed Nyquist rate. Note x axes is in log scale and x = 10
//! indicates 10× over-sampling. Each datapoint is one day's worth of data
//! from a distinct device. We do not show the cases where we cannot reliably
//! detect the Nyquist rate."
//!
//! The paper shows 12 metric panels; this driver produces all 14 (the two
//! extra are the drop metrics Figure 4 folds away for space).

use crate::report::{cdf_ascii, cdf_log_samples};
use crate::study::{FleetStudy, StudyConfig};
use sweetspot_dsp::stats::Cdf;
use sweetspot_telemetry::MetricKind;

/// One CDF panel.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// The metric.
    pub kind: MetricKind,
    /// Reduction-ratio CDF (over-sampled pairs only).
    pub cdf: Cdf,
}

/// Figure 4 data: one panel per metric.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// All panels, in [`MetricKind::ALL`] order.
    pub panels: Vec<Fig4Panel>,
}

/// Runs the Figure 4 experiment.
pub fn run(cfg: StudyConfig) -> Fig4 {
    from_study(&FleetStudy::run(cfg))
}

/// Builds Figure 4 panels from an existing study.
pub fn from_study(study: &FleetStudy) -> Fig4 {
    Fig4 {
        panels: MetricKind::ALL
            .iter()
            .map(|&kind| Fig4Panel {
                kind,
                cdf: study.reduction_cdf(kind),
            })
            .collect(),
    }
}

impl Fig4 {
    /// Text rendering: an ASCII CDF per panel plus key quantiles.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4: CDF of possible reduction ratio (actual rate / Nyquist rate)\n",
        );
        for p in &self.panels {
            if p.cdf.is_empty() {
                out.push_str(&format!("  [{}]: no over-sampled pairs\n", p.kind));
                continue;
            }
            out.push('\n');
            out.push_str(&cdf_ascii(&format!("  [{}]", p.kind), &p.cdf, 0..4));
            out.push_str(&format!(
                "   n={}  median={:.1}x  p90={:.1}x  max={:.1}x\n",
                p.cdf.len(),
                p.cdf.quantile(0.5),
                p.cdf.quantile(0.9),
                p.cdf.quantile(1.0),
            ));
        }
        out
    }

    /// Log-sampled points for one panel (plot-ready).
    pub fn panel_points(&self, kind: MetricKind) -> Vec<(f64, f64)> {
        self.panels
            .iter()
            .find(|p| p.kind == kind)
            .map(|p| cdf_log_samples(&p.cdf, 0..3, 8))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::FleetConfig;
    use sweetspot_timeseries::Seconds;

    #[test]
    fn cdfs_show_multi_decade_oversampling() {
        let fig = run(StudyConfig {
            fleet: FleetConfig {
                seed: 2,
                devices_per_metric: 8,
                trace_duration: Seconds::from_days(1.0),
            },
            ..StudyConfig::default()
        });
        assert_eq!(fig.panels.len(), 14);
        // Pool all panels: ratios must span more than two decades overall
        // (the paper's panels run 10^0..10^3).
        let mut all: Vec<f64> = Vec::new();
        for p in &fig.panels {
            all.extend(p.cdf.sorted_values());
        }
        let pooled = Cdf::new(all);
        assert!(pooled.len() > 60);
        assert!(
            pooled.quantile(0.95) / pooled.quantile(0.05).max(1.0) > 100.0,
            "span {} .. {}",
            pooled.quantile(0.05),
            pooled.quantile(0.95)
        );
        let rendered = fig.render();
        assert!(rendered.contains("Link util"));
    }
}
