//! Per-figure experiment drivers.
//!
//! One module per paper artifact (see DESIGN.md §4 for the experiment
//! index). Every driver exposes a `run(...)` returning structured results
//! with a `render()` method producing the text figure.

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod headline;
pub mod sweetspot;
