//! Shared sharding math for the deterministic fan-out engines
//! ([`study`](crate::study) and [`fleetsim`](crate::fleetsim)).
//!
//! Both engines split a work-index space into contiguous per-worker spans
//! and merge results back in index order — the byte-identical-across-
//! `--threads N` guarantee rests on this arithmetic, so there is exactly
//! one copy of it.

use std::thread;

/// Resolves a requested thread count: `0` means the machine's available
/// parallelism; the result is clamped to `[1, work_items]` (no point
/// spawning idle workers).
pub(crate) fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let requested = if requested == 0 {
        thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        requested
    };
    requested.clamp(1, work_items.max(1))
}

/// Per-worker contiguous chunk length for `total` work items over at most
/// `workers` workers. `slice.chunks(chunk_size(..))` and
/// [`shard_spans`] cut on identical boundaries.
pub(crate) fn chunk_size(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1)).max(1)
}

/// Splits `total` work items into at most `workers` contiguous spans.
pub(crate) fn shard_spans(total: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = chunk_size(total, workers);
    (0..total)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spans_cover_everything_exactly_once() {
        for total in [0usize, 1, 5, 12, 100] {
            for workers in [1usize, 2, 3, 7, 16] {
                let spans = shard_spans(total, workers);
                let mut covered = 0;
                let mut expected_start = 0;
                for span in &spans {
                    assert_eq!(span.start, expected_start, "spans must be contiguous");
                    covered += span.len();
                    expected_start = span.end;
                }
                assert_eq!(covered, total, "total={total} workers={workers}");
                assert!(spans.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn chunks_match_span_boundaries() {
        for total in [1usize, 5, 12, 100] {
            for workers in [1usize, 2, 3, 7, 16] {
                let chunk = chunk_size(total, workers);
                let items: Vec<usize> = (0..total).collect();
                let spans = shard_spans(total, workers);
                assert_eq!(items.chunks(chunk).count(), spans.len());
                for (c, span) in items.chunks(chunk).zip(&spans) {
                    assert_eq!(c.len(), span.len(), "total={total} workers={workers}");
                    assert_eq!(c[0], span.start);
                }
            }
        }
    }

    #[test]
    fn resolve_threads_clamps_to_work() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert_eq!(resolve_threads(5, 0), 1);
        assert!(resolve_threads(0, 64) >= 1);
    }
}
