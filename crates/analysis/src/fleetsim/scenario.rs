//! Fleet lifecycle & failure injection: the `--scenario` axis.
//!
//! The frontier in [`super`] is measured on an always-healthy, static fleet;
//! production fleets churn, reboot, drop reports, and switch signal regimes.
//! This module makes failure a first-class, *deterministic* simulation axis:
//! a [`ScenarioSpec`] describes per-epoch event probabilities plus a regime
//! incident, and a [`ScenarioEngine`] deals each device one [`DeviceEvent`]
//! per epoch as a **pure function of `(scenario seed, epoch, device index)`**
//! — no RNG state, no dependence on grants or thread count — so scenario
//! runs stay byte-identical for any `--threads N` and every policy of a
//! frontier sweep sees exactly the same fault schedule.
//!
//! Events compose with the engine's lockstep loop without breaking its
//! invariants: absent devices keep their slot in every per-device vector
//! (they request 0.0 and skip their step — the arena slabs and request
//! lengths never change), and all per-epoch event work is branch + hash
//! arithmetic, so the zero-allocation steady state survives churn.

use std::ops::Range;

/// What the scenario dealt one device for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceEvent {
    /// Device polls and reports normally.
    Healthy,
    /// Device is offline this epoch: no request, no samples, no report.
    /// The controller is frozen, not informed — there is nothing to inform
    /// it *with*.
    Absent,
    /// Device rebooted at the epoch boundary (or rejoined after an
    /// absence): volatile state resets, the controller re-ramps from its
    /// remembered max, then the epoch runs normally.
    Reboot,
    /// The epoch's report was lost in flight: the controller sees no
    /// evidence at all and applies its missing-epoch semantics.
    ReportDropped,
    /// The epoch's report arrived too late to adapt on: samples are taken
    /// (and billed) but adaptation freezes for the epoch.
    ReportDelayed,
    /// The epoch's report reached the collector twice: the samples bill
    /// double, the controller is none the wiser.
    ReportDuplicated,
}

/// A fleet scenario: per-epoch event probabilities, a regime incident, and
/// per-device cost asymmetry. `Copy` so it rides inside
/// [`FleetSimConfig`](super::FleetSimConfig).
///
/// Build one from a CLI string with [`ScenarioSpec::parse`] — preset names
/// (`churn`, `incident`, `lossy-reports`, `cost-skew`) compose with `+`,
/// and `key=value` terms override individual fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Per-epoch probability an active device goes offline.
    pub leave_prob: f64,
    /// Per-epoch probability an offline device comes back (rebooting).
    pub join_prob: f64,
    /// Per-epoch probability an active device reboots in place.
    pub reboot_prob: f64,
    /// Per-epoch probability an active device's report is lost in flight.
    pub drop_prob: f64,
    /// Per-epoch probability an active device's report is duplicated.
    pub dup_prob: f64,
    /// Per-epoch probability an active device's report arrives too late
    /// to adapt on.
    pub delay_prob: f64,
    /// Regime incident: every tone frequency scales by this factor for the
    /// incident phase (1.0 disables the incident).
    pub incident_factor: f64,
    /// Incident onset, as a fraction of the simulation horizon.
    pub incident_start_frac: f64,
    /// Incident end (recovery onset), as a fraction of the horizon.
    pub incident_end_frac: f64,
    /// Per-device cost asymmetry: device cost factors spread log-uniformly
    /// over `[1/spread, spread]` (1.0 is a uniform fleet). Schedulers stay
    /// cost-naive by design — the ledger records what that naivety costs.
    pub cost_spread: f64,
    /// Scenario seed: decorrelates the fault schedule from the fleet seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The healthy scenario: no events, no incident, uniform costs.
    pub const fn none() -> ScenarioSpec {
        ScenarioSpec {
            leave_prob: 0.0,
            join_prob: 0.0,
            reboot_prob: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            incident_factor: 1.0,
            incident_start_frac: 0.25,
            incident_end_frac: 0.625,
            cost_spread: 1.0,
            seed: 0,
        }
    }

    /// Device churn: ~1% of the fleet leaves per epoch, absentees rejoin
    /// quickly, occasional in-place reboots.
    pub const fn churn() -> ScenarioSpec {
        ScenarioSpec {
            leave_prob: 0.01,
            join_prob: 0.25,
            reboot_prob: 0.005,
            ..ScenarioSpec::none()
        }
    }

    /// Regime incident: mid-study, every signal's band edge jumps to 3× its
    /// diurnal value, then recovers — the controller must re-discover both
    /// transitions through its own sampling.
    pub const fn incident() -> ScenarioSpec {
        ScenarioSpec {
            incident_factor: 3.0,
            ..ScenarioSpec::none()
        }
    }

    /// Lossy reporting: epochs are dropped, duplicated, and delayed in
    /// flight at realistic rates.
    pub const fn lossy_reports() -> ScenarioSpec {
        ScenarioSpec {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.03,
            ..ScenarioSpec::none()
        }
    }

    /// Cost asymmetry: per-device sample costs spread 4× either way.
    pub const fn cost_skew() -> ScenarioSpec {
        ScenarioSpec {
            cost_spread: 4.0,
            ..ScenarioSpec::none()
        }
    }

    /// `true` when the scenario can perturb the run at all. The engine is
    /// only constructed for active scenarios, so `--scenario none` keeps
    /// the healthy path bit-identical to a scenario-free build.
    pub fn is_active(&self) -> bool {
        self.leave_prob > 0.0
            || self.join_prob > 0.0
            || self.reboot_prob > 0.0
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.has_incident()
            || self.cost_spread != 1.0
    }

    /// `true` when a regime incident is configured.
    pub fn has_incident(&self) -> bool {
        self.incident_factor != 1.0
    }

    /// Canonical human-readable label: the active components, `+`-joined.
    pub fn label(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.leave_prob > 0.0 || self.join_prob > 0.0 || self.reboot_prob > 0.0 {
            parts.push("churn");
        }
        if self.has_incident() {
            parts.push("incident");
        }
        if self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0 {
            parts.push("lossy-reports");
        }
        if self.cost_spread != 1.0 {
            parts.push("cost-skew");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Parses a `--scenario` argument: `+`-separated terms, each either a
    /// preset name (`none`, `churn`, `incident`, `lossy-reports`/`lossy`,
    /// `cost-skew`) or a `key=value` override (`leave`, `join`, `reboot`,
    /// `drop`, `dup`, `delay`, `incident` (the factor), `incident-start`,
    /// `incident-end`, `cost-spread`). Terms apply left to right onto the
    /// healthy scenario. The seed is *not* part of the string — set it via
    /// `--scenario-seed` / the field.
    ///
    /// # Errors
    /// A human-readable message naming the offending term.
    pub fn parse(s: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec::none();
        for term in s.split('+') {
            let term = term.trim();
            match term {
                "" | "none" => {}
                "churn" => spec.merge(&ScenarioSpec::churn()),
                "incident" => spec.merge(&ScenarioSpec::incident()),
                "lossy-reports" | "lossy" => spec.merge(&ScenarioSpec::lossy_reports()),
                "cost-skew" => spec.merge(&ScenarioSpec::cost_skew()),
                _ => {
                    let (key, value) = term
                        .split_once('=')
                        .ok_or_else(|| format!("unknown scenario term '{term}'"))?;
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("scenario term '{term}': bad number '{value}'"))?;
                    let field = match key {
                        "leave" => &mut spec.leave_prob,
                        "join" => &mut spec.join_prob,
                        "reboot" => &mut spec.reboot_prob,
                        "drop" => &mut spec.drop_prob,
                        "dup" => &mut spec.dup_prob,
                        "delay" => &mut spec.delay_prob,
                        "incident" => &mut spec.incident_factor,
                        "incident-start" => &mut spec.incident_start_frac,
                        "incident-end" => &mut spec.incident_end_frac,
                        "cost-spread" => &mut spec.cost_spread,
                        _ => return Err(format!("unknown scenario key '{key}'")),
                    };
                    *field = v;
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Overlays `other`'s non-default fields onto `self` (preset
    /// composition: `churn+incident` is churn's probabilities plus
    /// incident's regime switch).
    fn merge(&mut self, other: &ScenarioSpec) {
        let base = ScenarioSpec::none();
        macro_rules! take {
            ($f:ident) => {
                if other.$f != base.$f {
                    self.$f = other.$f;
                }
            };
        }
        take!(leave_prob);
        take!(join_prob);
        take!(reboot_prob);
        take!(drop_prob);
        take!(dup_prob);
        take!(delay_prob);
        take!(incident_factor);
        take!(incident_start_frac);
        take!(incident_end_frac);
        take!(cost_spread);
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("leave", self.leave_prob),
            ("join", self.join_prob),
            ("reboot", self.reboot_prob),
            ("drop", self.drop_prob),
            ("dup", self.dup_prob),
            ("delay", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("scenario {name} probability {p} outside [0, 1]"));
            }
        }
        if !(self.incident_factor > 0.0 && self.incident_factor.is_finite()) {
            return Err(format!(
                "scenario incident factor must be positive, got {}",
                self.incident_factor
            ));
        }
        if !(0.0..=1.0).contains(&self.incident_start_frac)
            || !(0.0..=1.0).contains(&self.incident_end_frac)
            || self.incident_end_frac < self.incident_start_frac
        {
            return Err(format!(
                "scenario incident window [{}, {}] must be ordered fractions of the run",
                self.incident_start_frac, self.incident_end_frac
            ));
        }
        if !(self.cost_spread >= 1.0 && self.cost_spread.is_finite()) {
            return Err(format!(
                "scenario cost spread must be >= 1, got {}",
                self.cost_spread
            ));
        }
        Ok(())
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec::none()
    }
}

/// Per-kind salts so every event class draws an independent uniform stream.
const SALT_LEAVE: u64 = 0x1EAF_0001;
const SALT_JOIN: u64 = 0x3011_0002;
const SALT_REBOOT: u64 = 0xB007_0003;
const SALT_DROP: u64 = 0xD209_0004;
const SALT_DUP: u64 = 0xD4B1_0005;
const SALT_DELAY: u64 = 0xDE1A_0006;
const SALT_COST: u64 = 0xC057_0007;

/// SplitMix64 finalizer over `(seed, salt, epoch, index)` — the same mixer
/// trace synthesis uses, so nearby epochs/devices share nothing.
fn mix(seed: u64, salt: u64, epoch: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(epoch.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the mixed hash (53 mantissa bits).
fn unit(seed: u64, salt: u64, epoch: u64, index: u64) -> f64 {
    (mix(seed, salt, epoch, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Running totals of what a scenario dealt over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounters {
    /// Devices that went offline (leave events).
    pub leaves: usize,
    /// Offline devices that came back (rejoin events).
    pub joins: usize,
    /// Reboots, counting both in-place reboots and rejoins.
    pub reboots: usize,
    /// Device-epochs spent offline.
    pub absent_epochs: usize,
    /// Reports lost in flight.
    pub dropped_reports: usize,
    /// Reports duplicated in flight.
    pub duplicated_reports: usize,
    /// Reports that arrived too late to adapt on.
    pub delayed_reports: usize,
}

/// What a scenario did to one policy run, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// Canonical scenario label (see [`ScenarioSpec::label`]).
    pub label: String,
    /// Scenario seed the fault schedule was drawn from.
    pub seed: u64,
    /// Event totals over the run.
    pub counters: ScenarioCounters,
    /// Incident phase, as an epoch range (`None` without an incident).
    pub incident: Option<Range<usize>>,
    /// Fleet mean coverage over the pre-incident epochs — the recovery
    /// baseline. `None` when there is no incident or no pre-incident epoch.
    pub baseline_coverage: Option<f64>,
    /// Epochs after the incident ends until fleet mean coverage regains
    /// 95% of the pre-incident baseline. `None` if it never recovers
    /// within the run (or there is no incident/baseline).
    pub time_to_recover: Option<usize>,
    /// Fleet mean coverage per epoch (absent devices score 0) — the
    /// degradation/recovery trajectory the incident analysis reads.
    pub epoch_mean_coverage: Vec<f64>,
}

/// The deterministic fault dealer for one run: owns the spec and the
/// resolved incident boundaries. Stateless per epoch — every decision is a
/// hash of `(seed, salt, epoch, device index)`.
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    incident: Option<Range<usize>>,
}

impl ScenarioEngine {
    /// Builds the engine for a run of `epochs` lockstep epochs.
    pub fn new(spec: ScenarioSpec, epochs: usize) -> ScenarioEngine {
        let incident = spec.has_incident().then(|| {
            let start = (spec.incident_start_frac * epochs as f64).floor() as usize;
            let end = ((spec.incident_end_frac * epochs as f64).ceil() as usize).min(epochs);
            start..end.max(start)
        });
        ScenarioEngine { spec, incident }
    }

    /// The spec this engine deals from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Incident phase as an epoch range, when one is configured.
    pub fn incident(&self) -> Option<Range<usize>> {
        self.incident.clone()
    }

    /// Deals device `index` its event for `epoch`, given whether it is
    /// currently active. Pure: same `(spec.seed, epoch, index, active)` ⇒
    /// same event, regardless of policy, grants, or thread count. Draws are
    /// gated on non-zero probabilities, so inactive event classes cost
    /// nothing and scenarios compose without perturbing each other.
    pub fn deal(&self, epoch: usize, index: usize, active: bool) -> DeviceEvent {
        let s = &self.spec;
        let (e, i) = (epoch as u64, index as u64);
        if !active {
            return if s.join_prob > 0.0 && unit(s.seed, SALT_JOIN, e, i) < s.join_prob {
                DeviceEvent::Reboot
            } else {
                DeviceEvent::Absent
            };
        }
        if s.leave_prob > 0.0 && unit(s.seed, SALT_LEAVE, e, i) < s.leave_prob {
            return DeviceEvent::Absent;
        }
        if s.reboot_prob > 0.0 && unit(s.seed, SALT_REBOOT, e, i) < s.reboot_prob {
            return DeviceEvent::Reboot;
        }
        if s.drop_prob > 0.0 && unit(s.seed, SALT_DROP, e, i) < s.drop_prob {
            return DeviceEvent::ReportDropped;
        }
        if s.delay_prob > 0.0 && unit(s.seed, SALT_DELAY, e, i) < s.delay_prob {
            return DeviceEvent::ReportDelayed;
        }
        if s.dup_prob > 0.0 && unit(s.seed, SALT_DUP, e, i) < s.dup_prob {
            return DeviceEvent::ReportDuplicated;
        }
        DeviceEvent::Healthy
    }

    /// Per-device cost factors, log-uniform over `[1/spread, spread]`, or
    /// `None` for a uniform fleet — the `None` keeps the healthy ledger
    /// arithmetic (and hence its bytes) untouched.
    pub fn cost_factors(&self, devices: usize) -> Option<Vec<f64>> {
        let spread = self.spec.cost_spread;
        if spread == 1.0 {
            return None;
        }
        Some(
            (0..devices)
                .map(|i| {
                    // u ∈ [−1, 1) ⇒ factor ∈ [1/spread, spread).
                    let u = 2.0 * unit(self.spec.seed, SALT_COST, 0, i as u64) - 1.0;
                    spread.powf(u)
                })
                .collect(),
        )
    }

    /// Recovery analysis over the run's per-epoch fleet mean coverage:
    /// `(baseline, time_to_recover)`. The baseline is the mean over
    /// pre-incident epochs; recovery is the first post-incident epoch whose
    /// fleet mean regains 95% of it, counted from the incident's end.
    pub fn recovery(&self, epoch_means: &[f64]) -> (Option<f64>, Option<usize>) {
        let Some(incident) = &self.incident else {
            return (None, None);
        };
        if incident.start == 0 || incident.start > epoch_means.len() {
            return (None, None);
        }
        let baseline =
            epoch_means[..incident.start].iter().sum::<f64>() / incident.start as f64;
        let threshold = baseline * 0.95;
        let recover = epoch_means
            .iter()
            .enumerate()
            .skip(incident.end)
            .find(|(_, &m)| m >= threshold)
            .map(|(e, _)| e - incident.end);
        (Some(baseline), recover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_presets_are_active() {
        assert!(!ScenarioSpec::none().is_active());
        for spec in [
            ScenarioSpec::churn(),
            ScenarioSpec::incident(),
            ScenarioSpec::lossy_reports(),
            ScenarioSpec::cost_skew(),
        ] {
            assert!(spec.is_active(), "{spec:?}");
        }
    }

    #[test]
    fn parse_presets_compose_with_plus() {
        let spec = ScenarioSpec::parse("churn+lossy-reports").unwrap();
        assert_eq!(spec.leave_prob, ScenarioSpec::churn().leave_prob);
        assert_eq!(spec.drop_prob, ScenarioSpec::lossy_reports().drop_prob);
        assert!(!spec.has_incident());
        assert_eq!(spec.label(), "churn+lossy-reports");
    }

    #[test]
    fn parse_key_value_overrides() {
        let spec = ScenarioSpec::parse("incident+incident=2.0+drop=0.1").unwrap();
        assert_eq!(spec.incident_factor, 2.0);
        assert_eq!(spec.drop_prob, 0.1);
        assert_eq!(ScenarioSpec::parse("none").unwrap(), ScenarioSpec::none());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(ScenarioSpec::parse("blizzard").is_err());
        assert!(ScenarioSpec::parse("drop=nope").is_err());
        assert!(ScenarioSpec::parse("drop=1.5").is_err());
        assert!(ScenarioSpec::parse("incident=0").is_err());
        assert!(ScenarioSpec::parse("cost-spread=0.5").is_err());
        assert!(ScenarioSpec::parse("incident-start=0.9+incident-end=0.1").is_err());
    }

    #[test]
    fn deal_is_pure_and_seed_sensitive() {
        let spec = ScenarioSpec {
            seed: 7,
            ..ScenarioSpec::churn()
        };
        let eng = ScenarioEngine::new(spec, 100);
        for epoch in 0..50 {
            for index in 0..40 {
                assert_eq!(
                    eng.deal(epoch, index, true),
                    eng.deal(epoch, index, true),
                    "deal must be pure"
                );
            }
        }
        let other = ScenarioEngine::new(ScenarioSpec { seed: 8, ..spec }, 100);
        let differs = (0..200).any(|e| {
            (0..40).any(|i| eng.deal(e, i, true) != other.deal(e, i, true))
        });
        assert!(differs, "seed must steer the schedule");
    }

    #[test]
    fn deal_rates_match_probabilities_roughly() {
        let spec = ScenarioSpec {
            seed: 3,
            ..ScenarioSpec::lossy_reports()
        };
        let eng = ScenarioEngine::new(spec, 1000);
        let mut dropped = 0usize;
        let mut total = 0usize;
        for epoch in 0..1000 {
            for index in 0..20 {
                total += 1;
                if eng.deal(epoch, index, true) == DeviceEvent::ReportDropped {
                    dropped += 1;
                }
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!(
            (0.035..0.065).contains(&rate),
            "drop rate {rate} far from 0.05"
        );
    }

    #[test]
    fn absent_devices_only_rejoin_or_stay_absent() {
        let spec = ScenarioSpec {
            seed: 11,
            ..ScenarioSpec::churn()
        };
        let eng = ScenarioEngine::new(spec, 100);
        for epoch in 0..100 {
            for index in 0..20 {
                let ev = eng.deal(epoch, index, false);
                assert!(
                    ev == DeviceEvent::Absent || ev == DeviceEvent::Reboot,
                    "absent device dealt {ev:?}"
                );
            }
        }
    }

    #[test]
    fn incident_boundaries_cover_the_configured_window() {
        let eng = ScenarioEngine::new(ScenarioSpec::incident(), 16);
        let inc = eng.incident().expect("incident configured");
        assert_eq!(inc, 4..10);
        assert!(ScenarioEngine::new(ScenarioSpec::churn(), 16).incident().is_none());
    }

    #[test]
    fn cost_factors_spread_around_unity() {
        let eng = ScenarioEngine::new(
            ScenarioSpec {
                seed: 5,
                ..ScenarioSpec::cost_skew()
            },
            10,
        );
        let f = eng.cost_factors(500).expect("skewed");
        assert!(f.iter().all(|&x| (0.25..=4.0).contains(&x)));
        let spread = f.iter().cloned().fold(f64::MIN, f64::max)
            / f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 4.0, "spread {spread} too tight");
        assert!(eng.cost_factors(0).is_some());
        let uniform = ScenarioEngine::new(ScenarioSpec::churn(), 10);
        assert!(uniform.cost_factors(500).is_none());
    }

    #[test]
    fn recovery_finds_the_first_post_incident_epoch_at_threshold() {
        let eng = ScenarioEngine::new(ScenarioSpec::incident(), 16);
        // Baseline epochs 0..4 at 0.9; incident dips; recovery at epoch 12.
        let means = [
            0.9, 0.9, 0.9, 0.9, // baseline
            0.5, 0.5, 0.5, 0.5, 0.5, 0.5, // incident 4..10
            0.7, 0.8, 0.88, 0.9, 0.9, 0.9, // recovery
        ];
        let (baseline, ttr) = eng.recovery(&means);
        assert!((baseline.unwrap() - 0.9).abs() < 1e-12);
        // 0.95 × 0.9 = 0.855 — first reached at epoch 12, two after the end.
        assert_eq!(ttr, Some(2));
        // Never recovering reports None.
        let flat = [0.9, 0.9, 0.9, 0.9, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(eng.recovery(&flat), (Some(0.9), None));
    }
}
