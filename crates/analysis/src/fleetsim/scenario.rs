//! Fleet lifecycle & failure injection: the `--scenario` axis.
//!
//! The frontier in [`super`] is measured on an always-healthy, static fleet;
//! production fleets churn, reboot, drop reports, and switch signal regimes.
//! This module makes failure a first-class, *deterministic* simulation axis:
//! a [`ScenarioSpec`] describes per-epoch event probabilities plus a regime
//! incident, and a [`ScenarioEngine`] deals each device one [`DeviceEvent`]
//! per epoch as a **pure function of `(scenario seed, epoch, device index)`**
//! — no RNG state, no dependence on grants or thread count — so scenario
//! runs stay byte-identical for any `--threads N` and every policy of a
//! frontier sweep sees exactly the same fault schedule.
//!
//! Events compose with the engine's lockstep loop without breaking its
//! invariants: absent devices keep their slot in every per-device vector
//! (they request 0.0 and skip their step — the arena slabs and request
//! lengths never change), and all per-epoch event work is branch + hash
//! arithmetic, so the zero-allocation steady state survives churn.
//!
//! ### Missed vs. dormant epochs
//!
//! Two superficially similar silences with opposite semantics:
//!
//! * A **missed** epoch ([`DeviceEvent::Absent`] /
//!   [`DeviceEvent::ReportDropped`]) is a *failure*: the controller expected
//!   evidence and got none. It counts as deferred, and the controller
//!   applies hold-and-decay — after `decrease_patience − 1` consecutive
//!   misses the request decays toward `min_rate`, progressively releasing
//!   the silent device's budget share.
//! * A **dormant** epoch ([`DeviceEvent::Dormant`]) is a *scheduled* sleep
//!   (duty cycle, battery conservation): the device was never expected to
//!   report. Nothing is deferred and the request does **not** decay — the
//!   device will want the same rate when it wakes. The controller only
//!   notes that its state aged: the next awake epoch is forced to run the
//!   §4.1 verification (a regime change during the nap must not pass
//!   unchecked), and the health classifier reports
//!   [`HealthState::Dormant`](sweetspot_core::adaptive::HealthState)
//!   so a fleet watchdog never schedules re-probes at a sleeping device.
//!   The deadlock-suspicion quiet streak *holds* across the nap rather
//!   than resetting — planned silence is not evidence of health, and the
//!   forced wake-up verification arbitrates — so duty-cycled fleets stay
//!   watchdog-coverable even when the duty period is shorter than the
//!   suspicion threshold.
//!
//! Dormancy is dealt statelessly like every other event: a per-member duty
//! phase is hashed from the scenario seed, so `awake ⇔ ((epoch + phase) mod
//! duty_period) < awake_len`, plus an optional per-epoch hashed sleep draw
//! (`sleep_prob`) for unscheduled battery blips. Regime incidents generalize
//! the same way: `incident-period` makes the incident window recur within
//! every period (diurnal load), and `incident-stagger` splits the fleet
//! into device-index groups whose windows shift one epoch per group —
//! device-index grouping, *not* worker shards, so activity stays a pure
//! function of `(spec, epoch, index)` and thread counts cannot perturb it.

use std::ops::Range;

/// What the scenario dealt one device for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceEvent {
    /// Device polls and reports normally.
    Healthy,
    /// Device is offline this epoch: no request, no samples, no report.
    /// The controller is frozen, not informed — there is nothing to inform
    /// it *with*.
    Absent,
    /// Device rebooted at the epoch boundary (or rejoined after an
    /// absence): volatile state resets, the controller re-ramps from its
    /// remembered max, then the epoch runs normally.
    Reboot,
    /// The epoch's report was lost in flight: the controller sees no
    /// evidence at all and applies its missing-epoch semantics.
    ReportDropped,
    /// The epoch's report arrived too late to adapt on: samples are taken
    /// (and billed) but adaptation freezes for the epoch.
    ReportDelayed,
    /// The epoch's report reached the collector twice: the samples bill
    /// double, the controller is none the wiser.
    ReportDuplicated,
    /// Scheduled sleep (duty cycle / battery conservation): no request, no
    /// samples, no report — and, unlike [`DeviceEvent::Absent`], no
    /// deferral and no request decay, because the silence was planned (see
    /// the module docs on missed vs. dormant).
    Dormant,
}

/// A fleet scenario: per-epoch event probabilities, a regime incident, and
/// per-device cost asymmetry. `Copy` so it rides inside
/// [`FleetSimConfig`](super::FleetSimConfig).
///
/// Build one from a CLI string with [`ScenarioSpec::parse`] — preset names
/// (`churn`, `incident`, `lossy-reports`, `cost-skew`) compose with `+`,
/// and `key=value` terms override individual fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Per-epoch probability an active device goes offline.
    pub leave_prob: f64,
    /// Per-epoch probability an offline device comes back (rebooting).
    pub join_prob: f64,
    /// Per-epoch probability an active device reboots in place.
    pub reboot_prob: f64,
    /// Per-epoch probability an active device's report is lost in flight.
    pub drop_prob: f64,
    /// Per-epoch probability an active device's report is duplicated.
    pub dup_prob: f64,
    /// Per-epoch probability an active device's report arrives too late
    /// to adapt on.
    pub delay_prob: f64,
    /// Regime incident: every tone frequency scales by this factor for the
    /// incident phase (1.0 disables the incident).
    pub incident_factor: f64,
    /// Incident onset, as a fraction of the simulation horizon (or of the
    /// period, when `incident_period > 0`).
    pub incident_start_frac: f64,
    /// Incident end (recovery onset), as a fraction of the horizon (or of
    /// the period).
    pub incident_end_frac: f64,
    /// Recurring incident period in epochs: `0` is the classic one-shot
    /// mid-study incident; `k > 0` makes the incident window recur within
    /// every `k`-epoch period (diurnal load).
    pub incident_period: usize,
    /// Staggered incidents: split the fleet into this many device-index
    /// groups, shifting group `g`'s incident window `g` epochs later.
    /// `0`/`1` means the whole fleet switches simultaneously.
    pub incident_stagger: usize,
    /// Duty cycle period in epochs (`0` disables duty cycling): each member
    /// is awake for `ceil(duty_frac × duty_period)` epochs of every period,
    /// at a per-member hashed phase.
    pub duty_period: usize,
    /// Awake fraction of the duty period (clamped so at least one epoch per
    /// period is awake).
    pub duty_frac: f64,
    /// Per-epoch probability an awake device sleeps anyway (unscheduled
    /// battery conservation).
    pub sleep_prob: f64,
    /// Per-device cost asymmetry: device cost factors spread log-uniformly
    /// over `[1/spread, spread]` (1.0 is a uniform fleet). Schedulers stay
    /// cost-naive by design — the ledger records what that naivety costs.
    pub cost_spread: f64,
    /// Scenario seed: decorrelates the fault schedule from the fleet seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The healthy scenario: no events, no incident, uniform costs.
    pub const fn none() -> ScenarioSpec {
        ScenarioSpec {
            leave_prob: 0.0,
            join_prob: 0.0,
            reboot_prob: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            incident_factor: 1.0,
            incident_start_frac: 0.25,
            incident_end_frac: 0.625,
            incident_period: 0,
            incident_stagger: 0,
            duty_period: 0,
            duty_frac: 1.0,
            sleep_prob: 0.0,
            cost_spread: 1.0,
            seed: 0,
        }
    }

    /// Device churn: ~1% of the fleet leaves per epoch, absentees rejoin
    /// quickly, occasional in-place reboots.
    pub const fn churn() -> ScenarioSpec {
        ScenarioSpec {
            leave_prob: 0.01,
            join_prob: 0.25,
            reboot_prob: 0.005,
            ..ScenarioSpec::none()
        }
    }

    /// Regime incident: mid-study, every signal's band edge jumps to 3× its
    /// diurnal value, then recovers — the controller must re-discover both
    /// transitions through its own sampling.
    pub const fn incident() -> ScenarioSpec {
        ScenarioSpec {
            incident_factor: 3.0,
            ..ScenarioSpec::none()
        }
    }

    /// Lossy reporting: epochs are dropped, duplicated, and delayed in
    /// flight at realistic rates.
    pub const fn lossy_reports() -> ScenarioSpec {
        ScenarioSpec {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.03,
            ..ScenarioSpec::none()
        }
    }

    /// Cost asymmetry: per-device sample costs spread 4× either way.
    pub const fn cost_skew() -> ScenarioSpec {
        ScenarioSpec {
            cost_spread: 4.0,
            ..ScenarioSpec::none()
        }
    }

    /// Duty-cycled reporters: each member sleeps one epoch in four, at a
    /// hashed per-member phase (the fleet never naps in unison).
    pub const fn duty() -> ScenarioSpec {
        ScenarioSpec {
            duty_period: 4,
            duty_frac: 0.75,
            ..ScenarioSpec::none()
        }
    }

    /// Battery-constrained reporters: awake half of every six epochs plus
    /// a 5% per-epoch chance of an unscheduled conservation nap.
    pub const fn battery() -> ScenarioSpec {
        ScenarioSpec {
            duty_period: 6,
            duty_frac: 0.5,
            sleep_prob: 0.05,
            ..ScenarioSpec::none()
        }
    }

    /// Diurnal regime: the 3× band-edge incident recurs within every
    /// 6-epoch period instead of striking once mid-study.
    pub const fn diurnal() -> ScenarioSpec {
        ScenarioSpec {
            incident_factor: 3.0,
            incident_period: 6,
            ..ScenarioSpec::none()
        }
    }

    /// Staggered incident: the 3× regime switch rolls across four
    /// device-index groups, one epoch apart, instead of striking the whole
    /// fleet at once.
    pub const fn staggered() -> ScenarioSpec {
        ScenarioSpec {
            incident_factor: 3.0,
            incident_stagger: 4,
            ..ScenarioSpec::none()
        }
    }

    /// `true` when the scenario can perturb the run at all. The engine is
    /// only constructed for active scenarios, so `--scenario none` keeps
    /// the healthy path bit-identical to a scenario-free build.
    pub fn is_active(&self) -> bool {
        self.leave_prob > 0.0
            || self.join_prob > 0.0
            || self.reboot_prob > 0.0
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.has_incident()
            || self.cost_spread != 1.0
            || self.has_dormancy()
    }

    /// `true` when the scenario can put devices to scheduled sleep.
    pub fn has_dormancy(&self) -> bool {
        self.duty_period > 0 || self.sleep_prob > 0.0
    }

    /// `true` when a regime incident is configured.
    pub fn has_incident(&self) -> bool {
        self.incident_factor != 1.0
    }

    /// Canonical human-readable label: the active components, `+`-joined.
    pub fn label(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.leave_prob > 0.0 || self.join_prob > 0.0 || self.reboot_prob > 0.0 {
            parts.push("churn");
        }
        if self.has_incident() {
            parts.push(if self.incident_period > 0 { "diurnal" } else { "incident" });
            if self.incident_stagger > 1 {
                parts.push("staggered");
            }
        }
        if self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0 {
            parts.push("lossy-reports");
        }
        if self.has_dormancy() {
            parts.push(if self.sleep_prob > 0.0 { "battery" } else { "duty" });
        }
        if self.cost_spread != 1.0 {
            parts.push("cost-skew");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Valid preset names, for diagnostics.
    pub const PRESETS: &'static str =
        "none, churn, incident, lossy-reports, cost-skew, duty, battery, diurnal, staggered";

    /// Valid `key=value` override keys, for diagnostics.
    pub const KEYS: &'static str = "leave, join, reboot, drop, dup, delay, sleep, \
         duty-period, duty-frac, incident, incident-start, incident-end, \
         incident-period, incident-stagger, cost-spread";

    /// Parses a `--scenario` argument: `+`-separated terms, each either a
    /// preset name ([`ScenarioSpec::PRESETS`]) or a `key=value` override
    /// ([`ScenarioSpec::KEYS`]; `incident` is the regime factor). Terms
    /// apply left to right onto the healthy scenario. The seed is *not*
    /// part of the string — set it via `--scenario-seed` / the field.
    ///
    /// # Errors
    /// A human-readable message naming the offending term and listing the
    /// valid presets and keys.
    pub fn parse(s: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec::none();
        for term in s.split('+') {
            let term = term.trim();
            match term {
                "" | "none" => {}
                "churn" => spec.merge(&ScenarioSpec::churn()),
                "incident" => spec.merge(&ScenarioSpec::incident()),
                "lossy-reports" | "lossy" => spec.merge(&ScenarioSpec::lossy_reports()),
                "cost-skew" => spec.merge(&ScenarioSpec::cost_skew()),
                "duty" => spec.merge(&ScenarioSpec::duty()),
                "battery" => spec.merge(&ScenarioSpec::battery()),
                "diurnal" => spec.merge(&ScenarioSpec::diurnal()),
                "staggered" => spec.merge(&ScenarioSpec::staggered()),
                _ => {
                    let (key, value) = term.split_once('=').ok_or_else(|| {
                        format!(
                            "unknown scenario term '{term}' — presets: {}; \
                             key=value overrides: {}",
                            Self::PRESETS,
                            Self::KEYS
                        )
                    })?;
                    let v: f64 = value
                        .parse()
                        .map_err(|_| format!("scenario term '{term}': bad number '{value}'"))?;
                    let whole = |v: f64| -> Result<usize, String> {
                        if v < 0.0 || v.fract() != 0.0 {
                            Err(format!(
                                "scenario term '{term}': '{value}' must be a whole number of epochs"
                            ))
                        } else {
                            Ok(v as usize)
                        }
                    };
                    match key {
                        "leave" => spec.leave_prob = v,
                        "join" => spec.join_prob = v,
                        "reboot" => spec.reboot_prob = v,
                        "drop" => spec.drop_prob = v,
                        "dup" => spec.dup_prob = v,
                        "delay" => spec.delay_prob = v,
                        "sleep" => spec.sleep_prob = v,
                        "duty-frac" => spec.duty_frac = v,
                        "duty-period" => spec.duty_period = whole(v)?,
                        "incident" => spec.incident_factor = v,
                        "incident-start" => spec.incident_start_frac = v,
                        "incident-end" => spec.incident_end_frac = v,
                        "incident-period" => spec.incident_period = whole(v)?,
                        "incident-stagger" => spec.incident_stagger = whole(v)?,
                        "cost-spread" => spec.cost_spread = v,
                        _ => {
                            return Err(format!(
                                "unknown scenario key '{key}' in term '{term}' — \
                                 valid keys: {}; presets: {}",
                                Self::KEYS,
                                Self::PRESETS
                            ))
                        }
                    }
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Overlays `other`'s non-default fields onto `self` (preset
    /// composition: `churn+incident` is churn's probabilities plus
    /// incident's regime switch).
    fn merge(&mut self, other: &ScenarioSpec) {
        let base = ScenarioSpec::none();
        macro_rules! take {
            ($f:ident) => {
                if other.$f != base.$f {
                    self.$f = other.$f;
                }
            };
        }
        take!(leave_prob);
        take!(join_prob);
        take!(reboot_prob);
        take!(drop_prob);
        take!(dup_prob);
        take!(delay_prob);
        take!(incident_factor);
        take!(incident_start_frac);
        take!(incident_end_frac);
        take!(incident_period);
        take!(incident_stagger);
        take!(duty_period);
        take!(duty_frac);
        take!(sleep_prob);
        take!(cost_spread);
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("leave", self.leave_prob),
            ("join", self.join_prob),
            ("reboot", self.reboot_prob),
            ("drop", self.drop_prob),
            ("dup", self.dup_prob),
            ("delay", self.delay_prob),
            ("sleep", self.sleep_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("scenario {name} probability {p} outside [0, 1]"));
            }
        }
        if !(self.incident_factor > 0.0 && self.incident_factor.is_finite()) {
            return Err(format!(
                "scenario incident factor must be positive, got {}",
                self.incident_factor
            ));
        }
        if !(0.0..=1.0).contains(&self.incident_start_frac)
            || !(0.0..=1.0).contains(&self.incident_end_frac)
            || self.incident_end_frac < self.incident_start_frac
        {
            return Err(format!(
                "scenario incident window [{}, {}] must be ordered fractions of the run",
                self.incident_start_frac, self.incident_end_frac
            ));
        }
        if !(self.cost_spread >= 1.0 && self.cost_spread.is_finite()) {
            return Err(format!(
                "scenario cost spread must be >= 1, got {}",
                self.cost_spread
            ));
        }
        if !(0.0..=1.0).contains(&self.duty_frac) {
            return Err(format!(
                "scenario duty-frac {} outside [0, 1]",
                self.duty_frac
            ));
        }
        Ok(())
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec::none()
    }
}

/// Per-kind salts so every event class draws an independent uniform stream.
const SALT_LEAVE: u64 = 0x1EAF_0001;
const SALT_JOIN: u64 = 0x3011_0002;
const SALT_REBOOT: u64 = 0xB007_0003;
const SALT_DROP: u64 = 0xD209_0004;
const SALT_DUP: u64 = 0xD4B1_0005;
const SALT_DELAY: u64 = 0xDE1A_0006;
const SALT_COST: u64 = 0xC057_0007;
const SALT_SLEEP: u64 = 0x51EE_0008;
const SALT_DUTY: u64 = 0xD077_0009;

/// SplitMix64 finalizer over `(seed, salt, epoch, index)` — the same mixer
/// trace synthesis uses, so nearby epochs/devices share nothing.
fn mix(seed: u64, salt: u64, epoch: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(epoch.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the mixed hash (53 mantissa bits).
fn unit(seed: u64, salt: u64, epoch: u64, index: u64) -> f64 {
    (mix(seed, salt, epoch, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Running totals of what a scenario dealt over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounters {
    /// Devices that went offline (leave events).
    pub leaves: usize,
    /// Offline devices that came back (rejoin events).
    pub joins: usize,
    /// Reboots, counting both in-place reboots and rejoins.
    pub reboots: usize,
    /// Device-epochs spent offline.
    pub absent_epochs: usize,
    /// Reports lost in flight.
    pub dropped_reports: usize,
    /// Reports duplicated in flight.
    pub duplicated_reports: usize,
    /// Reports that arrived too late to adapt on.
    pub delayed_reports: usize,
    /// Device-epochs spent in scheduled sleep (duty cycle / battery).
    pub dormant_epochs: usize,
}

/// What a scenario did to one policy run, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// Canonical scenario label (see [`ScenarioSpec::label`]).
    pub label: String,
    /// Scenario seed the fault schedule was drawn from.
    pub seed: u64,
    /// Event totals over the run.
    pub counters: ScenarioCounters,
    /// Incident phase, as an epoch range (`None` without an incident).
    pub incident: Option<Range<usize>>,
    /// Fleet mean coverage over the pre-incident epochs — the recovery
    /// baseline. `None` when there is no incident or no pre-incident epoch.
    pub baseline_coverage: Option<f64>,
    /// Epochs after the incident ends until fleet mean coverage regains
    /// 95% of the pre-incident baseline. `None` if it never recovers
    /// within the run (or there is no incident/baseline). The *fleet-mean*
    /// view; the reported recovery quantiles come from the per-device
    /// histogram below.
    pub time_to_recover: Option<usize>,
    /// Median per-device time-to-recover: epochs after a device's own
    /// incident exit until its coverage regains 95% of its pre-incident
    /// baseline, measured per device and summarized from an obs log-bucket
    /// histogram. `None` when no device recovered (or no incident).
    pub ttr_p50: Option<f64>,
    /// 95th-percentile per-device time-to-recover (the slow tail the fleet
    /// mean hides).
    pub ttr_p95: Option<f64>,
    /// Devices that saw an incident and regained their baseline in the run.
    pub recovered_devices: usize,
    /// Devices that saw an incident and never regained their baseline.
    pub unrecovered_devices: usize,
    /// Devices whose final request under-covers their ground-truth Nyquist
    /// requirement (coverage < 95%) at the end of the run — the aliasing
    /// deadlock census. Only meaningful under uncapped/ample budgets, where
    /// nothing but the controller itself limits the rate.
    pub deadlocked: usize,
    /// Fleet mean coverage per epoch (absent devices score 0) — the
    /// degradation/recovery trajectory the incident analysis reads.
    pub epoch_mean_coverage: Vec<f64>,
}

/// The deterministic fault dealer for one run: owns the spec and the
/// resolved incident boundaries. Stateless per epoch — every decision is a
/// hash of `(seed, salt, epoch, device index)`.
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    incident: Option<Range<usize>>,
}

impl ScenarioEngine {
    /// Builds the engine for a run of `epochs` lockstep epochs. With
    /// `incident_period > 0` the window fractions resolve against the
    /// period instead of the horizon (the window then recurs every period).
    pub fn new(spec: ScenarioSpec, epochs: usize) -> ScenarioEngine {
        let incident = spec.has_incident().then(|| {
            let span = if spec.incident_period > 0 {
                spec.incident_period
            } else {
                epochs
            };
            let start = (spec.incident_start_frac * span as f64).floor() as usize;
            let end = ((spec.incident_end_frac * span as f64).ceil() as usize).min(span);
            start..end.max(start)
        });
        ScenarioEngine { spec, incident }
    }

    /// The spec this engine deals from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Incident phase as an epoch range, when one is configured. For
    /// recurring incidents this is the window within each period; for
    /// staggered incidents it is group 0's window (group `g` shifts `g`
    /// epochs later) — per-device truth lives in
    /// [`ScenarioEngine::incident_active`].
    pub fn incident(&self) -> Option<Range<usize>> {
        self.incident.clone()
    }

    /// Whether device `index`'s signal runs in the incident regime during
    /// `epoch`. Pure in `(spec, epoch, index)`: stagger groups come from
    /// the device index (never from worker shards), so activity is
    /// identical for every thread count.
    pub fn incident_active(&self, epoch: usize, index: usize) -> bool {
        let Some(win) = &self.incident else {
            return false;
        };
        let groups = self.spec.incident_stagger.max(1);
        let Some(e) = epoch.checked_sub(index % groups) else {
            return false;
        };
        if self.spec.incident_period > 0 {
            win.contains(&(e % self.spec.incident_period))
        } else {
            win.contains(&e)
        }
    }

    /// Whether device `index` is scheduled asleep for `epoch` by its duty
    /// cycle (phase hashed per member so the fleet never naps in unison).
    fn duty_asleep(&self, epoch: u64, index: u64) -> bool {
        let period = self.spec.duty_period as u64;
        if period == 0 {
            return false;
        }
        let awake = ((self.spec.duty_frac * period as f64).ceil() as u64).clamp(1, period);
        if awake == period {
            return false;
        }
        let phase = mix(self.spec.seed, SALT_DUTY, 0, index) % period;
        (epoch + phase) % period >= awake
    }

    /// Deals device `index` its event for `epoch`, given whether it is
    /// currently active. Pure: same `(spec.seed, epoch, index, active)` ⇒
    /// same event, regardless of policy, grants, or thread count. Draws are
    /// gated on non-zero probabilities, so inactive event classes cost
    /// nothing and scenarios compose without perturbing each other.
    pub fn deal(&self, epoch: usize, index: usize, active: bool) -> DeviceEvent {
        let s = &self.spec;
        let (e, i) = (epoch as u64, index as u64);
        if !active {
            return if s.join_prob > 0.0 && unit(s.seed, SALT_JOIN, e, i) < s.join_prob {
                DeviceEvent::Reboot
            } else {
                DeviceEvent::Absent
            };
        }
        // Scheduled sleep trumps everything an awake device could do: a
        // sleeping device cannot drop or delay a report it never sends.
        if self.duty_asleep(e, i) {
            return DeviceEvent::Dormant;
        }
        if s.sleep_prob > 0.0 && unit(s.seed, SALT_SLEEP, e, i) < s.sleep_prob {
            return DeviceEvent::Dormant;
        }
        if s.leave_prob > 0.0 && unit(s.seed, SALT_LEAVE, e, i) < s.leave_prob {
            return DeviceEvent::Absent;
        }
        if s.reboot_prob > 0.0 && unit(s.seed, SALT_REBOOT, e, i) < s.reboot_prob {
            return DeviceEvent::Reboot;
        }
        if s.drop_prob > 0.0 && unit(s.seed, SALT_DROP, e, i) < s.drop_prob {
            return DeviceEvent::ReportDropped;
        }
        if s.delay_prob > 0.0 && unit(s.seed, SALT_DELAY, e, i) < s.delay_prob {
            return DeviceEvent::ReportDelayed;
        }
        if s.dup_prob > 0.0 && unit(s.seed, SALT_DUP, e, i) < s.dup_prob {
            return DeviceEvent::ReportDuplicated;
        }
        DeviceEvent::Healthy
    }

    /// Per-device cost factors, log-uniform over `[1/spread, spread]`, or
    /// `None` for a uniform fleet — the `None` keeps the healthy ledger
    /// arithmetic (and hence its bytes) untouched.
    pub fn cost_factors(&self, devices: usize) -> Option<Vec<f64>> {
        let spread = self.spec.cost_spread;
        if spread == 1.0 {
            return None;
        }
        Some(
            (0..devices)
                .map(|i| {
                    // u ∈ [−1, 1) ⇒ factor ∈ [1/spread, spread).
                    let u = 2.0 * unit(self.spec.seed, SALT_COST, 0, i as u64) - 1.0;
                    spread.powf(u)
                })
                .collect(),
        )
    }

    /// Recovery analysis over the run's per-epoch fleet mean coverage:
    /// `(baseline, time_to_recover)`. The baseline is the mean over
    /// pre-incident epochs; recovery is the first post-incident epoch whose
    /// fleet mean regains 95% of it, counted from the incident's end.
    pub fn recovery(&self, epoch_means: &[f64]) -> (Option<f64>, Option<usize>) {
        let Some(incident) = &self.incident else {
            return (None, None);
        };
        if incident.start == 0 || incident.start > epoch_means.len() {
            return (None, None);
        }
        let baseline =
            epoch_means[..incident.start].iter().sum::<f64>() / incident.start as f64;
        let threshold = baseline * 0.95;
        let recover = epoch_means
            .iter()
            .enumerate()
            .skip(incident.end)
            .find(|(_, &m)| m >= threshold)
            .map(|(e, _)| e - incident.end);
        (Some(baseline), recover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_presets_are_active() {
        assert!(!ScenarioSpec::none().is_active());
        for spec in [
            ScenarioSpec::churn(),
            ScenarioSpec::incident(),
            ScenarioSpec::lossy_reports(),
            ScenarioSpec::cost_skew(),
        ] {
            assert!(spec.is_active(), "{spec:?}");
        }
    }

    #[test]
    fn parse_presets_compose_with_plus() {
        let spec = ScenarioSpec::parse("churn+lossy-reports").unwrap();
        assert_eq!(spec.leave_prob, ScenarioSpec::churn().leave_prob);
        assert_eq!(spec.drop_prob, ScenarioSpec::lossy_reports().drop_prob);
        assert!(!spec.has_incident());
        assert_eq!(spec.label(), "churn+lossy-reports");
    }

    #[test]
    fn parse_key_value_overrides() {
        let spec = ScenarioSpec::parse("incident+incident=2.0+drop=0.1").unwrap();
        assert_eq!(spec.incident_factor, 2.0);
        assert_eq!(spec.drop_prob, 0.1);
        assert_eq!(ScenarioSpec::parse("none").unwrap(), ScenarioSpec::none());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(ScenarioSpec::parse("blizzard").is_err());
        assert!(ScenarioSpec::parse("drop=nope").is_err());
        assert!(ScenarioSpec::parse("drop=1.5").is_err());
        assert!(ScenarioSpec::parse("incident=0").is_err());
        assert!(ScenarioSpec::parse("cost-spread=0.5").is_err());
        assert!(ScenarioSpec::parse("incident-start=0.9+incident-end=0.1").is_err());
    }

    #[test]
    fn deal_is_pure_and_seed_sensitive() {
        let spec = ScenarioSpec {
            seed: 7,
            ..ScenarioSpec::churn()
        };
        let eng = ScenarioEngine::new(spec, 100);
        for epoch in 0..50 {
            for index in 0..40 {
                assert_eq!(
                    eng.deal(epoch, index, true),
                    eng.deal(epoch, index, true),
                    "deal must be pure"
                );
            }
        }
        let other = ScenarioEngine::new(ScenarioSpec { seed: 8, ..spec }, 100);
        let differs = (0..200).any(|e| {
            (0..40).any(|i| eng.deal(e, i, true) != other.deal(e, i, true))
        });
        assert!(differs, "seed must steer the schedule");
    }

    #[test]
    fn deal_rates_match_probabilities_roughly() {
        let spec = ScenarioSpec {
            seed: 3,
            ..ScenarioSpec::lossy_reports()
        };
        let eng = ScenarioEngine::new(spec, 1000);
        let mut dropped = 0usize;
        let mut total = 0usize;
        for epoch in 0..1000 {
            for index in 0..20 {
                total += 1;
                if eng.deal(epoch, index, true) == DeviceEvent::ReportDropped {
                    dropped += 1;
                }
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!(
            (0.035..0.065).contains(&rate),
            "drop rate {rate} far from 0.05"
        );
    }

    #[test]
    fn absent_devices_only_rejoin_or_stay_absent() {
        let spec = ScenarioSpec {
            seed: 11,
            ..ScenarioSpec::churn()
        };
        let eng = ScenarioEngine::new(spec, 100);
        for epoch in 0..100 {
            for index in 0..20 {
                let ev = eng.deal(epoch, index, false);
                assert!(
                    ev == DeviceEvent::Absent || ev == DeviceEvent::Reboot,
                    "absent device dealt {ev:?}"
                );
            }
        }
    }

    #[test]
    fn incident_boundaries_cover_the_configured_window() {
        let eng = ScenarioEngine::new(ScenarioSpec::incident(), 16);
        let inc = eng.incident().expect("incident configured");
        assert_eq!(inc, 4..10);
        assert!(ScenarioEngine::new(ScenarioSpec::churn(), 16).incident().is_none());
    }

    #[test]
    fn cost_factors_spread_around_unity() {
        let eng = ScenarioEngine::new(
            ScenarioSpec {
                seed: 5,
                ..ScenarioSpec::cost_skew()
            },
            10,
        );
        let f = eng.cost_factors(500).expect("skewed");
        assert!(f.iter().all(|&x| (0.25..=4.0).contains(&x)));
        let spread = f.iter().cloned().fold(f64::MIN, f64::max)
            / f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 4.0, "spread {spread} too tight");
        assert!(eng.cost_factors(0).is_some());
        let uniform = ScenarioEngine::new(ScenarioSpec::churn(), 10);
        assert!(uniform.cost_factors(500).is_none());
    }

    #[test]
    fn parse_errors_name_the_token_and_list_the_vocabulary() {
        let err = ScenarioSpec::parse("churn+blizzard").unwrap_err();
        assert!(err.contains("blizzard"), "{err}");
        assert!(err.contains("cost-skew"), "must list presets: {err}");
        assert!(err.contains("duty-period"), "must list keys: {err}");
        let err = ScenarioSpec::parse("sleet=0.1").unwrap_err();
        assert!(err.contains("sleet"), "{err}");
        assert!(err.contains("incident-stagger"), "must list keys: {err}");
        let err = ScenarioSpec::parse("duty-period=1.5").unwrap_err();
        assert!(err.contains("whole number"), "{err}");
    }

    #[test]
    fn duty_cycle_sleeps_the_configured_fraction_at_hashed_phases() {
        let spec = ScenarioSpec {
            seed: 9,
            ..ScenarioSpec::duty()
        };
        let eng = ScenarioEngine::new(spec, 64);
        let devices = 64;
        // Every member sleeps exactly 1 epoch in 4 (period 4, frac 0.75) …
        for i in 0..devices {
            let dormant: Vec<usize> = (0..64)
                .filter(|&e| eng.deal(e, i, true) == DeviceEvent::Dormant)
                .collect();
            assert_eq!(dormant.len(), 16, "device {i}: {dormant:?}");
            for w in dormant.windows(2) {
                assert_eq!(w[1] - w[0], 4, "sleep must recur every period");
            }
        }
        // … but not all at the same epoch: phases are hashed per member.
        let asleep_at_0 = (0..devices)
            .filter(|&i| eng.deal(0, i, true) == DeviceEvent::Dormant)
            .count();
        assert!(
            asleep_at_0 > 0 && asleep_at_0 < devices,
            "phases must scatter the naps, {asleep_at_0}/{devices} slept at once"
        );
    }

    #[test]
    fn battery_adds_unscheduled_sleep_on_top_of_the_duty_cycle() {
        let spec = ScenarioSpec {
            seed: 21,
            ..ScenarioSpec::battery()
        };
        let eng = ScenarioEngine::new(spec, 600);
        let mut dormant = 0usize;
        let mut total = 0usize;
        for epoch in 0..600 {
            for index in 0..20 {
                total += 1;
                if eng.deal(epoch, index, true) == DeviceEvent::Dormant {
                    dormant += 1;
                }
            }
        }
        // Scheduled half plus ~5% of the awake half ⇒ ~52.5%.
        let rate = dormant as f64 / total as f64;
        assert!((0.48..0.58).contains(&rate), "dormant rate {rate}");
    }

    #[test]
    fn diurnal_incident_recurs_every_period() {
        let eng = ScenarioEngine::new(ScenarioSpec::diurnal(), 24);
        // Period 6, fracs (0.25, 0.625) ⇒ active at offsets 1, 2, 3.
        assert_eq!(eng.incident(), Some(1..4));
        for epoch in 0..24 {
            let expect = (1..4).contains(&(epoch % 6));
            assert_eq!(eng.incident_active(epoch, 0), expect, "epoch {epoch}");
        }
    }

    #[test]
    fn staggered_incident_shifts_one_epoch_per_device_group() {
        let eng = ScenarioEngine::new(ScenarioSpec::staggered(), 16);
        let base = eng.incident().expect("incident configured");
        assert_eq!(base, 4..10);
        for index in 0..8 {
            let group = index % 4;
            for epoch in 0..16 {
                let expect = epoch >= group
                    && base.contains(&(epoch - group));
                assert_eq!(
                    eng.incident_active(epoch, index),
                    expect,
                    "device {index} epoch {epoch}"
                );
            }
        }
        // The non-staggered engine switches the whole fleet at once.
        let bulk = ScenarioEngine::new(ScenarioSpec::incident(), 16);
        for epoch in 0..16 {
            assert_eq!(
                bulk.incident_active(epoch, 0),
                bulk.incident_active(epoch, 7),
            );
            assert_eq!(bulk.incident_active(epoch, 0), (4..10).contains(&epoch));
        }
    }

    #[test]
    fn new_preset_labels_round_trip_through_parse() {
        for s in ["duty", "battery", "diurnal", "incident+staggered"] {
            let spec = ScenarioSpec::parse(s).unwrap();
            assert_eq!(spec.label(), s, "label must canonicalize {s}");
            assert_eq!(ScenarioSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn recovery_finds_the_first_post_incident_epoch_at_threshold() {
        let eng = ScenarioEngine::new(ScenarioSpec::incident(), 16);
        // Baseline epochs 0..4 at 0.9; incident dips; recovery at epoch 12.
        let means = [
            0.9, 0.9, 0.9, 0.9, // baseline
            0.5, 0.5, 0.5, 0.5, 0.5, 0.5, // incident 4..10
            0.7, 0.8, 0.88, 0.9, 0.9, 0.9, // recovery
        ];
        let (baseline, ttr) = eng.recovery(&means);
        assert!((baseline.unwrap() - 0.9).abs() < 1e-12);
        // 0.95 × 0.9 = 0.855 — first reached at epoch 12, two after the end.
        assert_eq!(ttr, Some(2));
        // Never recovering reports None.
        let flat = [0.9, 0.9, 0.9, 0.9, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(eng.recovery(&flat), (Some(0.9), None));
    }
}
