//! Fleet metrics plane: deterministic counters, the per-epoch flight
//! recorder, and the `--metrics-out` JSON-lines snapshot writer.
//!
//! Everything the engine counts is sorted into one of three **determinism
//! scopes**, and only the first is ever written to `--metrics-out`:
//!
//! * **Fleet scope** — thread-invariant by construction: controller action
//!   counts and FFT handle statistics are owned per member (each member's
//!   request sequence is simulation-determined), scenario counts are dealt
//!   serially, scheduler statistics come from the serial `allocate` call,
//!   and the grant histogram is fed serially in device order. Snapshots
//!   built from these are **byte-identical for any `--threads N`**.
//! * **Topology scope** — honest numbers that depend on the worker split
//!   (per-shard FFT cache evictions, scratch bytes, worker count). Reported
//!   on stderr via `--timing` only, never in the JSON-lines stream.
//! * **Wall scope** — phase timings and peak RSS. stderr only.
//!
//! Collection is **always on and non-perturbing**: the per-worker
//! [`ShardMetrics`] tallies are O(1) integer bumps against a per-member step
//! that does milliseconds of spectral work, and they are merged **in shard
//! order** (never completion order). A [`MetricsRecorder`] — present only
//! when the caller asked for output — adds the journal, the grant histogram,
//! and the JSON-lines emission on top; simulation stdout stays byte-identical
//! whether a recorder is attached or not, and the whole metrics path of a
//! warm epoch — tallies, histogram, journal, emission — performs zero heap
//! allocations (`crates/analysis/tests/metrics_steady_state.rs`).

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;

use sweetspot_core::adaptive::EpochAction;
use sweetspot_dsp::fft::FftHandleStats;
use sweetspot_monitor::EpochAccount;
use sweetspot_obs::{json, Counter, Histogram, Journal, JournalEvent};

use super::scenario::{DeviceEvent, ScenarioCounters};
use super::scheduler::SchedStats;

/// Controller state-machine transitions, one counter per
/// [`EpochAction`] variant, plus the verification split. Fleet scope: each
/// member's actions are a pure function of its own simulated history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerCounters {
    /// Aliasing escalations up the probe ladder.
    pub probe: Counter,
    /// Remembered-max re-ramps (the memory jump beat the ladder).
    pub reramp: Counter,
    /// Probe-mode epochs that found their rate and settled.
    pub settle: Counter,
    /// Steady-state request raises toward a risen target.
    pub raise: Counter,
    /// Hysteresis-approved decreases.
    pub cut: Counter,
    /// Epochs that held the request.
    pub hold: Counter,
    /// Epochs with no adaptation at all (missed or delayed reports).
    pub defer: Counter,
    /// Epochs whose §4.1 dual-rate detector actually ran.
    pub verified: Counter,
    /// Epochs stepped without a detector verdict.
    pub unverified: Counter,
}

impl ControllerCounters {
    /// Tallies one stepped epoch.
    #[inline]
    pub fn record(&mut self, action: EpochAction, verified: bool) {
        match action {
            EpochAction::Probe => self.probe.inc(),
            EpochAction::Reramp => self.reramp.inc(),
            EpochAction::Settle => self.settle.inc(),
            EpochAction::Raise => self.raise.inc(),
            EpochAction::Cut => self.cut.inc(),
            EpochAction::Hold => self.hold.inc(),
            EpochAction::Defer => self.defer.inc(),
        }
        if verified {
            self.verified.inc();
        } else {
            self.unverified.inc();
        }
    }

    /// Folds another shard's counts into this one.
    pub fn merge(&mut self, other: &ControllerCounters) {
        self.probe.merge(other.probe);
        self.reramp.merge(other.reramp);
        self.settle.merge(other.settle);
        self.raise.merge(other.raise);
        self.cut.merge(other.cut);
        self.hold.merge(other.hold);
        self.defer.merge(other.defer);
        self.verified.merge(other.verified);
        self.unverified.merge(other.unverified);
    }

    /// Total member-epochs stepped (every action is exactly one step, so
    /// this also equals `verified + unverified`).
    pub fn stepped(&self) -> u64 {
        self.probe.get()
            + self.reramp.get()
            + self.settle.get()
            + self.raise.get()
            + self.cut.get()
            + self.hold.get()
            + self.defer.get()
    }
}

/// Scenario events as the *workers* experienced them — the applied side of
/// the dealt-vs-applied cross-check (the CI smoke asserts these equal the
/// serial [`ScenarioCounters`] kind for kind). Fleet scope: which worker a
/// device lands on never changes what was dealt to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppliedCounters {
    /// Device-epochs stepped as offline (no samples, no report).
    pub absent_epochs: Counter,
    /// Epochs stepped from freshly rebooted state.
    pub reboot_steps: Counter,
    /// Reports lost in flight (missing-epoch semantics applied).
    pub dropped_reports: Counter,
    /// Reports that arrived too late to adapt on.
    pub delayed_reports: Counter,
    /// Reports billed twice.
    pub duplicated_reports: Counter,
    /// Device-epochs stepped as scheduled sleep (duty cycle / battery).
    pub dormant_epochs: Counter,
}

impl AppliedCounters {
    /// Tallies what one member-epoch actually applied.
    #[inline]
    pub fn record(&mut self, event: DeviceEvent) {
        match event {
            DeviceEvent::Absent => self.absent_epochs.inc(),
            DeviceEvent::Reboot => self.reboot_steps.inc(),
            DeviceEvent::ReportDropped => self.dropped_reports.inc(),
            DeviceEvent::ReportDelayed => self.delayed_reports.inc(),
            DeviceEvent::ReportDuplicated => self.duplicated_reports.inc(),
            DeviceEvent::Dormant => self.dormant_epochs.inc(),
            DeviceEvent::Healthy => {}
        }
    }

    /// Folds another shard's counts into this one.
    pub fn merge(&mut self, other: &AppliedCounters) {
        self.absent_epochs.merge(other.absent_epochs);
        self.reboot_steps.merge(other.reboot_steps);
        self.dropped_reports.merge(other.dropped_reports);
        self.delayed_reports.merge(other.delayed_reports);
        self.duplicated_reports.merge(other.duplicated_reports);
        self.dormant_epochs.merge(other.dormant_epochs);
    }
}

/// Watchdog / recovery-plane tallies of one policy run — present only when
/// `--recovery-budget-frac > 0` (the watchdog is otherwise never built, so
/// a zero-frac run's outputs stay bit-identical to a pre-watchdog engine).
/// Fleet scope: the watchdog pass runs serially in device order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WatchdogCounters {
    /// Re-probes forced over the run ([`begin_reprobe`]).
    ///
    /// [`begin_reprobe`]: sweetspot_core::adaptive::AdaptiveSampler::begin_reprobe
    pub reprobes: u64,
    /// Re-probe attempts deferred because the epoch's recovery pool was
    /// already spent — the admission control that keeps recovery from
    /// starving healthy devices.
    pub starved: u64,
    /// Cumulative recovery-slice spend in cost units, **on top of** the
    /// ordinary budget (the ledger's `granted` excludes it by design).
    pub recovery_granted: f64,
    /// Latest epoch's health census: members classified healthy.
    pub healthy: u64,
    /// Latest epoch's census: members re-ramping or probing.
    pub recovering: u64,
    /// Latest epoch's census: members settled below their remembered max
    /// long enough to suspect an aliasing deadlock.
    pub suspect: u64,
    /// Latest epoch's census: members in scheduled sleep.
    pub dormant: u64,
}

/// One worker's metric tallies, owned by its [`ShardState`] and bumped
/// inline during the step loop — no locks, no atomics, no allocation. The
/// engine folds shards together **in shard order** whenever a snapshot or
/// summary is built; since every field merges by addition, the totals are
/// identical for any shard split.
///
/// [`ShardState`]: super::run_policy
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Controller transitions stepped on this shard.
    pub controller: ControllerCounters,
    /// Scenario events this shard's members actually applied.
    pub applied: AppliedCounters,
}

impl ShardMetrics {
    /// Folds another shard's tallies into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.controller.merge(&other.controller);
        self.applied.merge(&other.applied);
    }
}

/// Fleet-scope metric totals of one finished policy run — always computed
/// (the counters are on whether or not a recorder is attached) and carried
/// on [`PolicyOutcome`](super::PolicyOutcome). Every field is
/// thread-invariant; tests pin summaries equal across `--threads N`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSummary {
    /// Controller transitions, merged over shards in shard order.
    pub controller: ControllerCounters,
    /// Scenario events applied, merged over shards in shard order.
    pub applied: AppliedCounters,
    /// FFT planner handle statistics summed over members in device order
    /// (`lookups == hits + misses` by construction).
    pub fft: FftHandleStats,
    /// Water-fill order-maintenance work (zeros for stateless policies).
    pub sched: SchedStats,
    /// Watchdog tallies (`None` when `--recovery-budget-frac` is 0 and no
    /// watchdog ran).
    pub watchdog: Option<WatchdogCounters>,
}

/// Everything one epoch snapshot needs, bundled by the engine at emission
/// time. All fields are fleet scope.
#[derive(Debug)]
pub struct EpochSnapshot<'a> {
    /// Stable policy name (`uncapped` | `uniform` | `fair` | `waterfill`).
    pub policy: &'static str,
    /// Budget per epoch in cost units (`f64::INFINITY` emits as `null`).
    pub budget: f64,
    /// Fleet size.
    pub devices: usize,
    /// This epoch's ledger account.
    pub account: &'a EpochAccount,
    /// Shard tallies merged in shard order.
    pub shard: ShardMetrics,
    /// FFT handle statistics summed over members in device order.
    pub fft: FftHandleStats,
    /// Scheduler order-maintenance statistics.
    pub sched: SchedStats,
    /// Serially dealt scenario totals (`None` on healthy runs — the
    /// snapshot then omits the `scenario` object entirely).
    pub dealt: Option<&'a ScenarioCounters>,
    /// Watchdog tallies (`None` when no watchdog ran — the snapshot then
    /// omits the `watchdog` object entirely, keeping zero-frac JSONL
    /// byte-identical to a pre-watchdog build).
    pub watchdog: Option<WatchdogCounters>,
}

/// Journal tag for a controller action (`Hold` is the steady-state no-op
/// and is never journaled; it would drown the ring).
pub fn action_kind(action: EpochAction) -> Option<&'static str> {
    match action {
        EpochAction::Probe => Some("probe"),
        EpochAction::Reramp => Some("reramp"),
        EpochAction::Settle => Some("settle"),
        EpochAction::Raise => Some("raise"),
        EpochAction::Cut => Some("cut"),
        EpochAction::Defer => Some("defer"),
        EpochAction::Hold => None,
    }
}

/// Flight-recorder capacity: events kept between snapshot emissions. Beyond
/// this the oldest events are overwritten (and counted as dropped) — a
/// deterministic bound because the ring is fed serially in device order.
pub const JOURNAL_CAPACITY: usize = 512;

/// Grant histogram shape: rates from 1 µHz to 100 Hz across 96 geometric
/// buckets (≈19% relative width). Grants of 0.0 (absent devices) land in
/// the underflow catch-all.
const GRANT_HIST_LO: f64 = 1e-6;
const GRANT_HIST_HI: f64 = 1e2;
const GRANT_HIST_BUCKETS: usize = 96;

/// The `--metrics-out` writer: owns the flight-recorder ring, the per-window
/// grant histogram, and the reused line buffer every snapshot is formatted
/// into. One recorder serves a whole frontier sweep — each line carries its
/// policy and budget — with per-run state reset by
/// [`begin_run`](Self::begin_run).
///
/// Output is JSON lines: `type:"event"` rows (the journal drained oldest
/// first) followed by one `type:"epoch"` row per emitted epoch. Emission
/// happens on every [`every`](Self::set_every)-th epoch and always on a
/// run's last epoch; the grant histogram covers the window since the
/// previous emission.
///
/// Write errors are latched on first occurrence and surfaced by
/// [`finish`](Self::finish) — the simulation itself never fails over
/// observability.
#[derive(Debug)]
pub struct MetricsRecorder {
    /// `Some` writes to a file; `None` accumulates in [`buffer`](Self::buffer).
    sink: Option<BufWriter<File>>,
    buffer: String,
    /// Reused per-line scratch; grows once to its high-water mark.
    line: String,
    every: usize,
    journal: Journal,
    grants: Histogram,
    policy: &'static str,
    budget: f64,
    events_total: u64,
    events_dropped: u64,
    error: Option<io::Error>,
}

impl MetricsRecorder {
    fn new(sink: Option<BufWriter<File>>) -> MetricsRecorder {
        MetricsRecorder {
            sink,
            buffer: String::new(),
            line: String::new(),
            every: 1,
            journal: Journal::with_capacity(JOURNAL_CAPACITY),
            grants: Histogram::log_scale(GRANT_HIST_LO, GRANT_HIST_HI, GRANT_HIST_BUCKETS),
            policy: "",
            budget: f64::INFINITY,
            events_total: 0,
            events_dropped: 0,
            error: None,
        }
    }

    /// A recorder writing JSON lines to `path` (truncating).
    pub fn to_path(path: &Path) -> io::Result<MetricsRecorder> {
        Ok(MetricsRecorder::new(Some(BufWriter::new(File::create(path)?))))
    }

    /// A recorder accumulating into an in-memory buffer — for tests and
    /// benchmarks. The buffer grows amortized; call
    /// [`reserve`](Self::reserve) first when measuring allocations.
    pub fn in_memory() -> MetricsRecorder {
        MetricsRecorder::new(None)
    }

    /// Emit a snapshot every `k`-th epoch (the last epoch always emits).
    ///
    /// # Panics
    /// Panics when `k` is zero.
    pub fn set_every(&mut self, k: usize) {
        assert!(k > 0, "--metrics-every wants a positive epoch count");
        self.every = k;
    }

    /// Pre-grows the in-memory buffer and line scratch.
    pub fn reserve(&mut self, bytes: usize) {
        self.buffer.reserve(bytes);
        self.line.reserve(bytes.min(16 * 1024));
    }

    /// Everything written so far in in-memory mode (empty in file mode).
    pub fn buffer(&self) -> &str {
        &self.buffer
    }

    /// Journal events recorded this run (kept + dropped).
    pub fn journal_events(&self) -> u64 {
        self.events_total + self.journal.total()
    }

    /// Journal events overwritten before they could be emitted this run.
    pub fn journal_dropped(&self) -> u64 {
        self.events_dropped + self.journal.dropped()
    }

    /// Starts a policy run: stamps the per-line context and resets the
    /// journal, histogram, and drop accounting. Engine-facing.
    pub fn begin_run(&mut self, policy: &'static str, budget: f64) {
        self.policy = policy;
        self.budget = budget;
        self.journal.clear();
        self.grants.reset();
        self.events_total = 0;
        self.events_dropped = 0;
    }

    /// Feeds one grant into the distribution histogram. Engine-facing:
    /// called serially in device order.
    #[inline]
    pub fn record_grant(&mut self, grant: f64) {
        self.grants.record(grant);
    }

    /// Records a flight-recorder event. Engine-facing: called serially in
    /// device order within each epoch.
    #[inline]
    pub fn journal(&mut self, epoch: u32, device: u32, kind: &'static str, value: f64) {
        self.journal.record(JournalEvent { epoch, device, kind, value });
    }

    /// Whether `epoch` (0-based, of `epochs` total) is a snapshot epoch.
    pub fn should_emit(&self, epoch: usize, epochs: usize) -> bool {
        (epoch + 1).is_multiple_of(self.every) || epoch + 1 == epochs
    }

    /// Writes the journal's pending events and one epoch snapshot line,
    /// then resets the journal and the grant-window histogram.
    pub fn emit_epoch(&mut self, snap: &EpochSnapshot<'_>) {
        // Drain the flight recorder: one event line each, oldest first.
        // Indexed access (events are `Copy`) instead of `iter()` so each
        // lookup's borrow ends before `write_line` re-borrows — the ring
        // never moves and nothing allocates.
        for i in 0..self.journal.len() {
            let ev = self.journal.get(i).expect("index < len");
            self.line.clear();
            self.line.push_str("{\"type\":\"event\",\"policy\":");
            json::string_into(&mut self.line, snap.policy);
            self.line.push_str(",\"budget\":");
            json::number_into(&mut self.line, self.budget);
            self.line.push_str(",\"epoch\":");
            json::uint_into(&mut self.line, ev.epoch as u64);
            self.line.push_str(",\"device\":");
            json::uint_into(&mut self.line, ev.device as u64);
            self.line.push_str(",\"kind\":");
            json::string_into(&mut self.line, ev.kind);
            self.line.push_str(",\"value\":");
            json::number_into(&mut self.line, ev.value);
            self.line.push('}');
            self.write_line();
        }
        self.events_total += self.journal.total();
        self.events_dropped += self.journal.dropped();
        self.journal.clear();

        self.line.clear();
        self.format_epoch_line(snap);
        self.write_line();
        self.grants.reset();
    }

    fn format_epoch_line(&mut self, snap: &EpochSnapshot<'_>) {
        let out = &mut self.line;
        out.push_str("{\"type\":\"epoch\",\"policy\":");
        json::string_into(out, snap.policy);
        out.push_str(",\"budget\":");
        json::number_into(out, self.budget);
        out.push_str(",\"epoch\":");
        json::uint_into(out, snap.account.epoch as u64);
        out.push_str(",\"devices\":");
        json::uint_into(out, snap.devices as u64);
        out.push_str(",\"ledger\":{\"demanded\":");
        json::number_into(out, snap.account.demanded);
        out.push_str(",\"granted\":");
        json::number_into(out, snap.account.granted);
        out.push_str(",\"spent\":");
        json::number_into(out, snap.account.spent);
        out.push_str(",\"samples\":");
        json::uint_into(out, snap.account.samples as u64);
        out.push_str(",\"throttled_devices\":");
        json::uint_into(out, snap.account.throttled_devices as u64);
        out.push_str("},\"controller\":{");
        let c = &snap.shard.controller;
        for (i, (name, counter)) in [
            ("probe", c.probe),
            ("reramp", c.reramp),
            ("settle", c.settle),
            ("raise", c.raise),
            ("cut", c.cut),
            ("hold", c.hold),
            ("defer", c.defer),
            ("verified", c.verified),
            ("unverified", c.unverified),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json::string_into(out, name);
            out.push(':');
            json::uint_into(out, counter.get());
        }
        out.push_str("},\"fft\":{\"lookups\":");
        json::uint_into(out, snap.fft.lookups.get());
        out.push_str(",\"hits\":");
        json::uint_into(out, snap.fft.hits.get());
        out.push_str(",\"misses\":");
        json::uint_into(out, snap.fft.misses.get());
        out.push_str("},\"sched\":{\"untouched_epochs\":");
        json::uint_into(out, snap.sched.untouched_epochs);
        out.push_str(",\"nochurn_epochs\":");
        json::uint_into(out, snap.sched.nochurn_epochs);
        out.push_str(",\"incremental_repairs\":");
        json::uint_into(out, snap.sched.incremental_repairs);
        out.push_str(",\"full_resorts\":");
        json::uint_into(out, snap.sched.full_resorts);
        out.push_str(",\"changed_keys\":");
        json::uint_into(out, snap.sched.changed_keys);
        out.push('}');
        if let Some(wd) = &snap.watchdog {
            out.push_str(",\"watchdog\":{\"reprobes\":");
            json::uint_into(out, wd.reprobes);
            out.push_str(",\"starved\":");
            json::uint_into(out, wd.starved);
            out.push_str(",\"recovery_granted\":");
            json::number_into(out, wd.recovery_granted);
            out.push_str(",\"healthy\":");
            json::uint_into(out, wd.healthy);
            out.push_str(",\"recovering\":");
            json::uint_into(out, wd.recovering);
            out.push_str(",\"suspect\":");
            json::uint_into(out, wd.suspect);
            out.push_str(",\"dormant\":");
            json::uint_into(out, wd.dormant);
            out.push('}');
        }
        if let Some(dealt) = snap.dealt {
            let a = &snap.shard.applied;
            out.push_str(",\"scenario\":{\"dealt\":{\"leaves\":");
            json::uint_into(out, dealt.leaves as u64);
            out.push_str(",\"joins\":");
            json::uint_into(out, dealt.joins as u64);
            out.push_str(",\"reboots\":");
            json::uint_into(out, dealt.reboots as u64);
            out.push_str(",\"absent_epochs\":");
            json::uint_into(out, dealt.absent_epochs as u64);
            out.push_str(",\"dropped_reports\":");
            json::uint_into(out, dealt.dropped_reports as u64);
            out.push_str(",\"duplicated_reports\":");
            json::uint_into(out, dealt.duplicated_reports as u64);
            out.push_str(",\"delayed_reports\":");
            json::uint_into(out, dealt.delayed_reports as u64);
            out.push_str(",\"dormant_epochs\":");
            json::uint_into(out, dealt.dormant_epochs as u64);
            out.push_str("},\"applied\":{\"absent_epochs\":");
            json::uint_into(out, a.absent_epochs.get());
            out.push_str(",\"reboot_steps\":");
            json::uint_into(out, a.reboot_steps.get());
            out.push_str(",\"dropped_reports\":");
            json::uint_into(out, a.dropped_reports.get());
            out.push_str(",\"delayed_reports\":");
            json::uint_into(out, a.delayed_reports.get());
            out.push_str(",\"duplicated_reports\":");
            json::uint_into(out, a.duplicated_reports.get());
            out.push_str(",\"dormant_epochs\":");
            json::uint_into(out, a.dormant_epochs.get());
            out.push_str("}}");
        }
        out.push_str(",\"grants\":{\"count\":");
        json::uint_into(out, self.grants.count());
        out.push_str(",\"sum\":");
        json::number_into(out, self.grants.sum());
        out.push_str(",\"min\":");
        json::number_into(out, self.grants.min());
        out.push_str(",\"max\":");
        json::number_into(out, self.grants.max());
        out.push_str(",\"p10\":");
        json::number_into(out, self.grants.quantile(0.10));
        out.push_str(",\"p50\":");
        json::number_into(out, self.grants.quantile(0.50));
        out.push_str(",\"p90\":");
        json::number_into(out, self.grants.quantile(0.90));
        out.push_str(",\"p99\":");
        json::number_into(out, self.grants.quantile(0.99));
        out.push_str("},\"journal\":{\"events\":");
        json::uint_into(out, self.events_total);
        out.push_str(",\"dropped\":");
        json::uint_into(out, self.events_dropped);
        out.push_str("}}");
    }

    fn write_line(&mut self) {
        match &mut self.sink {
            Some(w) => {
                if self.error.is_none() {
                    let res = w
                        .write_all(self.line.as_bytes())
                        .and_then(|()| w.write_all(b"\n"));
                    if let Err(e) = res {
                        self.error = Some(e);
                    }
                }
            }
            None => {
                self.buffer.push_str(&self.line);
                self.buffer.push('\n');
            }
        }
    }

    /// Flushes the sink and surfaces the first write error, if any.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if let Some(w) = &mut self.sink {
            w.flush()?;
        }
        Ok(())
    }
}

/// The `--timing` stderr report, rendered from an [`sweetspot_obs`] gauge
/// registry so the numbers the operator reads are the same values a
/// machine-readable consumer would get — text and snapshots can never
/// disagree. Wall and topology scope only: nothing here is, or needs to be,
/// thread-invariant.
pub fn timing_report(
    frontier: &super::FleetFrontier,
    peak_rss_kb: Option<u64>,
) -> String {
    use sweetspot_obs::Gauge;

    let t = frontier.timing();
    let mut build = Gauge::new();
    let mut step = Gauge::new();
    let mut schedule = Gauge::new();
    build.set(t.build.as_secs_f64());
    step.set(t.step.as_secs_f64());
    schedule.set(t.schedule.as_secs_f64());
    let total = (build.get() + step.get() + schedule.get()).max(f64::MIN_POSITIVE);
    let pct = |g: Gauge| 100.0 * g.get() / total;

    let mut out = format!(
        "timing: build {:.3}s ({:.0}%) | step {:.3}s ({:.0}%) | schedule {:.3}s ({:.0}%) \
         | total {:.3}s across workers over {} policy points\n",
        build.get(),
        pct(build),
        step.get(),
        pct(step),
        schedule.get(),
        pct(schedule),
        total,
        frontier.points.len()
    );
    // Engine-side accounting: durable member state vs worker scratch (the
    // memory-wall split), from the last simulated point. Topology scope —
    // per-shard caches and scratch depend on the worker split.
    if let Some(point) = frontier.points.last() {
        let m = point.outcome.memory;
        let mut member_bytes = Gauge::new();
        let mut scratch_bytes = Gauge::new();
        let mut fft_bytes = Gauge::new();
        member_bytes.set(m.member_bytes as f64);
        scratch_bytes.set(m.scratch_bytes as f64);
        fft_bytes.set(m.fft_table_bytes as f64);
        out.push_str(&format!(
            "memory: members {:.1} MB ({:.0} B/device) | worker scratch {:.1} MB \
             | fft tables {:.1} MB over {} shard(s)\n",
            member_bytes.get() / 1e6,
            m.bytes_per_member(point.outcome.devices),
            scratch_bytes.get() / 1e6,
            fft_bytes.get() / 1e6,
            m.workers,
        ));
    }
    // Whole-process peak (Linux VmHWM; omitted where unavailable). Wall
    // scope.
    if let Some(kb) = peak_rss_kb {
        out.push_str(&format!("memory: peak RSS {kb} kB (VmHWM)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_monitor::EpochAccount;

    fn account() -> EpochAccount {
        EpochAccount {
            epoch: 3,
            budget: 40.0,
            demanded: 55.5,
            granted: 40.0,
            samples: 1234,
            spent: 39.5,
            throttled_devices: 7,
        }
    }

    #[test]
    fn controller_counters_tally_and_merge() {
        let mut a = ControllerCounters::default();
        a.record(EpochAction::Probe, true);
        a.record(EpochAction::Hold, false);
        a.record(EpochAction::Cut, true);
        let mut b = ControllerCounters::default();
        b.record(EpochAction::Hold, true);
        b.merge(&a);
        assert_eq!(b.probe.get(), 1);
        assert_eq!(b.hold.get(), 2);
        assert_eq!(b.cut.get(), 1);
        assert_eq!(b.verified.get(), 3);
        assert_eq!(b.unverified.get(), 1);
        assert_eq!(b.stepped(), 4);
        assert_eq!(b.stepped(), b.verified.get() + b.unverified.get());
    }

    #[test]
    fn applied_counters_ignore_healthy_steps() {
        let mut a = AppliedCounters::default();
        for ev in [
            DeviceEvent::Healthy,
            DeviceEvent::Absent,
            DeviceEvent::Reboot,
            DeviceEvent::ReportDropped,
            DeviceEvent::ReportDelayed,
            DeviceEvent::ReportDuplicated,
            DeviceEvent::Dormant,
        ] {
            a.record(ev);
        }
        assert_eq!(a.absent_epochs.get(), 1);
        assert_eq!(a.reboot_steps.get(), 1);
        assert_eq!(a.dropped_reports.get(), 1);
        assert_eq!(a.delayed_reports.get(), 1);
        assert_eq!(a.duplicated_reports.get(), 1);
        assert_eq!(a.dormant_epochs.get(), 1);
    }

    #[test]
    fn every_action_has_a_journal_tag_except_hold() {
        assert_eq!(action_kind(EpochAction::Hold), None);
        for (action, tag) in [
            (EpochAction::Probe, "probe"),
            (EpochAction::Reramp, "reramp"),
            (EpochAction::Settle, "settle"),
            (EpochAction::Raise, "raise"),
            (EpochAction::Cut, "cut"),
            (EpochAction::Defer, "defer"),
        ] {
            assert_eq!(action_kind(action), Some(tag));
        }
    }

    #[test]
    fn recorder_emits_events_then_epoch_line() {
        let mut rec = MetricsRecorder::in_memory();
        rec.begin_run("waterfill", 40.0);
        rec.journal(3, 17, "probe", 0.25);
        for g in [0.0, 0.1, 0.5, 0.5] {
            rec.record_grant(g);
        }
        let snap = EpochSnapshot {
            policy: "waterfill",
            budget: 40.0,
            devices: 28,
            account: &account(),
            shard: ShardMetrics::default(),
            fft: FftHandleStats::default(),
            sched: SchedStats::default(),
            dealt: None,
            watchdog: None,
        };
        rec.emit_epoch(&snap);
        let out = rec.buffer().to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("{\"type\":\"event\""), "{}", lines[0]);
        assert!(lines[0].contains("\"device\":17"), "{}", lines[0]);
        assert!(lines[0].contains("\"kind\":\"probe\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"type\":\"epoch\""), "{}", lines[1]);
        assert!(lines[1].contains("\"policy\":\"waterfill\""), "{}", lines[1]);
        assert!(lines[1].contains("\"grants\":{\"count\":4"), "{}", lines[1]);
        assert!(lines[1].contains("\"journal\":{\"events\":1,\"dropped\":0}"));
        // Healthy snapshot: no scenario or watchdog object at all.
        assert!(!lines[1].contains("scenario"), "{}", lines[1]);
        assert!(!lines[1].contains("watchdog"), "{}", lines[1]);
        assert_eq!(rec.journal_events(), 1);
        assert_eq!(rec.journal_dropped(), 0);
        // The grant window resets after emission.
        rec.emit_epoch(&snap);
        let last = rec.buffer().lines().last().unwrap().to_string();
        assert!(last.contains("\"grants\":{\"count\":0"), "{last}");
    }

    #[test]
    fn uncapped_budget_emits_null_and_scenario_block_appears() {
        let mut rec = MetricsRecorder::in_memory();
        rec.begin_run("uncapped", f64::INFINITY);
        let dealt = ScenarioCounters {
            leaves: 2,
            joins: 1,
            reboots: 3,
            absent_epochs: 5,
            dropped_reports: 4,
            duplicated_reports: 1,
            delayed_reports: 2,
            dormant_epochs: 6,
        };
        let wd = WatchdogCounters {
            reprobes: 2,
            starved: 1,
            recovery_granted: 3.5,
            healthy: 20,
            recovering: 4,
            suspect: 3,
            dormant: 1,
        };
        let snap = EpochSnapshot {
            policy: "uncapped",
            budget: f64::INFINITY,
            devices: 28,
            account: &account(),
            shard: ShardMetrics::default(),
            fft: FftHandleStats::default(),
            sched: SchedStats::default(),
            dealt: Some(&dealt),
            watchdog: Some(wd),
        };
        rec.emit_epoch(&snap);
        let out = rec.buffer();
        assert!(out.contains("\"budget\":null"), "{out}");
        assert!(out.contains("\"dealt\":{\"leaves\":2"), "{out}");
        assert!(out.contains("\"dormant_epochs\":6"), "{out}");
        assert!(out.contains("\"applied\":{\"absent_epochs\":0"), "{out}");
        assert!(
            out.contains("\"watchdog\":{\"reprobes\":2,\"starved\":1,\"recovery_granted\":3.5"),
            "{out}"
        );
        assert!(out.contains("\"suspect\":3"), "{out}");
    }

    #[test]
    fn emission_cadence_honors_every_and_final_epoch() {
        let mut rec = MetricsRecorder::in_memory();
        rec.set_every(4);
        let emitted: Vec<usize> = (0..10).filter(|&e| rec.should_emit(e, 10)).collect();
        assert_eq!(emitted, vec![3, 7, 9]);
        rec.set_every(1);
        let all: Vec<usize> = (0..4).filter(|&e| rec.should_emit(e, 4)).collect();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timing_report_renders_all_three_scopes() {
        // A zero-point frontier still renders the timing line.
        let frontier = super::super::FleetFrontier {
            points: Vec::new(),
            steady_demand: 0.0,
            devices: 0,
            epochs: 0,
            window: sweetspot_timeseries::Seconds(86_400.0),
            seed: 0,
            scenario: None,
        };
        let text = timing_report(&frontier, Some(12345));
        assert!(text.contains("timing: build"), "{text}");
        assert!(text.contains("peak RSS 12345 kB"), "{text}");
    }
}
