//! Fleet-level adaptive simulation: every device's §4.2 controller running
//! concurrently under **one shared collection budget**, with a pluggable
//! cross-device scheduler arbitrating epoch-by-epoch poll rates.
//!
//! The paper's controller adapts each device in isolation, but its cost
//! argument (§1) is fleet-wide: collection, transmission and storage budgets
//! are shared. This module measures that trade-off on the synthetic fleet:
//!
//! 1. Every `(metric, device)` pair gets a [`FleetMember`] — its simulated
//!    device plus an [`AdaptiveSampler`](sweetspot_core::adaptive) — stepped
//!    in **lockstep epochs** (the scheduling quantum).
//! 2. Each epoch, controllers *request* rates; a [`scheduler`] policy
//!    converts the cost-unit budget into grantable rate and splits it.
//! 3. Members run their epoch at the granted rate
//!    ([`AdaptiveSampler::step_granted`](sweetspot_core::adaptive::AdaptiveSampler::step_granted)):
//!    throttled controllers record deferrals and re-ramp through their
//!    Nyquist memory when budget returns.
//! 4. A ground-truth [`quality`] model scores every device's achieved rate
//!    against its true Nyquist rate; an [`EpochLedger`] accounts every cost
//!    unit. The output is a **cost-vs-quality frontier per policy** — the
//!    paper's sweet spot, measured at fleet level.
//!
//! # Sharded execution
//!
//! Epochs are inherently sequential (epoch `k`'s grants depend on epoch
//! `k−1`'s outcomes), but *within* an epoch every device is independent
//! given its grant. The engine reuses the `analysis::study` pattern: the
//! device index space is split into contiguous per-worker shards (scoped
//! threads, persistent per-device state), grants are computed serially on
//! the merged request vector, and all aggregation sums run in device index
//! order — so output is **byte-identical for any `--threads N`** (pinned by
//! tests and the CI smoke).
//!
//! # The memory wall
//!
//! Members hold only durable control state; each shard keeps its member
//! records in one contiguous [`Slab`] and owns a single [`EpochScratch`]
//! (oscillator bank, impairment buffers, detector/estimator scratch,
//! recycled series storage) lent to members one step at a time. Every
//! scratch buffer is overwritten before use, so sharing it is
//! byte-identical to per-member copies — but the working set scales with
//! *workers*, not *devices*, which at 10⁵ devices is the difference
//! between tens of gigabytes and tens of megabytes (see
//! [`MemoryStats`]).

pub mod metrics;
pub mod quality;
pub mod scenario;
pub mod scheduler;

use std::thread;
use std::time::{Duration, Instant};
use sweetspot_arena::Slab;
use sweetspot_core::adaptive::{AdaptiveConfig, EpochAction, HealthState};
use sweetspot_dsp::fft::FftHandleStats;
use sweetspot_monitor::poller::{EpochScratch, FleetMember};
use sweetspot_monitor::{CostModel, EpochAccount, EpochLedger};
use sweetspot_telemetry::{paper_scale_work, scaled_work, FleetConfig, MetricProfile, SignalModel};
use sweetspot_timeseries::{Hertz, Seconds};

use metrics::{EpochSnapshot, MetricsRecorder, MetricsSummary, ShardMetrics, WatchdogCounters};
use quality::{DeviceQuality, FleetQuality};
use scenario::{DeviceEvent, ScenarioCounters, ScenarioEngine, ScenarioSpec, ScenarioStats};
use scheduler::SchedulerPolicy;

/// Primary-stream cost is amplified by the §4.1 companion stream at
/// `rate/φ`: one unit of granted rate costs `1 + 1/φ` in samples.
const VERIFY_OVERHEAD: f64 = 1.0 + 1.0 / sweetspot_core::aliasing::COMPANION_RATIO;

/// Fleet simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetSimConfig {
    /// Fleet population (seed + devices per metric) when `paper_scale` is
    /// off. `trace_duration` is unused here — the simulation horizon is
    /// `days`.
    pub fleet: FleetConfig,
    /// Simulate the paper's full 1613-pair population (overrides
    /// `fleet.devices_per_metric`).
    pub paper_scale: bool,
    /// Simulate exactly this many metric-device pairs, tiling the 14-metric
    /// population round-robin ([`scaled_work`]) — the scale-out knob for
    /// fleets beyond 1613 (takes precedence over `fleet.devices_per_metric`;
    /// mutually exclusive with `paper_scale`).
    pub devices: Option<usize>,
    /// Simulation horizon in days.
    pub days: f64,
    /// Lockstep scheduling epoch. It must be long enough for production-rate
    /// streams to feed the §3.2 estimator (64+ samples) *and* to resolve the
    /// diurnal component — 24 h does both for every built-in profile, and
    /// re-budgeting daily is what a real fleet would do. Devices that settle
    /// slower than the window resolves simply hold their rate (see
    /// `core::adaptive` on evidence-free epochs).
    pub window: Seconds,
    /// Worker threads (0 ⇒ available parallelism). Never changes output.
    pub threads: usize,
    /// Resource prices (shared by scheduler and ledger).
    pub cost: CostModel,
    /// Per-metric water-filling weights, indexed by
    /// [`MetricKind::index`](sweetspot_telemetry::MetricKind). Neutral 1.0
    /// by default.
    pub metric_weights: [f64; 14],
    /// Settled members run §4.1 dual-rate verification every `k`-th epoch
    /// (probing epochs always verify; anomalies pull verification forward).
    /// 1 — the default — is continuous verification, today's behavior.
    pub verify_every: usize,
    /// Byte cap on the FFT plan-table caches, split evenly across worker
    /// shards (`None` = unbounded). Tables are pure functions of transform
    /// length, so the cap **never changes output** — over budget, each
    /// shard's cache evicts least-recently-used tables and rebuilds them
    /// bit-identically on demand, trading table-setup time for memory. The
    /// default ([`FFT_TABLE_BUDGET_DEFAULT`]) only binds when a fleet sweeps
    /// many distinct stream lengths — ~10⁵ adaptive controllers each polling
    /// at its own rate; smaller fleets never evict.
    pub fft_table_budget: Option<usize>,
    /// Fleet lifecycle & failure injection (see [`scenario`]). The default
    /// — [`ScenarioSpec::none`] — is inert: no engine is built and the
    /// healthy simulation path runs byte-identical to a scenario-free
    /// build.
    pub scenario: ScenarioSpec,
    /// Fraction of the epoch budget reserved as the watchdog's **recovery
    /// slice**: each epoch, after the ordinary grants are placed, suspect-
    /// deadlocked members may be forced into a re-probe above their
    /// remembered max, drawing at most `frac × budget` of *extra* rate (on
    /// top of the budget — the slice is the measured price of self-healing,
    /// and the ledger's `granted` column excludes it so budget invariants
    /// hold). Re-probes back off exponentially per member and stop after
    /// [`REPROBE_RETRY_CAP`] attempts. `0.0` — the default — builds no
    /// watchdog state at all: outputs are bit-identical to a pre-watchdog
    /// engine.
    pub recovery_budget_frac: f64,
}

/// Default total FFT plan-cache budget: 6 GiB across all shards. An
/// uncapped 10⁵-device run sweeps enough distinct stream lengths to grow
/// unbounded caches past 19 GB (every rate a controller ever probes is a
/// new transform length); 6 GiB keeps the hot set resident while stale
/// ramp-era lengths are evicted.
pub const FFT_TABLE_BUDGET_DEFAULT: usize = 6 << 30;

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            fleet: FleetConfig {
                seed: 0x5EED_CAFE,
                devices_per_metric: 8,
                trace_duration: Seconds::from_days(1.0),
            },
            paper_scale: false,
            devices: None,
            days: 10.0,
            window: Seconds::from_days(1.0),
            threads: 0,
            cost: CostModel::default(),
            metric_weights: [1.0; 14],
            verify_every: 1,
            fft_table_budget: Some(FFT_TABLE_BUDGET_DEFAULT),
            scenario: ScenarioSpec::none(),
            recovery_budget_frac: 0.0,
        }
    }
}

/// Watchdog re-probe attempts per member before giving up. A member that
/// keeps classifying suspect after this many elevated probes is either
/// genuinely calmed (every re-probe verified clean and re-settled low — the
/// suspicion is structural, not a deadlock) or beyond fleet-side help;
/// either way the watchdog stops spending on it. With exponential backoff
/// (`2^retries` epochs between attempts) the per-member lifetime spend is
/// bounded at a handful of fast epochs.
pub const REPROBE_RETRY_CAP: u32 = 5;

impl FleetSimConfig {
    fn work(&self) -> Vec<(MetricProfile, usize)> {
        assert!(
            !(self.paper_scale && self.devices.is_some()),
            "paper_scale and devices are mutually exclusive"
        );
        if self.paper_scale {
            paper_scale_work()
        } else if let Some(pairs) = self.devices {
            scaled_work(pairs)
        } else {
            self.fleet.work_list()
        }
    }

    fn epochs(&self) -> usize {
        ((self.days * 86_400.0) / self.window.value()).ceil().max(1.0) as usize
    }

    fn resolve_threads(&self, work_items: usize) -> usize {
        crate::shard::resolve_threads(self.threads, work_items)
    }
}

/// The controller configuration a fleet member runs under: start at the
/// production default, floor three decades below it, ceiling 8× above
/// (enough headroom for the worst 3×-folding under-sampled devices).
///
/// Headroom runs at 1.9 rather than the 1.65 verification floor: at the
/// floor the companion stream's folding frequency sits ≈5% above the band
/// edge, and spectral leakage on day-window periodograms flaps the §4.1
/// detector (settle → false alarm → probe → settle). 1.9 buys a ~17%
/// guard band; the extra samples are what continuous verification really
/// costs at fleet scale.
pub fn member_config(profile: &MetricProfile, window: Seconds) -> AdaptiveConfig {
    let prod = profile.production_rate().value();
    // Counters quantize coarsely, and every poll draws fresh measurement
    // noise: sub-bands that only hold (decorrelated) noise would flip the
    // detector forever. Compare only bands that stand *out* of a flat
    // spectrum — at 24 bands the uniform share is ~4.2%, so an 8% floor
    // keeps every structured band and drops the pure-noise ones.
    let detector = sweetspot_core::aliasing::DualRateConfig {
        relative_floor: 0.08,
        ..Default::default()
    };
    AdaptiveConfig {
        initial_rate: Hertz(prod),
        min_rate: Hertz(prod / 1024.0),
        max_rate: Hertz(prod * 8.0),
        headroom: 1.9,
        epoch: window,
        detector,
        ..AdaptiveConfig::default()
    }
}

/// Wall-clock totals of the simulation phases. Worker time is summed across
/// threads (aggregate CPU, like `study::PhaseTimings`); timing never
/// influences results, so output stays byte-identical across `--threads N`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetTimings {
    /// Member construction (trace synthesis models + controllers).
    pub build: Duration,
    /// Controller epochs: polling, dual-rate detection, estimation.
    pub step: Duration,
    /// Scheduling + ledger/quality aggregation (serial, main thread).
    pub schedule: Duration,
}

impl FleetTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.build + self.step + self.schedule
    }

    fn merge(&mut self, other: FleetTimings) {
        self.build += other.build;
        self.step += other.step;
        self.schedule += other.schedule;
    }
}

/// One worker's shard: member records in one contiguous slab plus the
/// single working set every member on the shard steps through. Durable
/// state scales with devices; working state scales with workers.
struct ShardState {
    /// Member records, contiguous, in fleet order within the shard.
    members: Slab<FleetMember>,
    /// The shard's working set, lent to each member in turn.
    scratch: EpochScratch,
    /// A handle on the shard's shared FFT plan cache (every member holds a
    /// clone) — kept for the post-run `fft_table_bytes` accounting.
    planner: sweetspot_dsp::fft::FftPlanner,
    /// The shard's metric tallies, bumped inline during the step loop and
    /// merged in shard order at snapshot time (see [`metrics`]).
    metrics: ShardMetrics,
}

impl ShardState {
    /// Durable bytes: the slab block plus each member's owned heap.
    fn member_bytes(&self) -> usize {
        self.members.resident_bytes()
            + self.members.iter().map(FleetMember::heap_bytes).sum::<usize>()
    }
}

/// Resident-heap accounting of a finished run (high-water: scratch buffers
/// only grow). The memory-wall invariant is `scratch_bytes` scaling with
/// `workers` while `member_bytes / devices` stays flat.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    /// Durable per-member state: slab blocks, trace identity, signal model.
    pub member_bytes: usize,
    /// Worker scratch high-water, summed over all shards.
    pub scratch_bytes: usize,
    /// Post-run residency of the per-shard FFT plan-table caches, summed —
    /// capped by [`FleetSimConfig::fft_table_budget`] when one is set.
    pub fft_table_bytes: usize,
    /// Shards (= worker scratch instances).
    pub workers: usize,
}

impl MemoryStats {
    /// Durable bytes per device — the number that must stay flat as the
    /// fleet scales.
    pub fn bytes_per_member(&self, devices: usize) -> f64 {
        if devices == 0 {
            0.0
        } else {
            self.member_bytes as f64 / devices as f64
        }
    }
}

/// One policy's complete simulation outcome.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The scheduling policy simulated.
    pub policy: SchedulerPolicy,
    /// Budget per epoch in cost units (`f64::INFINITY` when uncapped).
    pub budget_per_epoch: f64,
    /// Fleet size.
    pub devices: usize,
    /// Lockstep epochs simulated.
    pub epochs: usize,
    /// Epoch window.
    pub window: Seconds,
    /// Per-epoch shared-budget accounting.
    pub ledger: EpochLedger,
    /// Per-device quality scores, in fleet order.
    pub device_quality: Vec<DeviceQuality>,
    /// Fleet-level quality aggregates.
    pub quality: FleetQuality,
    /// Phase timings (observability only).
    pub timing: FleetTimings,
    /// Resident-heap accounting (observability only).
    pub memory: MemoryStats,
    /// Fleet-scope metric totals (controller actions, FFT handle stats,
    /// scheduler maintenance, scenario events applied) — thread-invariant.
    pub metrics: MetricsSummary,
    /// What the scenario dealt and how the fleet weathered it — `None` for
    /// healthy (`--scenario none`) runs.
    pub scenario: Option<ScenarioStats>,
}

impl PolicyOutcome {
    /// Total cost units actually spent over the whole run.
    pub fn total_spent(&self) -> f64 {
        self.ledger.total_spent()
    }

    /// Quality bought per **kilo**-cost-unit: the frontier's y/x slope and
    /// the headline efficiency number.
    pub fn coverage_per_kilocost(&self) -> f64 {
        let spent = self.total_spent();
        if spent <= 0.0 {
            0.0
        } else {
            self.quality.mean_coverage / (spent / 1000.0)
        }
    }
}

/// Runs one policy at one budget over the configured fleet.
///
/// `budget_per_epoch` is in cost units (see [`CostModel::cost_per_sample`]);
/// pass `f64::INFINITY` for the uncapped baseline.
pub fn run_policy(
    cfg: &FleetSimConfig,
    policy: SchedulerPolicy,
    budget_per_epoch: f64,
) -> PolicyOutcome {
    run_policy_recorded(cfg, policy, budget_per_epoch, None)
}

/// [`run_policy`] with an optional [`MetricsRecorder`] attached: every
/// fleet-scope counter streams to the recorder as JSON-lines epoch
/// snapshots plus flight-recorder event lines. The counters themselves are
/// always on — a recorder only adds the journal, the grant histogram, and
/// the emission — so the simulation's own outputs (ledger, quality, stdout
/// renderings) are byte-identical with and without one.
pub fn run_policy_recorded(
    cfg: &FleetSimConfig,
    policy: SchedulerPolicy,
    budget_per_epoch: f64,
    mut recorder: Option<&mut MetricsRecorder>,
) -> PolicyOutcome {
    let work = cfg.work();
    let n = work.len();
    let epochs = cfg.epochs();
    let threads = cfg.resolve_threads(n);
    let mut timing = FleetTimings::default();

    // Build members (deterministic per (profile, idx, seed); build order is
    // the fleet order regardless of sharding). Every member on a shard gets
    // a clone of one per-shard FFT planner, so the shard holds each
    // twiddle/chirp/window table once — at 10⁵ devices, per-member caches
    // would otherwise dominate memory by orders of magnitude. Members land
    // directly in per-shard slabs; each shard also gets the one EpochScratch
    // its members will step through for the whole run.
    let t0 = Instant::now();
    let seed = cfg.fleet.seed;
    let window = cfg.window;
    let verify_every = cfg.verify_every.max(1);
    // Split the plan-cache budget across shards. Eviction rebuilds tables
    // bit-identically, so neither the budget nor the split affects output.
    let shard_fft_budget = cfg.fft_table_budget.map(|total| total / threads.max(1));
    let mut shards: Vec<ShardState> = build_shards(
        &work,
        threads,
        || {
            let planner = sweetspot_dsp::fft::FftPlanner::new();
            planner.set_table_budget(shard_fft_budget);
            planner
        },
        |planner, index, profile, device| {
            let mut config = member_config(&profile, window);
            config.verify_every = verify_every;
            FleetMember::with_planner(
                index,
                sweetspot_telemetry::DeviceTrace::synthesize(profile, device, seed),
                config,
                planner.clone(),
            )
        },
    )
    .into_iter()
    .map(|(planner, members)| ShardState {
        members,
        scratch: EpochScratch::new(),
        planner,
        metrics: ShardMetrics::default(),
    })
    .collect();
    if let Some(rec) = recorder.as_deref_mut() {
        rec.begin_run(policy.name(), budget_per_epoch);
    }
    // Quality requirement per device. A quiescent device's signal never
    // moves a full quantum, so *any* rate fully captures what is observable:
    // its requirement is zero (coverage 1.0 by definition in `quality`).
    let mut nyquist: Vec<f64> = shards
        .iter()
        .flat_map(|s| s.members.iter())
        .map(|m| {
            if m.device().trace().is_quiet() {
                0.0
            } else {
                m.true_nyquist_rate().value()
            }
        })
        .collect();
    let production: Vec<f64> = work
        .iter()
        .map(|(p, _)| p.production_rate().value())
        .collect();
    let weights: Vec<f64> = work
        .iter()
        .map(|(p, _)| cfg.metric_weights[p.kind.index()])
        .collect();

    // Failure injection. Inert scenarios build no engine, so the healthy
    // path below runs exactly as before — byte for byte.
    let scenario_spec = cfg.scenario;
    let engine = scenario_spec
        .is_active()
        .then(|| ScenarioEngine::new(scenario_spec, epochs));
    let incident = engine.as_ref().and_then(ScenarioEngine::incident);
    // Regime incident: pre-build every member's incident-phase signal model
    // (tone frequencies scaled, identity and noise seed untouched) so phase
    // boundaries in the epoch loop only `mem::swap` models and requirement
    // vectors — no allocation, no re-synthesis.
    let mut alt_models: Vec<SignalModel> = Vec::new();
    let mut alt_nyquist: Vec<f64> = Vec::new();
    if incident.is_some() {
        let members = || shards.iter().flat_map(|s| s.members.iter());
        alt_models = members()
            .map(|m| m.device().trace().regime_model(scenario_spec.incident_factor))
            .collect();
        alt_nyquist = members()
            .zip(&alt_models)
            .map(|(m, alt)| {
                if m.device().trace().is_quiet() {
                    0.0
                } else {
                    alt.nyquist_rate().value()
                }
            })
            .collect();
    }
    let cost_factors = engine.as_ref().and_then(|e| e.cost_factors(n));
    timing.build = t0.elapsed();

    // The scheduler works in rate space: convert the cost budget once.
    let unit_cost = cfg.cost.cost_per_sample();
    let epoch_unit = unit_cost * window.value() * VERIFY_OVERHEAD;
    let capacity_rate = budget_per_epoch / epoch_unit; // INF stays INF

    // One stateful scheduler per run: recycled buffers plus (for
    // water-filling) the incrementally maintained sorted order. Grants are
    // bit-identical to the stateless `scheduler::allocate` reference.
    let mut sched = policy.scheduler(&weights, &production);
    let mut ledger = EpochLedger::with_capacity(epochs);
    let mut requests = vec![0.0f64; n];
    let mut grants: Vec<f64> = Vec::with_capacity(n);
    let mut coverage_sum = vec![0.0f64; n];
    let mut epoch_samples = vec![0usize; n];
    let mut epoch_throttled = vec![false; n];
    // Per-device action taken this epoch (`None` = absent, no step ran).
    // Workers write their chunk; the flight recorder reads it *serially* in
    // device order, so journal contents and drop counts never depend on the
    // worker split.
    let mut epoch_actions: Vec<Option<EpochAction>> = vec![None; n];

    // Scenario state: fixed-size per-device vectors allocated once, so
    // churn never resizes the request/grant geometry (absent devices keep
    // their slot, request 0.0, and skip their step) and steady-state epochs
    // stay allocation-free even while devices leave, rejoin, and reboot.
    let scenario_len = if engine.is_some() { n } else { 0 };
    let mut active = vec![true; scenario_len];
    let mut active_epochs = vec![0usize; scenario_len];
    let mut events = vec![DeviceEvent::Healthy; scenario_len];
    let mut epoch_cov = vec![0.0f64; scenario_len];
    let mut epoch_means: Vec<f64> = Vec::with_capacity(if engine.is_some() { epochs } else { 0 });
    let mut counters = ScenarioCounters::default();

    // Per-member incident phase: staggered and diurnal regimes switch
    // members individually (the classic one-shot incident is the case where
    // every member flips at the same two epochs). The onset/exit transitions
    // also drive each device's recovery clock — baseline coverage before its
    // first onset, exit epoch, and the first post-exit epoch back at ≥95% of
    // its own baseline — which the TTR histogram summarizes.
    let incident_len = if incident.is_some() { n } else { 0 };
    let mut incident_prev = vec![false; incident_len];
    let mut ttr_seen_onset = vec![false; incident_len];
    let mut ttr_base_sum = vec![0.0f64; incident_len];
    let mut ttr_base_epochs = vec![0usize; incident_len];
    let mut ttr_exit = vec![usize::MAX; incident_len];
    let mut ttr: Vec<Option<usize>> = vec![None; incident_len];

    // Watchdog recovery plane. Inert at frac 0: no state is allocated, the
    // pass never runs, and every output bit matches a pre-watchdog engine.
    let watchdog_on = cfg.recovery_budget_frac > 0.0;
    let wd_len = if watchdog_on { n } else { 0 };
    let mut reprobe_retries = vec![0u32; wd_len];
    let mut reprobe_due = vec![0usize; wd_len];
    let mut wd = WatchdogCounters::default();

    for epoch in 0..epochs {
        let t_sched = Instant::now();
        if let Some(eng) = &engine {
            // Regime phase boundaries, per member: each device swaps to its
            // other model when *its own* incident activity flips (staggered
            // and diurnal regimes switch members individually; the one-shot
            // incident flips the whole fleet at the same two epochs). The
            // ground-truth requirement swaps element-wise with the model,
            // and the transitions clock the per-device recovery tracker.
            if incident.is_some() {
                for (i, (member, alt)) in shards
                    .iter_mut()
                    .flat_map(|s| s.members.iter_mut())
                    .zip(alt_models.iter_mut())
                    .enumerate()
                {
                    let now = eng.incident_active(epoch, i);
                    if now != incident_prev[i] {
                        member.swap_model(alt);
                        std::mem::swap(&mut nyquist[i], &mut alt_nyquist[i]);
                        incident_prev[i] = now;
                        if now {
                            // (Re-)entering the incident: the recovery clock
                            // restarts from the next exit.
                            ttr_seen_onset[i] = true;
                            ttr_exit[i] = usize::MAX;
                            ttr[i] = None;
                        } else {
                            ttr_exit[i] = epoch;
                        }
                    }
                }
            }
            // Deal this epoch's events — serial, pure hashing, so the fault
            // schedule is identical for every policy and thread count.
            // Reboots apply here (cheap state resets) so a rebooted member's
            // *request* below already reflects its re-ramp.
            for (i, member) in shards
                .iter_mut()
                .flat_map(|s| s.members.iter_mut())
                .enumerate()
            {
                let ev = eng.deal(epoch, i, active[i]);
                // Lifecycle transitions feed the flight recorder here, in
                // the serial deal loop, so event order is device order.
                // Continued absences are counted but not journaled — only
                // the leave itself is an event.
                let journal_kind = match ev {
                    DeviceEvent::Absent => {
                        let left = active[i];
                        if left {
                            counters.leaves += 1;
                        }
                        active[i] = false;
                        counters.absent_epochs += 1;
                        left.then_some("leave")
                    }
                    DeviceEvent::Reboot => {
                        let joined = !active[i];
                        if joined {
                            counters.joins += 1;
                        }
                        active[i] = true;
                        counters.reboots += 1;
                        member.reboot();
                        Some(if joined { "join" } else { "reboot" })
                    }
                    DeviceEvent::ReportDropped => {
                        counters.dropped_reports += 1;
                        Some("report_drop")
                    }
                    DeviceEvent::ReportDelayed => {
                        counters.delayed_reports += 1;
                        Some("report_delay")
                    }
                    DeviceEvent::ReportDuplicated => {
                        counters.duplicated_reports += 1;
                        Some("report_dup")
                    }
                    // Scheduled sleep is counted, never journaled — like
                    // continued absences, it is high-volume steady state
                    // (a duty cycle naps a fixed fraction of the fleet
                    // every epoch) and would drown the ring.
                    DeviceEvent::Dormant => {
                        counters.dormant_epochs += 1;
                        None
                    }
                    DeviceEvent::Healthy => None,
                };
                if let (Some(rec), Some(kind)) = (recorder.as_deref_mut(), journal_kind) {
                    rec.journal(epoch as u32, i as u32, kind, 0.0);
                }
                events[i] = ev;
            }
        }
        if engine.is_some() {
            for (i, (r, m)) in requests
                .iter_mut()
                .zip(shards.iter().flat_map(|s| s.members.iter()))
                .enumerate()
            {
                // Sleeping devices poll nothing: like absences, they request
                // 0.0 and release their share — but without the request
                // decay, so the wake epoch re-requests the full rate.
                *r = if active[i] && events[i] != DeviceEvent::Dormant {
                    m.requested_rate().value()
                } else {
                    0.0
                };
            }
        } else {
            for (r, m) in requests
                .iter_mut()
                .zip(shards.iter().flat_map(|s| s.members.iter()))
            {
                *r = m.requested_rate().value();
            }
        }
        sched.allocate(&requests, capacity_rate, &mut grants);
        // Watchdog pass, serial in device order: after the ordinary grants
        // are placed, force suspect-deadlocked members into a re-probe
        // above their remembered max, spending at most `frac × budget` of
        // *extra* rate per epoch — a bounded recovery slice on top of the
        // budget that can never displace a healthy device's grant. Each
        // member backs off exponentially between attempts and gives up
        // after [`REPROBE_RETRY_CAP`]; sleeping and absent members are
        // never probed. Affordability is peeked before the controller is
        // committed, so a dry pool perturbs nothing.
        let mut recovery_rate = 0.0f64;
        if watchdog_on {
            let mut pool = cfg.recovery_budget_frac * capacity_rate; // INF stays INF
            wd.healthy = 0;
            wd.recovering = 0;
            wd.suspect = 0;
            wd.dormant = 0;
            for (i, member) in shards
                .iter_mut()
                .flat_map(|s| s.members.iter_mut())
                .enumerate()
            {
                if engine.is_some() && !active[i] {
                    continue; // offline: out of the census, never probed
                }
                let health = if engine.is_some() && events[i] == DeviceEvent::Dormant {
                    // The nap is dealt but not yet stepped; the controller's
                    // own flag still reflects the previous epoch.
                    HealthState::Dormant
                } else {
                    member.sampler().health()
                };
                match health {
                    HealthState::Healthy => wd.healthy += 1,
                    HealthState::Recovering => wd.recovering += 1,
                    HealthState::SuspectDeadlocked => wd.suspect += 1,
                    HealthState::Dormant => wd.dormant += 1,
                }
                if health != HealthState::SuspectDeadlocked
                    || reprobe_retries[i] >= REPROBE_RETRY_CAP
                    || epoch < reprobe_due[i]
                {
                    continue;
                }
                let extra = (member.reprobe_rate().value() - grants[i]).max(0.0);
                if extra > pool {
                    wd.starved += 1;
                    continue;
                }
                pool -= extra;
                let target = member.begin_reprobe().value();
                grants[i] = grants[i].max(target);
                recovery_rate += extra;
                wd.reprobes += 1;
                wd.recovery_granted += extra * epoch_unit;
                reprobe_retries[i] += 1;
                reprobe_due[i] = epoch + (1usize << reprobe_retries[i].min(20));
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.journal(epoch as u32, i as u32, "reprobe", target);
                }
            }
        }
        if let Some(rec) = recorder.as_deref_mut() {
            // Grant distribution histogram: fed serially in device order
            // (recovery top-ups included — they are real granted rate).
            for &g in &grants {
                rec.record_grant(g);
            }
        }
        timing.schedule += t_sched.elapsed();

        let start = Seconds(epoch as f64 * window.value());
        let chunk = crate::shard::chunk_size(n, threads);
        if threads == 1 {
            let t_step = Instant::now();
            let ShardState { members, scratch, metrics, .. } = &mut shards[0];
            if engine.is_some() {
                for (i, member) in members.iter_mut().enumerate() {
                    let step = step_scenario_member(
                        member,
                        events[i],
                        scratch,
                        start,
                        Hertz(grants[i]),
                        window,
                        nyquist[i],
                    );
                    metrics.applied.record(events[i]);
                    if let Some(a) = step.action {
                        metrics.controller.record(a, step.verified);
                    }
                    epoch_actions[i] = step.action;
                    coverage_sum[i] += step.coverage;
                    epoch_cov[i] = step.coverage;
                    epoch_samples[i] = step.samples;
                    epoch_throttled[i] = step.throttled;
                    active_epochs[i] += step.counted as usize;
                }
            } else {
                for (i, member) in members.iter_mut().enumerate() {
                    let report = member.step_epoch(scratch, start, Hertz(grants[i]), window);
                    metrics.controller.record(report.action, report.verified);
                    epoch_actions[i] = Some(report.action);
                    coverage_sum[i] += quality::coverage(report.primary_rate, Hertz(nyquist[i]));
                    epoch_samples[i] = report.samples_taken;
                    epoch_throttled[i] = report.throttled;
                }
            }
            timing.step += t_step.elapsed();
        } else if engine.is_some() {
            let step_time: Duration = thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(grants.chunks(chunk))
                    .zip(nyquist.chunks(chunk))
                    .zip(events.chunks(chunk))
                    .zip(
                        coverage_sum
                            .chunks_mut(chunk)
                            .zip(epoch_cov.chunks_mut(chunk))
                            .zip(epoch_samples.chunks_mut(chunk))
                            .zip(epoch_throttled.chunks_mut(chunk))
                            .zip(active_epochs.chunks_mut(chunk))
                            .zip(epoch_actions.chunks_mut(chunk)),
                    )
                    .map(
                        |(
                            (((shard, grants), nyquist), events),
                            (((((coverage, ecov), samples), throttled), act), actions),
                        )| {
                            s.spawn(move || {
                                let t = Instant::now();
                                let ShardState { members, scratch, metrics, .. } = shard;
                                for (i, member) in members.iter_mut().enumerate() {
                                    let step = step_scenario_member(
                                        member,
                                        events[i],
                                        scratch,
                                        start,
                                        Hertz(grants[i]),
                                        window,
                                        nyquist[i],
                                    );
                                    metrics.applied.record(events[i]);
                                    if let Some(a) = step.action {
                                        metrics.controller.record(a, step.verified);
                                    }
                                    actions[i] = step.action;
                                    coverage[i] += step.coverage;
                                    ecov[i] = step.coverage;
                                    samples[i] = step.samples;
                                    throttled[i] = step.throttled;
                                    act[i] += step.counted as usize;
                                }
                                t.elapsed()
                            })
                        },
                    )
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleetsim worker panicked"))
                    .sum()
            });
            timing.step += step_time;
        } else {
            let step_time: Duration = thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .zip(grants.chunks(chunk))
                    .zip(nyquist.chunks(chunk))
                    .zip(
                        coverage_sum
                            .chunks_mut(chunk)
                            .zip(epoch_samples.chunks_mut(chunk))
                            .zip(epoch_throttled.chunks_mut(chunk))
                            .zip(epoch_actions.chunks_mut(chunk)),
                    )
                    .map(
                        |(((shard, grants), nyquist), (((coverage, samples), throttled), actions))| {
                            s.spawn(move || {
                                let t = Instant::now();
                                let ShardState { members, scratch, metrics, .. } = shard;
                                for (i, member) in members.iter_mut().enumerate() {
                                    let report =
                                        member.step_epoch(scratch, start, Hertz(grants[i]), window);
                                    metrics.controller.record(report.action, report.verified);
                                    actions[i] = Some(report.action);
                                    coverage[i] +=
                                        quality::coverage(report.primary_rate, Hertz(nyquist[i]));
                                    samples[i] = report.samples_taken;
                                    throttled[i] = report.throttled;
                                }
                                t.elapsed()
                            })
                        },
                    )
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleetsim worker panicked"))
                    .sum()
            });
            timing.step += step_time;
        }

        if let Some(rec) = recorder.as_deref_mut() {
            // Controller transitions feed the flight recorder here, serially
            // in device order, from the per-device action array the workers
            // filled — so journal contents (and ring drops) never depend on
            // the worker split. Holds are not events.
            for (i, member) in shards.iter().flat_map(|s| s.members.iter()).enumerate() {
                if let Some(kind) = epoch_actions[i].and_then(metrics::action_kind) {
                    rec.journal(epoch as u32, i as u32, kind, member.requested_rate().value());
                }
            }
        }

        // Ledger: every sum in device index order (deterministic).
        let t_ledger = Instant::now();
        let demanded: f64 = requests.iter().map(|r| r * epoch_unit).sum();
        // The recovery slice is spend *on top of* the budget: `granted`
        // excludes it so the scheduler's budget invariant (granted ≤ budget)
        // survives the watchdog, while `spent` bills every sample actually
        // taken — the slice's true cost shows up as spent − granted, and in
        // the watchdog counters. (Subtracting 0.0 is exact, so zero-frac
        // runs stay bit-identical.)
        let granted: f64 =
            grants.iter().map(|g| g * epoch_unit).sum::<f64>() - recovery_rate * epoch_unit;
        let samples: usize = epoch_samples.iter().sum();
        let throttled_devices = epoch_throttled.iter().filter(|&&t| t).count();
        // Cost asymmetry bills through the ledger only — the schedulers
        // stay cost-naive, and what that naivety costs is the measurement.
        let spent = match &cost_factors {
            Some(f) => epoch_samples
                .iter()
                .zip(f)
                .map(|(&s, &c)| s as f64 * unit_cost * c)
                .sum(),
            None => samples as f64 * unit_cost,
        };
        ledger.record(EpochAccount {
            epoch,
            budget: budget_per_epoch,
            demanded,
            granted,
            samples,
            spent,
            throttled_devices,
        });
        if engine.is_some() {
            // Fleet mean coverage this epoch (absent devices count as 0):
            // the recovery trajectory the incident analysis reads.
            epoch_means.push(epoch_cov.iter().sum::<f64>() / n.max(1) as f64);
        }
        if incident.is_some() {
            // Per-device recovery clock, serial in device order. A device's
            // baseline is its mean coverage over pre-onset epochs it was
            // actually awake and present for; after its incident exits, the
            // first such epoch back at ≥95% of that baseline stamps its
            // time-to-recover.
            for i in 0..n {
                if matches!(events[i], DeviceEvent::Absent | DeviceEvent::Dormant) {
                    continue;
                }
                if !ttr_seen_onset[i] {
                    ttr_base_sum[i] += epoch_cov[i];
                    ttr_base_epochs[i] += 1;
                } else if ttr[i].is_none() && ttr_exit[i] != usize::MAX && ttr_base_epochs[i] > 0
                {
                    let threshold = 0.95 * ttr_base_sum[i] / ttr_base_epochs[i] as f64;
                    if epoch_cov[i] >= threshold {
                        ttr[i] = Some(epoch - ttr_exit[i]);
                    }
                }
            }
        }
        timing.schedule += t_ledger.elapsed();

        if let Some(rec) = recorder.as_deref_mut() {
            if rec.should_emit(epoch, epochs) {
                rec.emit_epoch(&EpochSnapshot {
                    policy: policy.name(),
                    budget: budget_per_epoch,
                    devices: n,
                    account: ledger.accounts().last().expect("epoch just recorded"),
                    shard: merged_shard_metrics(&shards),
                    fft: fft_handle_totals(&shards),
                    sched: sched.stats(),
                    dealt: engine.is_some().then_some(&counters),
                    watchdog: watchdog_on.then_some(wd),
                });
            }
        }
    }

    let t_quality = Instant::now();
    // Coverage averages over the epochs a device was actually present for:
    // an absent device is not "uncovered", it is out of the study — but a
    // present device whose report was dropped scores the 0 it earned.
    // Healthy runs divide by the horizon exactly as before.
    let device_quality: Vec<DeviceQuality> = shards
        .iter()
        .flat_map(|s| s.members.iter())
        .enumerate()
        .map(|(i, m)| DeviceQuality {
            index: i,
            kind: m.kind(),
            mean_coverage: if engine.is_some() {
                coverage_sum[i] / active_epochs[i].max(1) as f64
            } else {
                coverage_sum[i] / epochs as f64
            },
            final_rate: m.requested_rate().value(),
            deferred_epochs: m.sampler().deferred_epochs(),
            missed_epochs: m.sampler().missed_epochs(),
        })
        .collect();
    let quality = FleetQuality::from_devices(&device_quality);
    let scenario = engine.as_ref().map(|eng| {
        let (baseline_coverage, time_to_recover) = eng.recovery(&epoch_means);
        // Per-device recovery quantiles, summarized through an obs
        // log-bucket histogram fed in device order (the fleet-mean
        // `time_to_recover` hides the slow tail the p95 exposes).
        let mut hist = sweetspot_obs::Histogram::log_scale(1.0, (epochs as f64).max(2.0), 32);
        let mut recovered_devices = 0usize;
        let mut unrecovered_devices = 0usize;
        for i in 0..incident_len {
            if !ttr_seen_onset[i] {
                continue;
            }
            match ttr[i] {
                Some(e) => {
                    recovered_devices += 1;
                    hist.record(e as f64);
                }
                None => unrecovered_devices += 1,
            }
        }
        let (ttr_p50, ttr_p95) = if hist.count() > 0 {
            (Some(hist.quantile(0.50)), Some(hist.quantile(0.95)))
        } else {
            (None, None)
        };
        // Aliasing-deadlock census: present devices that end the run both
        // *classified* suspect-deadlocked (settled below their remembered
        // max with no aliasing alarm — see [`HealthState`]) and *actually*
        // under-covering their ground-truth requirement. The intersection
        // excludes the two benign neighbours: a legitimately-calmed signal
        // below its old ceiling (suspect but covered), and a budget-starved
        // device whose detector still flaps (under-covered but alarming —
        // the scheduler's problem, not a deadlock).
        let deadlocked = shards
            .iter()
            .flat_map(|s| s.members.iter())
            .enumerate()
            .filter(|(i, m)| {
                active[*i]
                    && nyquist[*i] > 0.0
                    && m.sampler().health() == HealthState::SuspectDeadlocked
                    && quality::coverage(m.requested_rate(), Hertz(nyquist[*i])) < 0.95
            })
            .count();
        ScenarioStats {
            label: scenario_spec.label(),
            seed: scenario_spec.seed,
            counters,
            incident: eng.incident(),
            baseline_coverage,
            time_to_recover,
            ttr_p50,
            ttr_p95,
            recovered_devices,
            unrecovered_devices,
            deadlocked,
            epoch_mean_coverage: std::mem::take(&mut epoch_means),
        }
    });
    timing.schedule += t_quality.elapsed();

    // Scratch buffers only grow, so post-run capacities are the high-water.
    let memory = MemoryStats {
        member_bytes: shards.iter().map(ShardState::member_bytes).sum(),
        scratch_bytes: shards.iter().map(|s| s.scratch.resident_bytes()).sum(),
        fft_table_bytes: shards.iter().map(|s| s.planner.table_bytes()).sum(),
        workers: shards.len(),
    };
    let merged = merged_shard_metrics(&shards);
    let metrics = MetricsSummary {
        controller: merged.controller,
        applied: merged.applied,
        fft: fft_handle_totals(&shards),
        sched: sched.stats(),
        watchdog: watchdog_on.then_some(wd),
    };

    PolicyOutcome {
        policy,
        budget_per_epoch,
        devices: n,
        epochs,
        window,
        ledger,
        device_quality,
        quality,
        timing,
        memory,
        scenario,
        metrics,
    }
}

/// Steps one member through one epoch under a scenario event. Returns
/// `(epoch coverage, billed samples, throttled, counted-as-active)`.
///
/// Reboots were already applied serially when the event was dealt, so here
/// `Reboot` steps like `Healthy` (the first post-reboot epoch *is* a normal
/// epoch, just from re-ramp state). A dropped report takes no samples and
/// earns no coverage; a delayed report takes (and bills) its samples but
/// the controller's adaptation froze; a duplicated report bills double.
/// Per-device outcome of one scenario epoch: the quality/ledger numbers the
/// epoch loop already consumed as a tuple, plus the controller action and
/// verification flag the metrics layer tallies.
struct MemberStep {
    coverage: f64,
    samples: usize,
    throttled: bool,
    /// Whether this epoch counts toward the device's active-epoch divisor.
    counted: bool,
    /// Controller decision this epoch; `None` while the device is absent.
    action: Option<EpochAction>,
    verified: bool,
}

fn step_scenario_member(
    member: &mut FleetMember,
    event: DeviceEvent,
    scratch: &mut EpochScratch,
    start: Seconds,
    grant: Hertz,
    window: Seconds,
    nyquist: f64,
) -> MemberStep {
    let nyquist = Hertz(nyquist);
    match event {
        DeviceEvent::Absent => MemberStep {
            coverage: 0.0,
            samples: 0,
            throttled: false,
            counted: false,
            action: None,
            verified: false,
        },
        DeviceEvent::Dormant => {
            // Scheduled sleep: no samples, no report, no deferral, and —
            // unlike an absence — no request decay; the controller merely
            // notes its state aged and owes a verification on wake.
            member.note_dormant_epoch();
            MemberStep {
                coverage: 0.0,
                samples: 0,
                throttled: false,
                counted: false,
                action: None,
                verified: false,
            }
        }
        DeviceEvent::ReportDropped => {
            let r = member.note_missed_epoch(start, grant, window);
            MemberStep {
                coverage: quality::coverage(r.primary_rate, nyquist),
                samples: 0,
                throttled: r.throttled,
                counted: true,
                action: Some(r.action),
                verified: r.verified,
            }
        }
        DeviceEvent::ReportDelayed => {
            let r = member.step_epoch_delayed(scratch, start, grant, window);
            MemberStep {
                coverage: quality::coverage(r.primary_rate, nyquist),
                samples: r.samples_taken,
                throttled: r.throttled,
                counted: true,
                action: Some(r.action),
                verified: r.verified,
            }
        }
        DeviceEvent::ReportDuplicated => {
            let r = member.step_epoch(scratch, start, grant, window);
            MemberStep {
                coverage: quality::coverage(r.primary_rate, nyquist),
                samples: r.samples_taken * 2,
                throttled: r.throttled,
                counted: true,
                action: Some(r.action),
                verified: r.verified,
            }
        }
        DeviceEvent::Healthy | DeviceEvent::Reboot => {
            let r = member.step_epoch(scratch, start, grant, window);
            MemberStep {
                coverage: quality::coverage(r.primary_rate, nyquist),
                samples: r.samples_taken,
                throttled: r.throttled,
                counted: true,
                action: Some(r.action),
                verified: r.verified,
            }
        }
    }
}

/// Folds per-worker [`ShardMetrics`] in shard order — never completion
/// order — so the merged totals are identical for any `--threads N`.
fn merged_shard_metrics(shards: &[ShardState]) -> ShardMetrics {
    let mut merged = ShardMetrics::default();
    for shard in shards {
        merged.merge(&shard.metrics);
    }
    merged
}

/// Sums per-member FFT planner-handle counters in fleet (device) order.
/// Handle counters are owned by each member's planner clone, so the totals
/// are independent of how the fleet was sharded across workers.
fn fft_handle_totals(shards: &[ShardState]) -> FftHandleStats {
    let mut totals = FftHandleStats::default();
    for member in shards.iter().flat_map(|s| s.members.iter()) {
        totals.merge(&member.fft_handle_stats());
    }
    totals
}

/// Builds per-device state in parallel shards, one contiguous [`Slab`] per
/// shard, in fleet order. Each shard owns one context built by `mk_ctx`
/// (e.g. a shared FFT planner), handed to every `build` call on that shard
/// and returned alongside the slab. Shard boundaries follow
/// [`crate::shard::chunk_size`], matching the epoch loop's chunking of the
/// global grant/quality arrays.
fn build_shards<T, C, M, F>(
    work: &[(MetricProfile, usize)],
    threads: usize,
    mk_ctx: M,
    build: F,
) -> Vec<(C, Slab<T>)>
where
    T: Send,
    C: Send,
    M: Fn() -> C + Sync,
    F: Fn(&mut C, usize, MetricProfile, usize) -> T + Sync,
{
    let n = work.len();
    if threads <= 1 || n < 2 {
        let mut ctx = mk_ctx();
        let mut slab = Slab::with_capacity(n);
        for (i, &(p, d)) in work.iter().enumerate() {
            slab.push(build(&mut ctx, i, p, d));
        }
        return vec![(ctx, slab)];
    }
    let chunk = crate::shard::chunk_size(n, threads);
    thread::scope(|s| {
        let build = &build;
        let mk_ctx = &mk_ctx;
        let handles: Vec<_> = work
            .chunks(chunk)
            .enumerate()
            .map(|(shard, span)| {
                s.spawn(move || {
                    let mut ctx = mk_ctx();
                    let mut slab = Slab::with_capacity(span.len());
                    for (j, &(p, d)) in span.iter().enumerate() {
                        slab.push(build(&mut ctx, shard * chunk + j, p, d));
                    }
                    (ctx, slab)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleetsim build worker panicked"))
            .collect()
    })
}

/// One row of the cost-vs-quality frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Budget as a fraction of the uncapped steady demand (`None` for the
    /// uncapped row and for absolute `--budget` runs).
    pub fraction: Option<f64>,
    /// The simulation outcome.
    pub outcome: PolicyOutcome,
}

/// The fleet cost-vs-quality frontier: one [`FrontierPoint`] per
/// (policy, budget) pair, plus the anchor demand the ladder was scaled by.
#[derive(Debug, Clone)]
pub struct FleetFrontier {
    /// All simulated points, in render order.
    pub points: Vec<FrontierPoint>,
    /// Uncapped steady demand (last-epoch spend of the uncapped run), in
    /// cost units per epoch — the budget ladder's 100% anchor.
    pub steady_demand: f64,
    /// Fleet size.
    pub devices: usize,
    /// Epochs simulated per point.
    pub epochs: usize,
    /// Epoch window.
    pub window: Seconds,
    /// Fleet seed (for reproduction).
    pub seed: u64,
    /// Scenario label + seed when failure injection was on (`None` for
    /// healthy sweeps — the rendering stays byte-identical to a
    /// scenario-free build).
    pub scenario: Option<String>,
}

/// Budget ladder for the frontier sweep, as fractions of steady demand.
pub const FRONTIER_FRACTIONS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];

/// Policies swept at every budget rung (the uncapped baseline runs once).
/// The capped policies a default frontier sweep runs (the uncapped
/// baseline is implicit — it anchors the budget ladder).
pub const CAPPED_POLICIES: [SchedulerPolicy; 3] = [
    SchedulerPolicy::Uniform,
    SchedulerPolicy::Fair,
    SchedulerPolicy::WaterFill,
];

/// Runs the full frontier sweep: the uncapped baseline, then every capped
/// policy at every [`FRONTIER_FRACTIONS`] rung of the steady demand.
pub fn run_frontier(cfg: &FleetSimConfig) -> FleetFrontier {
    run_frontier_for(cfg, &CAPPED_POLICIES)
}

/// [`run_frontier`] restricted to a chosen set of capped policies (the
/// uncapped baseline always runs — it anchors the budget ladder).
pub fn run_frontier_for(cfg: &FleetSimConfig, policies: &[SchedulerPolicy]) -> FleetFrontier {
    run_frontier_for_recorded(cfg, policies, None)
}

/// [`run_frontier_for`] with an optional [`MetricsRecorder`]: each frontier
/// point streams its epoch snapshots through the same recorder, in sweep
/// order, so one JSONL file carries the whole frontier.
pub fn run_frontier_for_recorded(
    cfg: &FleetSimConfig,
    policies: &[SchedulerPolicy],
    mut recorder: Option<&mut MetricsRecorder>,
) -> FleetFrontier {
    let uncapped = run_policy_recorded(
        cfg,
        SchedulerPolicy::Uncapped,
        f64::INFINITY,
        recorder.as_deref_mut(),
    );
    let steady_demand = uncapped
        .ledger
        .accounts()
        .last()
        .map_or(0.0, |a| a.spent);
    let mut points = vec![FrontierPoint {
        fraction: None,
        outcome: uncapped,
    }];
    for &fraction in &FRONTIER_FRACTIONS {
        for &policy in policies {
            if policy == SchedulerPolicy::Uncapped {
                continue;
            }
            points.push(FrontierPoint {
                fraction: Some(fraction),
                outcome: run_policy_recorded(
                    cfg,
                    policy,
                    fraction * steady_demand,
                    recorder.as_deref_mut(),
                ),
            });
        }
    }
    frontier(cfg, points, steady_demand)
}

/// Runs a single budget point: one policy (or, with `policy == None`, all
/// four) at an absolute per-epoch budget.
pub fn run_point(
    cfg: &FleetSimConfig,
    budget_per_epoch: f64,
    policy: Option<SchedulerPolicy>,
) -> FleetFrontier {
    run_point_recorded(cfg, budget_per_epoch, policy, None)
}

/// [`run_point`] with an optional [`MetricsRecorder`] attached to every
/// policy run at the point.
pub fn run_point_recorded(
    cfg: &FleetSimConfig,
    budget_per_epoch: f64,
    policy: Option<SchedulerPolicy>,
    mut recorder: Option<&mut MetricsRecorder>,
) -> FleetFrontier {
    let policies: Vec<SchedulerPolicy> =
        policy.map_or_else(|| SchedulerPolicy::ALL.to_vec(), |p| vec![p]);
    let points: Vec<FrontierPoint> = policies
        .into_iter()
        .map(|p| {
            let budget = if p == SchedulerPolicy::Uncapped {
                f64::INFINITY
            } else {
                budget_per_epoch
            };
            FrontierPoint {
                fraction: None,
                outcome: run_policy_recorded(cfg, p, budget, recorder.as_deref_mut()),
            }
        })
        .collect();
    let steady_demand = points
        .iter()
        .find(|pt| pt.outcome.policy == SchedulerPolicy::Uncapped)
        .and_then(|pt| pt.outcome.ledger.accounts().last())
        .map_or(0.0, |a| a.spent);
    frontier(cfg, points, steady_demand)
}

fn frontier(cfg: &FleetSimConfig, points: Vec<FrontierPoint>, steady_demand: f64) -> FleetFrontier {
    let (devices, epochs) = points
        .first()
        .map_or((0, 0), |p| (p.outcome.devices, p.outcome.epochs));
    FleetFrontier {
        points,
        steady_demand,
        devices,
        epochs,
        window: cfg.window,
        seed: cfg.fleet.seed,
        scenario: cfg.scenario.is_active().then(|| {
            format!(
                "{} (scenario seed {:#x})",
                cfg.scenario.label(),
                cfg.scenario.seed
            )
        }),
    }
}

impl FleetFrontier {
    /// Summed phase timings over every simulated point.
    pub fn timing(&self) -> FleetTimings {
        let mut t = FleetTimings::default();
        for p in &self.points {
            t.merge(p.outcome.timing);
        }
        t
    }

    /// Text rendering: the frontier table plus one headline per policy.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fleet simulation: {} devices, {} epochs x {:.1} h (seed {:#x})\n",
            self.devices,
            self.epochs,
            self.window.value() / 3600.0,
            self.seed,
        );
        if self.steady_demand > 0.0 {
            out.push_str(&format!(
                "steady uncapped demand: {:.1} cost units/epoch\n",
                self.steady_demand
            ));
        }
        if let Some(label) = &self.scenario {
            out.push_str(&format!("scenario: {label}\n"));
            // Event totals are a pure function of the scenario seed — the
            // same schedule hits every policy — so the first point speaks
            // for all of them.
            if let Some(stats) = self.points.iter().find_map(|p| p.outcome.scenario.as_ref()) {
                let c = stats.counters;
                out.push_str(&format!(
                    "  events: {} leaves / {} joins / {} reboots, {} absent / {} dormant device-epochs, reports: {} dropped / {} duplicated / {} delayed\n",
                    c.leaves,
                    c.joins,
                    c.reboots,
                    c.absent_epochs,
                    c.dormant_epochs,
                    c.dropped_reports,
                    c.duplicated_reports,
                    c.delayed_reports,
                ));
                if let Some(inc) = &stats.incident {
                    out.push_str(&format!(
                        "  incident: epochs {}..{} (recovery measured from epoch {})\n",
                        inc.start, inc.end, inc.end
                    ));
                }
            }
        }
        out.push('\n');
        // Only incidents have a recovery time worth a column.
        let recover_col = self
            .points
            .iter()
            .any(|p| p.outcome.scenario.as_ref().is_some_and(|s| s.incident.is_some()));
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let o = &p.outcome;
                let budget = if o.budget_per_epoch.is_infinite() {
                    "unlimited".to_string()
                } else if let Some(f) = p.fraction {
                    format!("{:>3.0}% ({:.1})", f * 100.0, o.budget_per_epoch)
                } else {
                    format!("{:.1}", o.budget_per_epoch)
                };
                let mut row = vec![
                    o.policy.name().to_string(),
                    budget,
                    format!("{:.1}", o.ledger.mean_spent_per_epoch()),
                    format!("{:.4}", o.quality.mean_coverage),
                    format!("{:.4}", o.quality.p10_coverage),
                    format!("{:>5.1}%", o.quality.covered_fraction * 100.0),
                    format!("{:>5.1}%", o.quality.starved_fraction * 100.0),
                    format!("{:>5.1}%", o.ledger.throttled_fraction(o.devices) * 100.0),
                    format!("{:.3e}", o.coverage_per_kilocost()),
                ];
                if recover_col {
                    // p50/p95 of the per-device recovery histogram — the
                    // fleet-mean single number hid the slow tail.
                    row.push(match o.scenario.as_ref() {
                        Some(s) => match (s.ttr_p50, s.ttr_p95) {
                            (Some(p50), Some(p95)) => format!("{p50:.0}/{p95:.0} ep"),
                            _ => "never".to_string(),
                        },
                        None => "never".to_string(),
                    });
                    row.push(match o.scenario.as_ref() {
                        Some(s) => s.deadlocked.to_string(),
                        None => "-".to_string(),
                    });
                }
                row
            })
            .collect();
        let mut headers = vec![
            "policy",
            "budget/ep",
            "spent/ep",
            "coverage",
            "p10",
            "covered",
            "starved",
            "throttled",
            "cov/kcost",
        ];
        if recover_col {
            headers.push("recover p50/p95");
            headers.push("deadlocked");
        }
        out.push_str(&crate::report::table(&headers, &rows));
        out.push('\n');
        out.push_str(&self.headlines());
        out
    }

    /// One-line summary per policy: quality per cost unit, benchmarked
    /// against naive uniform throttling at the same budget.
    pub fn headlines(&self) -> String {
        let mut out = String::new();
        for point in &self.points {
            let o = &point.outcome;
            if o.policy == SchedulerPolicy::Uncapped {
                out.push_str(&format!(
                    "  uncapped : coverage {:.4} at {:.1} units/epoch steady — the per-device controller, fleet-wide\n",
                    o.quality.mean_coverage,
                    self.steady_demand,
                ));
                continue;
            }
            // Compare against uniform at the same budget rung, if present.
            let uniform = self.points.iter().find(|p| {
                p.outcome.policy == SchedulerPolicy::Uniform
                    && p.fraction == point.fraction
                    && p.outcome.budget_per_epoch == o.budget_per_epoch
            });
            let rung = match point.fraction {
                Some(f) => format!("{:>3.0}% budget", f * 100.0),
                None => format!("{:.1} units/ep", o.budget_per_epoch),
            };
            match uniform {
                Some(u) if o.policy != SchedulerPolicy::Uniform => {
                    let base = u.outcome.coverage_per_kilocost();
                    let gain = if base > 0.0 {
                        o.coverage_per_kilocost() / base
                    } else {
                        f64::INFINITY
                    };
                    out.push_str(&format!(
                        "  {:<9}@ {rung}: coverage {:.4} — {:.2}x quality per cost unit vs uniform\n",
                        o.policy.name(),
                        o.quality.mean_coverage,
                        gain,
                    ));
                }
                _ => {
                    out.push_str(&format!(
                        "  {:<9}@ {rung}: coverage {:.4} ({:.3e} per kcost)\n",
                        o.policy.name(),
                        o.quality.mean_coverage,
                        o.coverage_per_kilocost(),
                    ));
                }
            }
        }
        out
    }

    /// Machine-readable rendering (see `report::json`).
    pub fn to_json(&self) -> String {
        self.to_json_with(false)
    }

    /// [`to_json`](Self::to_json) with an opt-in per-device breakdown:
    /// `devices == true` adds a `"devices"` array to every frontier row
    /// (index, metric kind, final requested rate, mean coverage, and the
    /// deferred/missed epoch tallies, in fleet order). Off by default —
    /// at 10⁵ devices the breakdown dwarfs the summary rows.
    pub fn to_json_with(&self, devices: bool) -> String {
        use crate::report::json::{JsonArray, JsonObject};
        let mut rows = JsonArray::new();
        for p in &self.points {
            let o = &p.outcome;
            let mut row = JsonObject::new();
            row.field_str("policy", o.policy.name());
            match p.fraction {
                Some(f) => row.field_num("budget_fraction", f),
                None => row.field_null("budget_fraction"),
            };
            row.field_num("budget_per_epoch", o.budget_per_epoch);
            row.field_num("spent_per_epoch", o.ledger.mean_spent_per_epoch());
            row.field_num("total_spent", o.total_spent());
            row.field_num("total_samples", o.ledger.total_samples() as f64);
            row.field_num("mean_coverage", o.quality.mean_coverage);
            row.field_num("p10_coverage", o.quality.p10_coverage);
            row.field_num("covered_fraction", o.quality.covered_fraction);
            row.field_num("starved_fraction", o.quality.starved_fraction);
            row.field_num(
                "throttled_fraction",
                o.ledger.throttled_fraction(o.devices),
            );
            row.field_num("coverage_per_kilocost", o.coverage_per_kilocost());
            if let Some(sc) = &o.scenario {
                match sc.baseline_coverage {
                    Some(b) => row.field_num("baseline_coverage", b),
                    None => row.field_null("baseline_coverage"),
                };
                match sc.ttr_p50 {
                    Some(v) => row.field_num("ttr_p50_epochs", v),
                    None => row.field_null("ttr_p50_epochs"),
                };
                match sc.ttr_p95 {
                    Some(v) => row.field_num("ttr_p95_epochs", v),
                    None => row.field_null("ttr_p95_epochs"),
                };
                row.field_num("recovered_devices", sc.recovered_devices as f64);
                row.field_num("unrecovered_devices", sc.unrecovered_devices as f64);
                row.field_num("deadlocked_devices", sc.deadlocked as f64);
            }
            if let Some(wd) = &o.metrics.watchdog {
                row.field_num("reprobes", wd.reprobes as f64);
                row.field_num("reprobes_starved", wd.starved as f64);
                row.field_num("recovery_granted", wd.recovery_granted);
            }
            if devices {
                let mut per_device = JsonArray::new();
                for d in &o.device_quality {
                    let mut rec = JsonObject::new();
                    rec.field_num("index", d.index as f64);
                    rec.field_str("metric", d.kind.name());
                    rec.field_num("final_rate_hz", d.final_rate);
                    rec.field_num("mean_coverage", d.mean_coverage);
                    rec.field_num("deferred_epochs", d.deferred_epochs as f64);
                    rec.field_num("missed_epochs", d.missed_epochs as f64);
                    per_device.push_raw(&rec.finish());
                }
                row.field_raw("devices", &per_device.finish());
            }
            rows.push_raw(&row.finish());
        }
        let mut root = JsonObject::new();
        root.field_num("devices", self.devices as f64);
        root.field_num("epochs", self.epochs as f64);
        root.field_num("window_seconds", self.window.value());
        root.field_num("seed", self.seed as f64);
        // 0 means "no uncapped baseline ran": unknown, not literally zero.
        if self.steady_demand > 0.0 {
            root.field_num("steady_demand_per_epoch", self.steady_demand);
        } else {
            root.field_null("steady_demand_per_epoch");
        }
        if let Some(stats) = self.points.iter().find_map(|p| p.outcome.scenario.as_ref()) {
            let c = stats.counters;
            let mut sc = JsonObject::new();
            sc.field_str("label", &stats.label);
            sc.field_num("seed", stats.seed as f64);
            sc.field_num("leaves", c.leaves as f64);
            sc.field_num("joins", c.joins as f64);
            sc.field_num("reboots", c.reboots as f64);
            sc.field_num("absent_device_epochs", c.absent_epochs as f64);
            sc.field_num("dormant_device_epochs", c.dormant_epochs as f64);
            sc.field_num("dropped_reports", c.dropped_reports as f64);
            sc.field_num("duplicated_reports", c.duplicated_reports as f64);
            sc.field_num("delayed_reports", c.delayed_reports as f64);
            match &stats.incident {
                Some(inc) => {
                    sc.field_num("incident_start_epoch", inc.start as f64);
                    sc.field_num("incident_end_epoch", inc.end as f64);
                }
                None => {
                    sc.field_null("incident_start_epoch");
                    sc.field_null("incident_end_epoch");
                }
            }
            root.field_raw("scenario", &sc.finish());
        }
        root.field_raw("frontier", &rows.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(threads: usize) -> FleetSimConfig {
        FleetSimConfig {
            fleet: FleetConfig {
                seed: 0xF1EE7,
                devices_per_metric: 2,
                trace_duration: Seconds::from_days(1.0),
            },
            days: 4.0,
            threads,
            ..FleetSimConfig::default()
        }
    }

    #[test]
    fn uncapped_covers_fleet_and_spends_demand() {
        let out = run_policy(&tiny_config(2), SchedulerPolicy::Uncapped, f64::INFINITY);
        assert_eq!(out.devices, 28);
        assert_eq!(out.epochs, 4);
        assert_eq!(out.ledger.epochs(), 4);
        // Nothing is ever throttled without a budget.
        assert_eq!(out.ledger.throttled_fraction(out.devices), 0.0);
        for d in &out.device_quality {
            assert_eq!(d.deferred_epochs, 0);
        }
        // The adaptive fleet keeps most devices alias-free.
        assert!(
            out.quality.mean_coverage > 0.85,
            "uncapped coverage {}",
            out.quality.mean_coverage
        );
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let serial = run_policy(&tiny_config(1), SchedulerPolicy::Fair, 40.0);
        for threads in [2, 3, 5] {
            let parallel = run_policy(&tiny_config(threads), SchedulerPolicy::Fair, 40.0);
            assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
            assert_eq!(serial.device_quality, parallel.device_quality);
            assert_eq!(serial.quality, parallel.quality);
        }
    }

    #[test]
    fn uncapped_fleet_matches_standalone_members() {
        // The engine's uncapped policy must walk each device through exactly
        // the trajectory its controller would take alone — the acceptance
        // guarantee that fleetsim changes nothing until budgets bind.
        let cfg = tiny_config(3);
        let out = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let work = cfg.work();
        for index in [0usize, 7, 27] {
            let (profile, device) = work[index];
            let mut member = FleetMember::new(
                index,
                sweetspot_telemetry::DeviceTrace::synthesize(profile, device, cfg.fleet.seed),
                member_config(&profile, cfg.window),
            );
            let requirement = if member.device().trace().is_quiet() {
                Hertz(0.0)
            } else {
                member.true_nyquist_rate()
            };
            let mut coverage = 0.0;
            let mut scratch = EpochScratch::new();
            for epoch in 0..out.epochs {
                let start = Seconds(epoch as f64 * cfg.window.value());
                let r = member.step_epoch(&mut scratch, start, member.requested_rate(), cfg.window);
                coverage += quality::coverage(r.primary_rate, requirement);
            }
            let expected = coverage / out.epochs as f64;
            assert_eq!(
                out.device_quality[index].mean_coverage, expected,
                "device {index} diverged from its standalone controller"
            );
        }
    }

    #[test]
    fn binding_budget_throttles_and_stays_within_spend() {
        let cfg = tiny_config(2);
        let uncapped = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let steady = uncapped.ledger.accounts().last().unwrap().spent;
        let budget = steady * 0.25;
        let fair = run_policy(&cfg, SchedulerPolicy::Fair, budget);
        assert!(
            fair.ledger.throttled_fraction(fair.devices) > 0.2,
            "a 4x cut must throttle: {}",
            fair.ledger.throttled_fraction(fair.devices)
        );
        // Steady-state epochs respect the budget (the first epoch pre-dates
        // any request information; min-rate floors add rounding slack).
        for account in &fair.ledger.accounts()[1..] {
            assert!(
                account.spent <= budget * 1.35 + 5.0,
                "epoch {} overspent: {} > {}",
                account.epoch,
                account.spent,
                budget
            );
        }
        assert!(fair.quality.mean_coverage < uncapped.quality.mean_coverage);
    }

    #[test]
    fn informed_policies_beat_naive_uniform_throttling() {
        // The acceptance criterion: under a binding budget, fair-share and
        // water-filling buy measurably more fleet quality per cost unit
        // than scaling every device's production rate uniformly — the
        // controllers' Nyquist knowledge is what the scheduler monetizes.
        let cfg = FleetSimConfig {
            fleet: FleetConfig {
                seed: 0xF1EE7,
                devices_per_metric: 4,
                trace_duration: Seconds::from_days(1.0),
            },
            days: 6.0,
            threads: 0,
            ..FleetSimConfig::default()
        };
        let uncapped = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let budget = uncapped.ledger.accounts().last().unwrap().spent * 0.5;
        let uniform = run_policy(&cfg, SchedulerPolicy::Uniform, budget);
        let fair = run_policy(&cfg, SchedulerPolicy::Fair, budget);
        let waterfill = run_policy(&cfg, SchedulerPolicy::WaterFill, budget);
        let eff = |o: &PolicyOutcome| o.coverage_per_kilocost();
        assert!(
            eff(&fair) > eff(&uniform) * 1.05,
            "fair {} vs uniform {}",
            eff(&fair),
            eff(&uniform)
        );
        assert!(
            eff(&waterfill) > eff(&uniform) * 1.05,
            "waterfill {} vs uniform {}",
            eff(&waterfill),
            eff(&uniform)
        );
        // The informed policies' real edge is the starvation tail: uniform
        // throttling blindly starves the devices that genuinely need their
        // rate, while demand-aware schedulers keep them alive.
        assert!(
            fair.quality.p10_coverage > uniform.quality.p10_coverage * 2.0,
            "fair p10 {} vs uniform p10 {}",
            fair.quality.p10_coverage,
            uniform.quality.p10_coverage
        );
        assert!(
            waterfill.quality.p10_coverage > uniform.quality.p10_coverage * 2.0,
            "waterfill p10 {} vs uniform p10 {}",
            waterfill.quality.p10_coverage,
            uniform.quality.p10_coverage
        );
    }

    #[test]
    fn frontier_sweeps_every_rung_and_renders() {
        let cfg = FleetSimConfig {
            fleet: FleetConfig {
                seed: 3,
                devices_per_metric: 1,
                trace_duration: Seconds::from_days(1.0),
            },
            days: 1.0,
            threads: 2,
            ..FleetSimConfig::default()
        };
        let frontier = run_frontier(&cfg);
        assert_eq!(frontier.points.len(), 1 + FRONTIER_FRACTIONS.len() * 3);
        let text = frontier.render();
        for name in ["uncapped", "uniform", "fair", "waterfill"] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
        assert!(text.contains("cov/kcost"));
        let json = frontier.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"frontier\":["));
        assert!(json.contains("\"policy\":\"waterfill\""));
    }

    #[test]
    fn scaled_fleet_runs_and_is_thread_deterministic() {
        // The --devices N path: a 50-pair round-robin fleet under a binding
        // water-fill budget must produce byte-identical results for any
        // worker count (the 10⁵-device guarantee, exercised small).
        let cfg = |threads| FleetSimConfig {
            devices: Some(50),
            days: 3.0,
            threads,
            ..FleetSimConfig::default()
        };
        let serial = run_policy(&cfg(1), SchedulerPolicy::WaterFill, 60.0);
        assert_eq!(serial.devices, 50);
        assert_eq!(serial.epochs, 3);
        for threads in [3, 4] {
            let parallel = run_policy(&cfg(threads), SchedulerPolicy::WaterFill, 60.0);
            assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
            assert_eq!(serial.device_quality, parallel.device_quality);
            assert_eq!(serial.quality, parallel.quality);
        }
    }

    #[test]
    fn batched_verification_cuts_samples_and_stays_deterministic() {
        // --verify-every k: settled members skip the §4.1 companion stream
        // on k−1 of every k epochs, so the fleet must spend measurably
        // fewer samples than continuous verification — without giving up
        // thread determinism.
        let cfg = |threads, verify_every| FleetSimConfig {
            devices: Some(40),
            days: 8.0,
            threads,
            verify_every,
            ..FleetSimConfig::default()
        };
        let continuous = run_policy(&cfg(1, 1), SchedulerPolicy::Uncapped, f64::INFINITY);
        let batched = run_policy(&cfg(1, 3), SchedulerPolicy::Uncapped, f64::INFINITY);
        assert!(
            batched.ledger.total_samples() < continuous.ledger.total_samples(),
            "k=3 must acquire fewer samples: {} vs {}",
            batched.ledger.total_samples(),
            continuous.ledger.total_samples()
        );
        // Skipping verification must not wreck quality: rates can only be
        // held or raised on skipped epochs, never lowered.
        assert!(
            batched.quality.mean_coverage >= continuous.quality.mean_coverage * 0.98,
            "batched coverage {} vs continuous {}",
            batched.quality.mean_coverage,
            continuous.quality.mean_coverage
        );
        for threads in [2, 4] {
            let parallel = run_policy(&cfg(threads, 3), SchedulerPolicy::Uncapped, f64::INFINITY);
            assert_eq!(batched.ledger.accounts(), parallel.ledger.accounts());
            assert_eq!(batched.device_quality, parallel.device_quality);
        }
    }

    #[test]
    fn memory_stats_report_flat_members_and_worker_scratch() {
        let out = run_policy(&tiny_config(2), SchedulerPolicy::Uncapped, f64::INFINITY);
        assert!(out.memory.member_bytes > 0);
        assert!(out.memory.scratch_bytes > 0);
        assert!(out.memory.fft_table_bytes > 0);
        assert_eq!(out.memory.workers, 2);
        // Durable member state stays far below the legacy ~130 B/sample
        // working sets; a member is identity + model + controller only.
        assert!(
            out.memory.bytes_per_member(out.devices) < 4096.0,
            "durable bytes/member ballooned: {}",
            out.memory.bytes_per_member(out.devices)
        );
    }

    #[test]
    fn fft_table_budget_caps_the_cache_without_changing_output() {
        // A cap tight enough to force eviction churn on even this small
        // fleet must leave every observable output bit-identical to the
        // unbounded run — tables are pure data — while actually holding
        // the post-run cache at or under the per-shard floor.
        let cfg = |budget| FleetSimConfig {
            fft_table_budget: budget,
            ..tiny_config(2)
        };
        let unbounded = run_policy(&cfg(None), SchedulerPolicy::Uncapped, f64::INFINITY);
        let capped = run_policy(&cfg(Some(1)), SchedulerPolicy::Uncapped, f64::INFINITY);
        assert_eq!(unbounded.ledger.accounts(), capped.ledger.accounts());
        assert_eq!(unbounded.device_quality, capped.device_quality);
        assert_eq!(unbounded.quality, capped.quality);
        // A 1-byte total budget evicts everything but each in-flight table.
        assert!(
            capped.memory.fft_table_bytes < unbounded.memory.fft_table_bytes,
            "capped cache ({} B) did not shrink below unbounded ({} B)",
            capped.memory.fft_table_bytes,
            unbounded.memory.fft_table_bytes
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn paper_scale_and_devices_conflict() {
        let cfg = FleetSimConfig {
            paper_scale: true,
            devices: Some(10),
            ..FleetSimConfig::default()
        };
        cfg.work();
    }

    #[test]
    fn run_point_single_policy() {
        let cfg = tiny_config(2);
        let f = run_point(&cfg, 30.0, Some(SchedulerPolicy::WaterFill));
        assert_eq!(f.points.len(), 1);
        assert_eq!(f.points[0].outcome.policy, SchedulerPolicy::WaterFill);
        assert_eq!(f.points[0].outcome.budget_per_epoch, 30.0);
    }

    #[test]
    fn scenario_runs_are_thread_deterministic() {
        // The full gauntlet — churn, regime incident, lossy reports — under
        // a binding water-fill budget must stay byte-identical for any
        // worker count: events are dealt from the scenario seed alone.
        let spec = ScenarioSpec {
            seed: 42,
            ..ScenarioSpec::parse("churn+incident+lossy-reports").unwrap()
        };
        let cfg = |threads| FleetSimConfig {
            scenario: spec,
            days: 8.0,
            ..tiny_config(threads)
        };
        let serial = run_policy(&cfg(1), SchedulerPolicy::WaterFill, 40.0);
        for threads in [2, 4] {
            let parallel = run_policy(&cfg(threads), SchedulerPolicy::WaterFill, 40.0);
            assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
            assert_eq!(serial.device_quality, parallel.device_quality);
            assert_eq!(serial.quality, parallel.quality);
            assert_eq!(serial.scenario, parallel.scenario);
        }
    }

    #[test]
    fn churn_scenario_counts_lifecycle_events_and_keeps_slots() {
        let spec = ScenarioSpec {
            seed: 9,
            leave_prob: 0.05,
            join_prob: 0.5,
            reboot_prob: 0.02,
            ..ScenarioSpec::none()
        };
        let cfg = FleetSimConfig {
            scenario: spec,
            days: 10.0,
            ..tiny_config(2)
        };
        let out = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let stats = out.scenario.expect("active scenario must report stats");
        assert!(stats.counters.leaves > 0, "{:?}", stats.counters);
        assert!(stats.counters.joins > 0, "{:?}", stats.counters);
        assert!(stats.counters.reboots > 0, "{:?}", stats.counters);
        assert!(stats.counters.absent_epochs > 0, "{:?}", stats.counters);
        // Churn never resizes the fleet's slot geometry: every device keeps
        // its index and a coverage score over the epochs it was present.
        assert_eq!(out.device_quality.len(), 28);
        assert!(
            out.quality.mean_coverage > 0.5,
            "churned uncapped coverage collapsed: {}",
            out.quality.mean_coverage
        );
    }

    #[test]
    fn incident_scenario_measures_recovery() {
        let cfg = FleetSimConfig {
            scenario: ScenarioSpec {
                seed: 1,
                ..ScenarioSpec::incident()
            },
            days: 16.0,
            ..tiny_config(2)
        };
        let out = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let stats = out.scenario.expect("scenario stats");
        assert_eq!(stats.incident, Some(4..10));
        let baseline = stats.baseline_coverage.expect("pre-incident baseline");
        assert!(baseline > 0.8, "baseline {baseline}");
        // An uncapped fleet leaves the incident sampling at incident-era
        // rates, so post-recovery coverage snaps back within a few epochs.
        let ttr = stats.time_to_recover.expect("uncapped fleet must recover");
        assert!(ttr <= 4, "time to recover {ttr} epochs");
    }

    #[test]
    fn lossy_reports_scenario_defers_and_bills_duplicates() {
        let spec = ScenarioSpec {
            seed: 4,
            drop_prob: 0.2,
            dup_prob: 0.1,
            delay_prob: 0.1,
            ..ScenarioSpec::none()
        };
        let cfg = FleetSimConfig {
            scenario: spec,
            days: 10.0,
            ..tiny_config(1)
        };
        let out = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        let stats = out.scenario.clone().expect("scenario stats");
        assert!(stats.counters.dropped_reports > 0);
        assert!(stats.counters.delayed_reports > 0);
        assert!(stats.counters.duplicated_reports > 0);
        // Every dropped or delayed report is a deferral the controller owns
        // — and with no budget cap those are the *only* deferrals.
        let deferred: usize = out.device_quality.iter().map(|d| d.deferred_epochs).sum();
        assert_eq!(
            deferred,
            stats.counters.dropped_reports + stats.counters.delayed_reports
        );
    }

    #[test]
    fn cost_skew_bills_the_ledger_but_leaves_control_untouched() {
        let healthy = run_policy(&tiny_config(2), SchedulerPolicy::Uncapped, f64::INFINITY);
        let cfg = FleetSimConfig {
            scenario: ScenarioSpec {
                seed: 2,
                ..ScenarioSpec::cost_skew()
            },
            ..tiny_config(2)
        };
        let skew = run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
        // Cost asymmetry is an accounting lens: controllers, samples, and
        // quality are untouched; only the ledger's spend moves.
        assert_eq!(healthy.device_quality, skew.device_quality);
        assert_eq!(healthy.ledger.total_samples(), skew.ledger.total_samples());
        assert!(
            (healthy.total_spent() - skew.total_spent()).abs() > 1e-6,
            "skewed spend {} should differ from uniform {}",
            skew.total_spent(),
            healthy.total_spent()
        );
        assert!(skew.scenario.is_some());
    }

    #[test]
    fn scenario_frontier_renders_recovery_and_json() {
        let cfg = FleetSimConfig {
            scenario: ScenarioSpec {
                seed: 3,
                ..ScenarioSpec::parse("churn+incident").unwrap()
            },
            days: 8.0,
            ..tiny_config(2)
        };
        let f = run_point(&cfg, 40.0, Some(SchedulerPolicy::WaterFill));
        let text = f.render();
        assert!(text.contains("scenario: churn+incident"), "{text}");
        assert!(text.contains("recover"), "{text}");
        assert!(text.contains("events:"), "{text}");
        let json = f.to_json();
        assert!(json.contains("\"scenario\":{"), "{json}");
        assert!(json.contains("\"label\":\"churn+incident\""), "{json}");
        assert!(json.contains("ttr_p50_epochs"), "{json}");
        assert!(json.contains("ttr_p95_epochs"), "{json}");
        assert!(json.contains("deadlocked_devices"), "{json}");
        assert!(json.contains("\"dormant_device_epochs\""), "{json}");
        // Healthy sweeps stay scenario-free in both renderings.
        let healthy = run_point(&tiny_config(2), 40.0, Some(SchedulerPolicy::WaterFill));
        assert!(!healthy.render().contains("scenario"));
        assert!(!healthy.to_json().contains("scenario"));
    }

    /// Regression: the post-revert aliasing deadlock. Under a binding budget
    /// a 3× regime incident throttles probing members hard enough that the
    /// flat folded spectrum verifies clean and the controller settles at the
    /// FFT-bin floor — a rate too slow to ever verify again. The device then
    /// reads "no alarm" forever, through the revert and beyond, despite
    /// covering a fraction of its requirement. Without the watchdog the
    /// deadlock census stays positive; with a recovery slice the scheduled
    /// re-probes above the remembered max clear it within the backoff
    /// schedule.
    #[test]
    fn watchdog_reprobe_escapes_aliasing_deadlock() {
        let cfg = |frac: f64| FleetSimConfig {
            scenario: ScenarioSpec {
                seed: 1,
                ..ScenarioSpec::incident()
            },
            days: 24.0,
            fleet: FleetConfig {
                seed: 0xF1EE7,
                devices_per_metric: 4,
                trace_duration: Seconds::from_days(1.0),
            },
            threads: 2,
            recovery_budget_frac: frac,
            ..FleetSimConfig::default()
        };
        let budget = 300_000.0;
        let stuck = run_policy(&cfg(0.0), SchedulerPolicy::WaterFill, budget);
        let stuck_stats = stuck.scenario.as_ref().expect("scenario stats");
        assert!(
            stuck_stats.deadlocked > 0,
            "the incident must leave devices aliasing-deadlocked without a watchdog"
        );
        assert!(stuck.metrics.watchdog.is_none(), "frac 0 builds no watchdog state");

        let healed = run_policy(&cfg(0.25), SchedulerPolicy::WaterFill, budget);
        let healed_stats = healed.scenario.as_ref().expect("scenario stats");
        assert_eq!(
            healed_stats.deadlocked, 0,
            "watchdog re-probes must clear every deadlocked device"
        );
        let wd = healed.metrics.watchdog.expect("watchdog census");
        assert!(wd.reprobes > 0, "recovery must come from scheduled re-probes");
        // The recovery slice is bounded: total spend stays within the budget
        // plus the slice (small slack for integral sample rounding).
        let cap = budget * (1.0 + 0.25) * healed.epochs as f64;
        assert!(
            healed.total_spent() <= cap * 1.01,
            "spend {} exceeds budget + recovery slice {}",
            healed.total_spent(),
            cap
        );
    }

    /// The full round-2 chaos mix — churn, a regime incident, duty-cycled
    /// sleep — with the watchdog on must stay byte-identical across worker
    /// counts: events are dealt by stateless hashing, the watchdog pass is
    /// serial in device order, and every aggregation runs in index order.
    #[test]
    fn watchdog_and_dormancy_stay_thread_deterministic() {
        let cfg = |threads: usize| FleetSimConfig {
            scenario: ScenarioSpec {
                seed: 11,
                ..ScenarioSpec::parse("churn+incident+duty").unwrap()
            },
            days: 24.0,
            fleet: FleetConfig {
                seed: 0xF1EE7,
                devices_per_metric: 4,
                trace_duration: Seconds::from_days(1.0),
            },
            threads,
            recovery_budget_frac: 0.25,
            ..FleetSimConfig::default()
        };
        let serial = run_policy(&cfg(1), SchedulerPolicy::WaterFill, 300_000.0);
        let wd = serial.metrics.watchdog.expect("watchdog census");
        assert!(wd.reprobes > 0, "the chaos mix must exercise the watchdog");
        let dealt = serial.scenario.as_ref().unwrap();
        assert!(dealt.counters.dormant_epochs > 0, "duty cycle must nap devices");
        for threads in [2, 4] {
            let parallel = run_policy(&cfg(threads), SchedulerPolicy::WaterFill, 300_000.0);
            assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
            assert_eq!(serial.device_quality, parallel.device_quality);
            assert_eq!(serial.quality, parallel.quality);
            assert_eq!(serial.scenario, parallel.scenario);
            assert_eq!(serial.metrics, parallel.metrics);
        }
    }
}
