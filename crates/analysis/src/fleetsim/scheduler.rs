//! Cross-device rate schedulers: how a shared collection budget is split
//! across the fleet's controllers each epoch.
//!
//! Every policy is a pure function from (requests, weights, production
//! rates, capacity) to grants — no RNG, no time, no result-bearing shared
//! state — so the fleet simulation stays byte-identical for any thread
//! count. The [`Scheduler`] trait adds *performance-bearing* state on top:
//! recycled `grants`/`order` buffers and, for water-filling, a persistent
//! sorted order maintained incrementally (adaptive controllers hold their
//! rates on most epochs, so re-sorting all `n` requests every epoch — fine
//! at 1613 devices, O(n log n) at 10⁵ — is almost always wasted work). The
//! stateful path is pinned bit-identical to the stateless [`allocate`]
//! reference by unit and property tests.
//!
//! Capacity and grants live in **rate space** (Hz summed over devices): the
//! engine converts the operator's cost-unit budget with the
//! [`CostModel`](sweetspot_monitor::CostModel) unit price once per epoch and
//! hands schedulers plain numbers.

/// A cross-device scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// No budget: every controller gets exactly what it asks for. This is
    /// the per-device §4.2 controller, unchanged — the fleet baseline.
    Uncapped,
    /// Naive uniform throttling — today's operator response to budget
    /// pressure: every device is polled at the *same fraction of its
    /// production rate*, chosen to exhaust the budget. Controller requests
    /// are ignored; Nyquist knowledge is wasted.
    Uniform,
    /// Fair share: proportional throttling. When aggregate demand exceeds
    /// capacity, every request is scaled by the same factor, so each
    /// controller keeps its *relative* share.
    Fair,
    /// Weighted max-min water-filling: cheap requests are fully satisfied,
    /// the remaining budget is spread level across the expensive ones
    /// (per-metric weights tilt the water level).
    WaterFill,
}

impl SchedulerPolicy {
    /// All policies, in frontier-table order.
    pub const ALL: [SchedulerPolicy; 4] = [
        SchedulerPolicy::Uncapped,
        SchedulerPolicy::Uniform,
        SchedulerPolicy::Fair,
        SchedulerPolicy::WaterFill,
    ];

    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Uncapped => "uncapped",
            SchedulerPolicy::Uniform => "uniform",
            SchedulerPolicy::Fair => "fair",
            SchedulerPolicy::WaterFill => "waterfill",
        }
    }

    /// Parses a CLI name (case-insensitive).
    pub fn parse(name: &str) -> Option<SchedulerPolicy> {
        Self::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// Builds the stateful [`Scheduler`] for this policy over a fixed fleet:
    /// `weights` and `production` are per-device, in fleet order, and must
    /// not change between epochs (the fleet population is fixed for a run).
    ///
    /// # Panics
    /// Panics if the slices disagree in length or any weight is not finite
    /// and positive.
    pub fn scheduler(self, weights: &[f64], production: &[f64]) -> Box<dyn Scheduler> {
        assert_eq!(
            weights.len(),
            production.len(),
            "one weight and one production rate per device"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be finite and positive"
        );
        match self {
            SchedulerPolicy::Uncapped => Box::new(UncappedScheduler {
                devices: weights.len(),
            }),
            SchedulerPolicy::Uniform => Box::new(UniformScheduler::new(production)),
            SchedulerPolicy::Fair => Box::new(FairScheduler {
                devices: weights.len(),
            }),
            SchedulerPolicy::WaterFill => Box::new(WaterFillScheduler::new(weights)),
        }
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Order-maintenance work counters for one [`Scheduler`] over a run.
///
/// Schedulers run serially in the engine (one `allocate` call per epoch on
/// the coordinating thread), so these totals are **thread-invariant**: the
/// same simulation yields the same counts for any `--threads N`. Policies
/// without incremental state report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Epochs where aggregate demand fit the budget: grants passed through
    /// and the persistent sorted order was never consulted.
    pub untouched_epochs: u64,
    /// Binding epochs where no request changed since the last refresh — the
    /// stored order was reused as-is.
    pub nochurn_epochs: u64,
    /// Binding epochs repaired with the incremental merge (changed indices
    /// re-sorted among themselves and merged into the unchanged remainder).
    pub incremental_repairs: u64,
    /// Binding epochs that re-sorted the full fleet: the priming sort plus
    /// every epoch whose churn crossed [`full_resort_due`].
    pub full_resorts: u64,
    /// Total re-keyed devices across all refresh passes (the churn volume
    /// the incremental path absorbed or punted on).
    pub changed_keys: u64,
}

impl SchedStats {
    /// Accumulates `other` into `self` (summing across runs or policies).
    pub fn merge(&mut self, other: &SchedStats) {
        self.untouched_epochs += other.untouched_epochs;
        self.nochurn_epochs += other.nochurn_epochs;
        self.incremental_repairs += other.incremental_repairs;
        self.full_resorts += other.full_resorts;
        self.changed_keys += other.changed_keys;
    }
}

/// Computes per-device grants for one epoch — the stateless **from-scratch
/// reference** implementation. The engine runs the stateful [`Scheduler`]
/// objects instead (same grants bit for bit, without the per-epoch sort);
/// tests pin the two against each other.
///
/// * `requests` — each controller's requested rate (Hz).
/// * `weights` — per-device scheduling weights (only [`WaterFill`] uses
///   them; must be positive).
/// * `production` — each device's production default rate (only
///   [`Uniform`] uses them).
/// * `capacity` — total grantable rate (Hz); `f64::INFINITY` disables the
///   budget.
///
/// `grants` is cleared and refilled (recycled across epochs). Every policy
/// guarantees `Σ grants ≤ max(capacity, Σ requests)` and, except
/// [`Uniform`] (which ignores requests by design), `grants[i] ≤
/// requests[i]` whenever the budget binds.
///
/// [`Uniform`]: SchedulerPolicy::Uniform
/// [`WaterFill`]: SchedulerPolicy::WaterFill
pub fn allocate(
    policy: SchedulerPolicy,
    requests: &[f64],
    weights: &[f64],
    production: &[f64],
    capacity: f64,
    grants: &mut Vec<f64>,
) {
    assert_eq!(requests.len(), weights.len(), "one weight per device");
    assert_eq!(requests.len(), production.len(), "one production rate per device");
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(
        requests.iter().all(|r| r.is_finite() && *r >= 0.0),
        "requests must be finite and non-negative"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "weights must be finite and positive"
    );
    grants.clear();
    let demand: f64 = requests.iter().sum();
    match policy {
        SchedulerPolicy::Uncapped => grants.extend_from_slice(requests),
        SchedulerPolicy::Uniform => {
            // One fleet-wide fraction of production polling; never exceeds
            // the production default (an operator cutting cost does not
            // poll *faster* than today).
            let prod_total: f64 = production.iter().sum();
            let fraction = if prod_total > 0.0 {
                (capacity / prod_total).min(1.0)
            } else {
                0.0
            };
            grants.extend(production.iter().map(|p| p * fraction));
        }
        SchedulerPolicy::Fair => {
            if demand <= capacity {
                grants.extend_from_slice(requests);
            } else {
                let scale = if demand > 0.0 { capacity / demand } else { 0.0 };
                grants.extend(requests.iter().map(|r| r * scale));
            }
        }
        SchedulerPolicy::WaterFill => {
            if demand <= capacity {
                grants.extend_from_slice(requests);
            } else {
                water_fill(requests, weights, capacity, grants);
            }
        }
    }
}

/// Weighted max-min water-filling: find the level `L` such that
/// `Σ min(requests[i], L·weights[i]) = capacity`; each device is granted
/// `min(request, L·weight)`. Devices whose (weight-normalized) request sits
/// below the water level are fully satisfied; the rest share the remainder
/// level with the surplus of the satisfied redistributed — the max-min
/// fair allocation.
fn water_fill(requests: &[f64], weights: &[f64], capacity: f64, grants: &mut Vec<f64>) {
    let n = requests.len();
    // Sort device indices by normalized request (the order the water level
    // passes them). Ties break by index: fully deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = requests[a] / weights[a];
        let rb = requests[b] / weights[b];
        ra.partial_cmp(&rb)
            .expect("requests and weights must be finite and positive")
            .then(a.cmp(&b))
    });

    let mut level = 0.0f64; // current water level (normalized rate)
    let mut remaining = capacity;
    let mut weight_left: f64 = weights.iter().sum();
    grants.resize(n, 0.0);
    let mut cursor = 0;
    while cursor < n {
        let i = order[cursor];
        let target = requests[i] / weights[i];
        let lift = (target - level) * weight_left;
        if lift > remaining {
            break;
        }
        // The level reaches this device's request: fully satisfied.
        remaining -= lift;
        level = target;
        weight_left -= weights[i];
        grants[i] = requests[i];
        cursor += 1;
    }
    if cursor < n && weight_left > 0.0 {
        // Budget exhausted mid-lift: everyone still unsatisfied shares the
        // final level.
        level += remaining / weight_left;
        for &i in &order[cursor..] {
            grants[i] = (level * weights[i]).min(requests[i]);
        }
    }
}

/// A stateful per-run scheduler: built once per simulation (fixed weights
/// and production rates), called once per epoch. Implementations recycle
/// every working buffer, so steady-state scheduling allocates nothing.
///
/// Grants must be **bit-identical** to [`allocate`] with the same policy and
/// inputs — state is a performance device, never a result input.
pub trait Scheduler: Send {
    /// The policy this scheduler implements.
    fn policy(&self) -> SchedulerPolicy;

    /// Computes this epoch's grants: `grants` is cleared and refilled
    /// (recycled across epochs by the caller). Semantics are exactly
    /// [`allocate`]'s.
    ///
    /// # Panics
    /// Panics if `requests` disagrees in length with the construction-time
    /// fleet, holds non-finite/negative entries, or `capacity` is negative.
    fn allocate(&mut self, requests: &[f64], capacity: f64, grants: &mut Vec<f64>);

    /// Order-maintenance work accumulated so far. State-free policies keep
    /// the default: all zeros.
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

fn validate_epoch_inputs(requests: &[f64], expected_len: usize, capacity: f64) {
    assert_eq!(
        requests.len(),
        expected_len,
        "request vector must match the fleet the scheduler was built for"
    );
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(
        requests.iter().all(|r| r.is_finite() && *r >= 0.0),
        "requests must be finite and non-negative"
    );
}

/// [`SchedulerPolicy::Uncapped`]: every request granted verbatim.
struct UncappedScheduler {
    devices: usize,
}

impl Scheduler for UncappedScheduler {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Uncapped
    }

    fn allocate(&mut self, requests: &[f64], capacity: f64, grants: &mut Vec<f64>) {
        validate_epoch_inputs(requests, self.devices, capacity);
        grants.clear();
        grants.extend_from_slice(requests);
    }
}

/// [`SchedulerPolicy::Uniform`]: one fleet-wide fraction of production
/// polling. The production total is summed once at construction (same
/// left-to-right sum as the reference computes per epoch).
struct UniformScheduler {
    production: Vec<f64>,
    production_total: f64,
}

impl UniformScheduler {
    fn new(production: &[f64]) -> Self {
        UniformScheduler {
            production: production.to_vec(),
            production_total: production.iter().sum(),
        }
    }
}

impl Scheduler for UniformScheduler {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Uniform
    }

    fn allocate(&mut self, requests: &[f64], capacity: f64, grants: &mut Vec<f64>) {
        validate_epoch_inputs(requests, self.production.len(), capacity);
        grants.clear();
        let fraction = if self.production_total > 0.0 {
            (capacity / self.production_total).min(1.0)
        } else {
            0.0
        };
        grants.extend(self.production.iter().map(|p| p * fraction));
    }
}

/// [`SchedulerPolicy::Fair`]: proportional throttling (stateless beyond the
/// fleet-size contract — the demand sum has to be recomputed every epoch
/// anyway).
struct FairScheduler {
    devices: usize,
}

impl Scheduler for FairScheduler {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Fair
    }

    fn allocate(&mut self, requests: &[f64], capacity: f64, grants: &mut Vec<f64>) {
        validate_epoch_inputs(requests, self.devices, capacity);
        grants.clear();
        let demand: f64 = requests.iter().sum();
        if demand <= capacity {
            grants.extend_from_slice(requests);
        } else {
            let scale = if demand > 0.0 { capacity / demand } else { 0.0 };
            grants.extend(requests.iter().map(|r| r * scale));
        }
    }
}

/// [`SchedulerPolicy::WaterFill`] with **incremental order maintenance**.
///
/// The water level passes devices in ascending normalized-request order
/// (`request/weight`, ties by index). Instead of re-sorting all `n` devices
/// every epoch, the scheduler keeps the sorted order from the previous
/// binding epoch and repairs it: requests that changed since then (typically
/// a small fraction — settled and evidence-free controllers hold their
/// rates) are extracted, sorted among themselves, and merged back into the
/// unchanged — still sorted — remainder. One O(n) merge walk replaces the
/// O(n log n) comparison sort, and the normalized keys are divided once per
/// *change* instead of O(n log n) times per epoch.
///
/// Because the comparator is a strict total order (index tie-break), the
/// repaired order equals the from-scratch sort exactly, and the fill walk
/// performs the reference's arithmetic operation for operation — grants stay
/// bit-identical (pinned by tests).
pub struct WaterFillScheduler {
    weights: Vec<f64>,
    /// `Σ weights`, summed once (same order as the reference's per-call sum).
    weight_total: f64,
    /// Requests as of the last order refresh.
    prev: Vec<f64>,
    /// `requests[i] / weights[i]`, maintained alongside `prev`.
    norm: Vec<f64>,
    /// Device indices sorted by `(norm, index)`.
    order: Vec<usize>,
    /// `true` once `prev`/`norm`/`order` hold a real epoch.
    primed: bool,
    /// Scratch: indices whose request changed this epoch.
    changed: Vec<usize>,
    /// Scratch: merge output, swapped with `order`.
    merged: Vec<usize>,
    /// Change marker per device, stamped with `generation` (O(1) membership
    /// for the merge walk without clearing a flag array each epoch).
    stamp: Vec<u64>,
    generation: u64,
    /// Which maintenance path each epoch took (reported via
    /// [`Scheduler::stats`]; never consulted by the allocation itself).
    stats: SchedStats,
}

impl WaterFillScheduler {
    /// One scheduler per run; `weights` are per-device, in fleet order.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be finite and positive"
        );
        WaterFillScheduler {
            weight_total: weights.iter().sum(),
            weights: weights.to_vec(),
            prev: Vec::new(),
            norm: Vec::new(),
            order: Vec::new(),
            primed: false,
            changed: Vec::new(),
            merged: Vec::new(),
            stamp: Vec::new(),
            generation: 0,
            stats: SchedStats::default(),
        }
    }

    fn key_less(&self, a: usize, b: usize) -> bool {
        sort_key(self.norm[a], a, self.norm[b], b) == std::cmp::Ordering::Less
    }

    fn full_sort(&mut self, requests: &[f64]) {
        let n = requests.len();
        self.norm.clear();
        self.norm
            .extend(requests.iter().zip(&self.weights).map(|(r, w)| r / w));
        self.prev.clear();
        self.prev.extend_from_slice(requests);
        self.order.clear();
        self.order.extend(0..n);
        let norm = &self.norm;
        self.order
            .sort_unstable_by(|&a, &b| sort_key(norm[a], a, norm[b], b));
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.primed = true;
    }

    /// Brings `order` up to date with this epoch's requests.
    fn refresh_order(&mut self, requests: &[f64]) {
        let n = requests.len();
        if !self.primed {
            self.full_sort(requests);
            self.stats.full_resorts += 1;
            return;
        }
        self.changed.clear();
        for (i, (&req, prev)) in requests.iter().zip(self.prev.iter_mut()).enumerate() {
            // Exact comparison is correct here: every request is finite
            // (validated) and a held rate is bit-identical across epochs.
            if req != *prev {
                self.changed.push(i);
                *prev = req;
                self.norm[i] = req / self.weights[i];
            }
        }
        if self.changed.is_empty() {
            self.stats.nochurn_epochs += 1;
            return;
        }
        self.stats.changed_keys += self.changed.len() as u64;
        if full_resort_due(self.changed.len(), n) {
            self.stats.full_resorts += 1;
            let norm = &self.norm;
            self.order
                .sort_unstable_by(|&a, &b| sort_key(norm[a], a, norm[b], b));
            return;
        }
        self.stats.incremental_repairs += 1;
        self.generation += 1;
        for &i in &self.changed {
            self.stamp[i] = self.generation;
        }
        let norm = &self.norm;
        self.changed
            .sort_unstable_by(|&a, &b| sort_key(norm[a], a, norm[b], b));
        // Merge the unchanged subsequence of `order` (already sorted, keys
        // untouched) with the re-keyed changed indices.
        self.merged.clear();
        self.merged.reserve(n);
        let mut c = 0;
        for &i in &self.order {
            if self.stamp[i] == self.generation {
                continue; // re-inserted from `changed` at its new position
            }
            while c < self.changed.len() && self.key_less(self.changed[c], i) {
                self.merged.push(self.changed[c]);
                c += 1;
            }
            self.merged.push(i);
        }
        self.merged.extend_from_slice(&self.changed[c..]);
        std::mem::swap(&mut self.order, &mut self.merged);
        debug_assert_eq!(self.order.len(), n);
    }
}

/// Churn divisor for [`full_resort_due`]: the incremental merge wins only
/// while at most `1/FULL_RESORT_CHURN_DIVISOR` of the fleet re-keyed.
///
/// The merge path pays `c·log c` to sort the changed indices plus an `O(n)`
/// merge walk with stamp bookkeeping; the full path is one
/// `sort_unstable_by` over an almost-sorted permutation (pdqsort's best
/// case). The walk's per-element cost is a fraction of the sort's, so the
/// crossover sits well below one-half — a quarter in practice on fleet
/// workloads, where epochs are either quiet (a few probing devices) or
/// stormy (budget steps re-keying most of the fleet), with little in
/// between. Both paths yield the same permutation — the comparator is a
/// strict total order — so this is a pure performance knob: a wrong value
/// costs time, never correctness.
pub const FULL_RESORT_CHURN_DIVISOR: usize = 4;

/// True when this epoch's churn (`changed` of `n` devices re-keyed) crosses
/// the [`FULL_RESORT_CHURN_DIVISOR`] threshold and `refresh_order` should
/// abandon the incremental merge for a full re-sort. The boundary is
/// *strict*: exactly `n / FULL_RESORT_CHURN_DIVISOR` changed devices (for
/// divisible `n`) still merge.
pub fn full_resort_due(changed: usize, n: usize) -> bool {
    changed * FULL_RESORT_CHURN_DIVISOR > n
}

fn sort_key(na: f64, a: usize, nb: f64, b: usize) -> std::cmp::Ordering {
    na.partial_cmp(&nb)
        .expect("requests and weights must be finite and positive")
        .then(a.cmp(&b))
}

impl Scheduler for WaterFillScheduler {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::WaterFill
    }

    fn allocate(&mut self, requests: &[f64], capacity: f64, grants: &mut Vec<f64>) {
        validate_epoch_inputs(requests, self.weights.len(), capacity);
        grants.clear();
        let demand: f64 = requests.iter().sum();
        if demand <= capacity {
            self.stats.untouched_epochs += 1;
            grants.extend_from_slice(requests);
            return;
        }
        self.refresh_order(requests);
        // The fill walk, exactly as the reference `water_fill` (same
        // operations in the same order on the same values — `norm[i]` caches
        // the reference's `requests[i] / weights[i]` division bitwise).
        let n = requests.len();
        let mut level = 0.0f64;
        let mut remaining = capacity;
        let mut weight_left = self.weight_total;
        grants.resize(n, 0.0);
        let mut cursor = 0;
        while cursor < n {
            let i = self.order[cursor];
            let target = self.norm[i];
            let lift = (target - level) * weight_left;
            if lift > remaining {
                break;
            }
            remaining -= lift;
            level = target;
            weight_left -= self.weights[i];
            grants[i] = requests[i];
            cursor += 1;
        }
        if cursor < n && weight_left > 0.0 {
            level += remaining / weight_left;
            for &i in &self.order[cursor..] {
                grants[i] = (level * self.weights[i]).min(requests[i]);
            }
        }
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(grants: &[f64]) -> f64 {
        grants.iter().sum()
    }

    fn alloc(policy: SchedulerPolicy, requests: &[f64], capacity: f64) -> Vec<f64> {
        let ones = vec![1.0; requests.len()];
        let mut grants = Vec::new();
        allocate(policy, requests, &ones, &ones, capacity, &mut grants);
        grants
    }

    #[test]
    fn uncapped_grants_everything() {
        let r = [3.0, 1.0, 0.5];
        let g = alloc(SchedulerPolicy::Uncapped, &r, 0.1);
        assert_eq!(g, r.to_vec());
    }

    #[test]
    fn fair_scales_proportionally_when_binding() {
        let r = [4.0, 2.0, 2.0];
        let g = alloc(SchedulerPolicy::Fair, &r, 4.0);
        assert!((total(&g) - 4.0).abs() < 1e-12);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        // Non-binding budget: grants pass through.
        let g = alloc(SchedulerPolicy::Fair, &r, 100.0);
        assert_eq!(g, r.to_vec());
    }

    #[test]
    fn waterfill_satisfies_small_requests_first() {
        let r = [10.0, 1.0, 1.0];
        let g = alloc(SchedulerPolicy::WaterFill, &r, 6.0);
        assert!((total(&g) - 6.0).abs() < 1e-12);
        // Small requesters are made whole; the big one gets the remainder.
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
        assert!((g[0] - 4.0).abs() < 1e-12);
        // Fair, by contrast, would cut the small requesters to 0.5 each.
    }

    #[test]
    fn waterfill_is_max_min_fair() {
        // No device can gain without taking from a device with an equal or
        // smaller grant: all unsatisfied devices sit at the same level.
        let r = [8.0, 5.0, 3.0, 0.5];
        let g = alloc(SchedulerPolicy::WaterFill, &r, 7.5);
        assert!((total(&g) - 7.5).abs() < 1e-12);
        assert!((g[3] - 0.5).abs() < 1e-12, "cheap request fully met");
        // 7.0 left across three devices, level 7/3 < 3: all capped equally.
        for (i, grant) in g.iter().enumerate().take(3) {
            assert!((grant - 7.0 / 3.0).abs() < 1e-9, "device {i}: {grant}");
        }
    }

    #[test]
    fn waterfill_weights_tilt_the_level() {
        let r = [10.0, 10.0];
        let w = [2.0, 1.0];
        let p = [1.0, 1.0];
        let mut g = Vec::new();
        allocate(SchedulerPolicy::WaterFill, &r, &w, &p, 6.0, &mut g);
        assert!((total(&g) - 6.0).abs() < 1e-12);
        // Weight 2 gets twice the grant of weight 1 while both are capped.
        assert!((g[0] - 4.0).abs() < 1e-9, "{g:?}");
        assert!((g[1] - 2.0).abs() < 1e-9, "{g:?}");
    }

    #[test]
    fn uniform_ignores_requests_and_scales_production() {
        let r = [0.001, 0.001, 0.001]; // tiny adaptive demand
        let w = [1.0; 3];
        let p = [1.0, 2.0, 1.0]; // production defaults
        let mut g = Vec::new();
        allocate(SchedulerPolicy::Uniform, &r, &w, &p, 2.0, &mut g);
        // Budget = half the production total: every device at half its
        // production rate, demand be damned.
        assert_eq!(g, vec![0.5, 1.0, 0.5]);
        // Never above production even with slack budget.
        allocate(SchedulerPolicy::Uniform, &r, &w, &p, 100.0, &mut g);
        assert_eq!(g, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn waterfill_stats_classify_each_epochs_maintenance_path() {
        let weights = vec![1.0; 8];
        let mut sched = WaterFillScheduler::new(&weights);
        let mut grants = Vec::new();

        // Binding epoch on an unprimed scheduler: the priming full sort.
        let mut r = vec![2.0; 8];
        sched.allocate(&r, 4.0, &mut grants);
        // Same binding requests again: the stored order is reused untouched.
        sched.allocate(&r, 4.0, &mut grants);
        // One device re-keys (1 of 8 ≤ churn threshold): incremental merge.
        r[3] = 3.0;
        sched.allocate(&r, 4.0, &mut grants);
        // Every device re-keys: falls back to a full re-sort.
        for (i, req) in r.iter_mut().enumerate() {
            *req = 5.0 + i as f64;
        }
        sched.allocate(&r, 4.0, &mut grants);
        // Demand fits the budget: fast path, order never consulted.
        sched.allocate(&r, 1e9, &mut grants);

        let stats = sched.stats();
        assert_eq!(
            stats,
            SchedStats {
                untouched_epochs: 1,
                nochurn_epochs: 1,
                incremental_repairs: 1,
                full_resorts: 2,
                changed_keys: 1 + 8,
            }
        );

        // Stateless policies report zeros through the trait default.
        let mut fair = SchedulerPolicy::Fair.scheduler(&weights, &weights);
        fair.allocate(&r, 4.0, &mut grants);
        assert_eq!(fair.stats(), SchedStats::default());

        // Merging accumulates every field.
        let mut merged = SchedStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.changed_keys, 2 * stats.changed_keys);
        assert_eq!(merged.full_resorts, 2 * stats.full_resorts);
    }

    #[test]
    fn binding_budget_is_conserved_by_every_policy() {
        let r = [5.0, 0.25, 1.5, 3.0, 0.75];
        for policy in [
            SchedulerPolicy::Uniform,
            SchedulerPolicy::Fair,
            SchedulerPolicy::WaterFill,
        ] {
            let g = alloc(policy, &r, 2.0);
            assert!(
                total(&g) <= 2.0 + 1e-9,
                "{policy} overspent: {}",
                total(&g)
            );
            assert!(total(&g) >= 2.0 * 0.999, "{policy} left budget unused");
        }
    }

    #[test]
    fn grants_never_exceed_requests_except_uniform() {
        let r = [5.0, 0.25, 1.5];
        for policy in [SchedulerPolicy::Fair, SchedulerPolicy::WaterFill] {
            for capacity in [0.5, 2.0, 100.0] {
                let g = alloc(policy, &r, capacity);
                for (gi, ri) in g.iter().zip(&r) {
                    assert!(gi <= &(ri + 1e-12), "{policy}@{capacity}: {gi} > {ri}");
                }
            }
        }
    }

    #[test]
    fn zero_capacity_grants_nothing() {
        let r = [1.0, 2.0];
        for policy in [
            SchedulerPolicy::Uniform,
            SchedulerPolicy::Fair,
            SchedulerPolicy::WaterFill,
        ] {
            let g = alloc(policy, &r, 0.0);
            assert!(total(&g).abs() < 1e-12, "{policy}: {g:?}");
        }
    }

    #[test]
    #[should_panic(expected = "weights must be finite and positive")]
    fn zero_weight_fails_fast() {
        let mut g = Vec::new();
        allocate(
            SchedulerPolicy::WaterFill,
            &[1.0, 2.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            1.0,
            &mut g,
        );
    }

    /// Deterministic xorshift for request-churn sequences (no rand dep).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn stateful_schedulers_match_reference_bitwise() {
        let n = 64;
        let mut state = 0x5EEDu64;
        let weights: Vec<f64> = (0..n)
            .map(|_| 0.5 + (xorshift(&mut state) % 1000) as f64 / 500.0)
            .collect();
        let production: Vec<f64> = (0..n)
            .map(|_| 0.1 + (xorshift(&mut state) % 1000) as f64 / 100.0)
            .collect();
        let mut requests: Vec<f64> = (0..n)
            .map(|_| (xorshift(&mut state) % 10_000) as f64 / 700.0)
            .collect();
        for policy in SchedulerPolicy::ALL {
            let mut sched = policy.scheduler(&weights, &production);
            assert_eq!(sched.policy(), policy);
            let mut grants = Vec::new();
            let mut reference = Vec::new();
            // Multi-epoch churn: most requests hold, a few move — the regime
            // the incremental order is built for. Capacity sweeps from
            // non-binding to starved.
            for epoch in 0..40 {
                let capacity = match epoch % 4 {
                    0 => f64::INFINITY,
                    1 => 120.0,
                    2 => 17.5,
                    _ => 0.0,
                };
                sched.allocate(&requests, capacity, &mut grants);
                allocate(policy, &requests, &weights, &production, capacity, &mut reference);
                assert_eq!(
                    grants, reference,
                    "{policy} diverged at epoch {epoch} (capacity {capacity})"
                );
                // Churn ~10% of the fleet, with occasional ties and zeros.
                for _ in 0..(n / 10).max(1) {
                    let i = (xorshift(&mut state) as usize) % n;
                    requests[i] = match xorshift(&mut state) % 5 {
                        0 => 0.0,
                        1 => requests[(xorshift(&mut state) as usize) % n], // duplicate key
                        _ => (xorshift(&mut state) % 10_000) as f64 / 700.0,
                    };
                }
            }
        }
    }

    #[test]
    fn waterfill_incremental_survives_full_fleet_churn() {
        // Every request changes every epoch — the re-sort crossover path.
        let n = 33;
        let weights = vec![1.0; n];
        let production = vec![1.0; n];
        let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
        let mut state = 0xC0FFEEu64;
        let mut grants = Vec::new();
        let mut reference = Vec::new();
        for epoch in 0..20 {
            let requests: Vec<f64> = (0..n)
                .map(|_| (xorshift(&mut state) % 1000) as f64 / 50.0)
                .collect();
            sched.allocate(&requests, 40.0, &mut grants);
            allocate(
                SchedulerPolicy::WaterFill,
                &requests,
                &weights,
                &production,
                40.0,
                &mut reference,
            );
            assert_eq!(grants, reference, "epoch {epoch}");
        }
    }

    #[test]
    fn stateful_buffers_are_recycled() {
        let n = 16;
        let weights = vec![1.0; n];
        let production = vec![1.0; n];
        let requests: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
        let mut grants = Vec::with_capacity(n);
        sched.allocate(&requests, 10.0, &mut grants);
        let ptr = grants.as_ptr();
        sched.allocate(&requests, 12.0, &mut grants);
        assert_eq!(grants.as_ptr(), ptr, "grants buffer must be reused");
    }

    #[test]
    #[should_panic(expected = "must match the fleet")]
    fn stateful_rejects_wrong_fleet_size() {
        let mut sched = SchedulerPolicy::Fair.scheduler(&[1.0, 1.0], &[1.0, 1.0]);
        let mut grants = Vec::new();
        sched.allocate(&[1.0, 2.0, 3.0], 1.0, &mut grants);
    }

    #[test]
    fn parse_round_trips_names() {
        for policy in SchedulerPolicy::ALL {
            assert_eq!(SchedulerPolicy::parse(policy.name()), Some(policy));
            assert_eq!(
                SchedulerPolicy::parse(&policy.name().to_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(SchedulerPolicy::parse("bogus"), None);
    }

    #[test]
    fn full_resort_threshold_boundary() {
        // n divisible by the divisor: exactly n/4 changed still merges; one
        // more tips into the full re-sort.
        assert!(!full_resort_due(25, 100));
        assert!(full_resort_due(26, 100));
        // Indivisible n: strict `>` means floor(n/4) and even the exact
        // rational boundary round down to the merge path.
        assert!(!full_resort_due(25, 101));
        assert!(full_resort_due(26, 101));
        // Degenerate fleets: a single changed device of few is a "storm".
        assert!(full_resort_due(1, 1));
        assert!(full_resort_due(1, 3));
        assert!(!full_resort_due(1, 4));
        // No churn never forces a re-sort (refresh_order returns earlier
        // anyway, but the predicate must agree).
        assert!(!full_resort_due(0, 100));
    }

    #[test]
    fn merge_and_full_resort_agree_around_the_boundary() {
        // Walk churn counts across the threshold on one fleet and pin the
        // stateful scheduler (which switches paths at the boundary) to the
        // stateless reference (which sorts from scratch every epoch): the
        // crossover must be invisible in the grants.
        let n = 40;
        let weights = vec![1.0; n];
        let production: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
        let mut requests: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 17) as f64).collect();
        let capacity: f64 = requests.iter().sum::<f64>() * 0.6;
        let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
        let mut grants = Vec::new();
        let mut reference = Vec::new();
        sched.allocate(&requests, capacity, &mut grants);
        // n/4 = 10: churn 9 and 10 take the merge path, 11 and 12 the full
        // re-sort.
        for churn in [9usize, 10, 11, 12] {
            for i in 0..churn {
                let j = (i * 5) % n;
                requests[j] = (requests[j] * 1.7 + j as f64 * 0.11) % 19.0 + 0.25;
            }
            sched.allocate(&requests, capacity, &mut grants);
            allocate(
                SchedulerPolicy::WaterFill,
                &requests,
                &weights,
                &production,
                capacity,
                &mut reference,
            );
            assert_eq!(grants, reference, "diverged at churn {churn}");
        }
    }
}
