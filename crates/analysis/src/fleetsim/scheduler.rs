//! Cross-device rate schedulers: how a shared collection budget is split
//! across the fleet's controllers each epoch.
//!
//! Every policy is a pure function from (requests, weights, production
//! rates, capacity) to grants — no RNG, no time, no shared state — so the
//! fleet simulation stays byte-identical for any thread count.
//!
//! Capacity and grants live in **rate space** (Hz summed over devices): the
//! engine converts the operator's cost-unit budget with the
//! [`CostModel`](sweetspot_monitor::CostModel) unit price once per epoch and
//! hands schedulers plain numbers.

/// A cross-device scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// No budget: every controller gets exactly what it asks for. This is
    /// the per-device §4.2 controller, unchanged — the fleet baseline.
    Uncapped,
    /// Naive uniform throttling — today's operator response to budget
    /// pressure: every device is polled at the *same fraction of its
    /// production rate*, chosen to exhaust the budget. Controller requests
    /// are ignored; Nyquist knowledge is wasted.
    Uniform,
    /// Fair share: proportional throttling. When aggregate demand exceeds
    /// capacity, every request is scaled by the same factor, so each
    /// controller keeps its *relative* share.
    Fair,
    /// Weighted max-min water-filling: cheap requests are fully satisfied,
    /// the remaining budget is spread level across the expensive ones
    /// (per-metric weights tilt the water level).
    WaterFill,
}

impl SchedulerPolicy {
    /// All policies, in frontier-table order.
    pub const ALL: [SchedulerPolicy; 4] = [
        SchedulerPolicy::Uncapped,
        SchedulerPolicy::Uniform,
        SchedulerPolicy::Fair,
        SchedulerPolicy::WaterFill,
    ];

    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Uncapped => "uncapped",
            SchedulerPolicy::Uniform => "uniform",
            SchedulerPolicy::Fair => "fair",
            SchedulerPolicy::WaterFill => "waterfill",
        }
    }

    /// Parses a CLI name (case-insensitive).
    pub fn parse(name: &str) -> Option<SchedulerPolicy> {
        Self::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Computes per-device grants for one epoch.
///
/// * `requests` — each controller's requested rate (Hz).
/// * `weights` — per-device scheduling weights (only [`WaterFill`] uses
///   them; must be positive).
/// * `production` — each device's production default rate (only
///   [`Uniform`] uses them).
/// * `capacity` — total grantable rate (Hz); `f64::INFINITY` disables the
///   budget.
///
/// `grants` is cleared and refilled (recycled across epochs). Every policy
/// guarantees `Σ grants ≤ max(capacity, Σ requests)` and, except
/// [`Uniform`] (which ignores requests by design), `grants[i] ≤
/// requests[i]` whenever the budget binds.
///
/// [`Uniform`]: SchedulerPolicy::Uniform
/// [`WaterFill`]: SchedulerPolicy::WaterFill
pub fn allocate(
    policy: SchedulerPolicy,
    requests: &[f64],
    weights: &[f64],
    production: &[f64],
    capacity: f64,
    grants: &mut Vec<f64>,
) {
    assert_eq!(requests.len(), weights.len(), "one weight per device");
    assert_eq!(requests.len(), production.len(), "one production rate per device");
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(
        requests.iter().all(|r| r.is_finite() && *r >= 0.0),
        "requests must be finite and non-negative"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "weights must be finite and positive"
    );
    grants.clear();
    let demand: f64 = requests.iter().sum();
    match policy {
        SchedulerPolicy::Uncapped => grants.extend_from_slice(requests),
        SchedulerPolicy::Uniform => {
            // One fleet-wide fraction of production polling; never exceeds
            // the production default (an operator cutting cost does not
            // poll *faster* than today).
            let prod_total: f64 = production.iter().sum();
            let fraction = if prod_total > 0.0 {
                (capacity / prod_total).min(1.0)
            } else {
                0.0
            };
            grants.extend(production.iter().map(|p| p * fraction));
        }
        SchedulerPolicy::Fair => {
            if demand <= capacity {
                grants.extend_from_slice(requests);
            } else {
                let scale = if demand > 0.0 { capacity / demand } else { 0.0 };
                grants.extend(requests.iter().map(|r| r * scale));
            }
        }
        SchedulerPolicy::WaterFill => {
            if demand <= capacity {
                grants.extend_from_slice(requests);
            } else {
                water_fill(requests, weights, capacity, grants);
            }
        }
    }
}

/// Weighted max-min water-filling: find the level `L` such that
/// `Σ min(requests[i], L·weights[i]) = capacity`; each device is granted
/// `min(request, L·weight)`. Devices whose (weight-normalized) request sits
/// below the water level are fully satisfied; the rest share the remainder
/// level with the surplus of the satisfied redistributed — the max-min
/// fair allocation.
fn water_fill(requests: &[f64], weights: &[f64], capacity: f64, grants: &mut Vec<f64>) {
    let n = requests.len();
    // Sort device indices by normalized request (the order the water level
    // passes them). Ties break by index: fully deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = requests[a] / weights[a];
        let rb = requests[b] / weights[b];
        ra.partial_cmp(&rb)
            .expect("requests and weights must be finite and positive")
            .then(a.cmp(&b))
    });

    let mut level = 0.0f64; // current water level (normalized rate)
    let mut remaining = capacity;
    let mut weight_left: f64 = weights.iter().sum();
    grants.resize(n, 0.0);
    let mut cursor = 0;
    while cursor < n {
        let i = order[cursor];
        let target = requests[i] / weights[i];
        let lift = (target - level) * weight_left;
        if lift > remaining {
            break;
        }
        // The level reaches this device's request: fully satisfied.
        remaining -= lift;
        level = target;
        weight_left -= weights[i];
        grants[i] = requests[i];
        cursor += 1;
    }
    if cursor < n && weight_left > 0.0 {
        // Budget exhausted mid-lift: everyone still unsatisfied shares the
        // final level.
        level += remaining / weight_left;
        for &i in &order[cursor..] {
            grants[i] = (level * weights[i]).min(requests[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(grants: &[f64]) -> f64 {
        grants.iter().sum()
    }

    fn alloc(policy: SchedulerPolicy, requests: &[f64], capacity: f64) -> Vec<f64> {
        let ones = vec![1.0; requests.len()];
        let mut grants = Vec::new();
        allocate(policy, requests, &ones, &ones, capacity, &mut grants);
        grants
    }

    #[test]
    fn uncapped_grants_everything() {
        let r = [3.0, 1.0, 0.5];
        let g = alloc(SchedulerPolicy::Uncapped, &r, 0.1);
        assert_eq!(g, r.to_vec());
    }

    #[test]
    fn fair_scales_proportionally_when_binding() {
        let r = [4.0, 2.0, 2.0];
        let g = alloc(SchedulerPolicy::Fair, &r, 4.0);
        assert!((total(&g) - 4.0).abs() < 1e-12);
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        // Non-binding budget: grants pass through.
        let g = alloc(SchedulerPolicy::Fair, &r, 100.0);
        assert_eq!(g, r.to_vec());
    }

    #[test]
    fn waterfill_satisfies_small_requests_first() {
        let r = [10.0, 1.0, 1.0];
        let g = alloc(SchedulerPolicy::WaterFill, &r, 6.0);
        assert!((total(&g) - 6.0).abs() < 1e-12);
        // Small requesters are made whole; the big one gets the remainder.
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
        assert!((g[0] - 4.0).abs() < 1e-12);
        // Fair, by contrast, would cut the small requesters to 0.5 each.
    }

    #[test]
    fn waterfill_is_max_min_fair() {
        // No device can gain without taking from a device with an equal or
        // smaller grant: all unsatisfied devices sit at the same level.
        let r = [8.0, 5.0, 3.0, 0.5];
        let g = alloc(SchedulerPolicy::WaterFill, &r, 7.5);
        assert!((total(&g) - 7.5).abs() < 1e-12);
        assert!((g[3] - 0.5).abs() < 1e-12, "cheap request fully met");
        // 7.0 left across three devices, level 7/3 < 3: all capped equally.
        for (i, grant) in g.iter().enumerate().take(3) {
            assert!((grant - 7.0 / 3.0).abs() < 1e-9, "device {i}: {grant}");
        }
    }

    #[test]
    fn waterfill_weights_tilt_the_level() {
        let r = [10.0, 10.0];
        let w = [2.0, 1.0];
        let p = [1.0, 1.0];
        let mut g = Vec::new();
        allocate(SchedulerPolicy::WaterFill, &r, &w, &p, 6.0, &mut g);
        assert!((total(&g) - 6.0).abs() < 1e-12);
        // Weight 2 gets twice the grant of weight 1 while both are capped.
        assert!((g[0] - 4.0).abs() < 1e-9, "{g:?}");
        assert!((g[1] - 2.0).abs() < 1e-9, "{g:?}");
    }

    #[test]
    fn uniform_ignores_requests_and_scales_production() {
        let r = [0.001, 0.001, 0.001]; // tiny adaptive demand
        let w = [1.0; 3];
        let p = [1.0, 2.0, 1.0]; // production defaults
        let mut g = Vec::new();
        allocate(SchedulerPolicy::Uniform, &r, &w, &p, 2.0, &mut g);
        // Budget = half the production total: every device at half its
        // production rate, demand be damned.
        assert_eq!(g, vec![0.5, 1.0, 0.5]);
        // Never above production even with slack budget.
        allocate(SchedulerPolicy::Uniform, &r, &w, &p, 100.0, &mut g);
        assert_eq!(g, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn binding_budget_is_conserved_by_every_policy() {
        let r = [5.0, 0.25, 1.5, 3.0, 0.75];
        for policy in [
            SchedulerPolicy::Uniform,
            SchedulerPolicy::Fair,
            SchedulerPolicy::WaterFill,
        ] {
            let g = alloc(policy, &r, 2.0);
            assert!(
                total(&g) <= 2.0 + 1e-9,
                "{policy} overspent: {}",
                total(&g)
            );
            assert!(total(&g) >= 2.0 * 0.999, "{policy} left budget unused");
        }
    }

    #[test]
    fn grants_never_exceed_requests_except_uniform() {
        let r = [5.0, 0.25, 1.5];
        for policy in [SchedulerPolicy::Fair, SchedulerPolicy::WaterFill] {
            for capacity in [0.5, 2.0, 100.0] {
                let g = alloc(policy, &r, capacity);
                for (gi, ri) in g.iter().zip(&r) {
                    assert!(gi <= &(ri + 1e-12), "{policy}@{capacity}: {gi} > {ri}");
                }
            }
        }
    }

    #[test]
    fn zero_capacity_grants_nothing() {
        let r = [1.0, 2.0];
        for policy in [
            SchedulerPolicy::Uniform,
            SchedulerPolicy::Fair,
            SchedulerPolicy::WaterFill,
        ] {
            let g = alloc(policy, &r, 0.0);
            assert!(total(&g).abs() < 1e-12, "{policy}: {g:?}");
        }
    }

    #[test]
    #[should_panic(expected = "weights must be finite and positive")]
    fn zero_weight_fails_fast() {
        let mut g = Vec::new();
        allocate(
            SchedulerPolicy::WaterFill,
            &[1.0, 2.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            1.0,
            &mut g,
        );
    }

    #[test]
    fn parse_round_trips_names() {
        for policy in SchedulerPolicy::ALL {
            assert_eq!(SchedulerPolicy::parse(policy.name()), Some(policy));
            assert_eq!(
                SchedulerPolicy::parse(&policy.name().to_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(SchedulerPolicy::parse("bogus"), None);
    }
}
