//! The fleet quality model: how well each device's *achieved* polling rate
//! serves its *true* Nyquist requirement.
//!
//! Because the fleet is synthetic, every device's true band edge is known
//! by construction ([`DeviceTrace::true_nyquist_rate`]), so quality needs no
//! reconstruction run: polling a signal whose Nyquist sampling rate is `n`
//! at rate `r` captures the `min(1, r/n)` fraction of its band (the rest
//! folds). That **spectral coverage**, averaged over epochs and devices, is
//! the fleet quality score — 1.0 means every device was alias-free all run.
//!
//! Quiescent devices (signals that never move a full quantization step) are
//! fully captured at any rate; the engine passes them a zero requirement
//! and [`coverage`] scores them 1.0 by definition.
//!
//! [`DeviceTrace::true_nyquist_rate`]: sweetspot_telemetry::DeviceTrace::true_nyquist_rate

use sweetspot_telemetry::MetricKind;
use sweetspot_timeseries::Hertz;

/// Spectral coverage of polling at `rate` a signal that needs `nyquist`:
/// the fraction of the signal band that lands below the folding frequency.
pub fn coverage(rate: Hertz, nyquist: Hertz) -> f64 {
    if nyquist.value() <= 0.0 {
        return 1.0;
    }
    (rate.value() / nyquist.value()).clamp(0.0, 1.0)
}

/// One device's quality over a whole simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceQuality {
    /// Device position in the fleet work list.
    pub index: usize,
    /// Metric kind (for per-metric breakdowns).
    pub kind: MetricKind,
    /// Mean spectral coverage over all epochs.
    pub mean_coverage: f64,
    /// Controller-requested polling rate (Hz) after the final epoch.
    pub final_rate: f64,
    /// Epochs whose grant was below the controller's request.
    pub deferred_epochs: usize,
    /// Epochs stepped without a report (scenario drops / absences).
    pub missed_epochs: usize,
}

/// Fleet-level quality aggregates (deterministic: all sums run in device
/// index order; the quantile sorts a copy with index tie-breaks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuality {
    /// Mean of per-device mean coverage — the headline quality score.
    pub mean_coverage: f64,
    /// 10th percentile of per-device coverage: the starvation tail a mean
    /// can hide.
    pub p10_coverage: f64,
    /// Fraction of devices essentially alias-free (coverage ≥ 0.99).
    pub covered_fraction: f64,
    /// Fraction of devices starved below half their band (coverage < 0.5).
    pub starved_fraction: f64,
}

impl FleetQuality {
    /// Aggregates per-device scores (in fleet order).
    pub fn from_devices(devices: &[DeviceQuality]) -> FleetQuality {
        if devices.is_empty() {
            return FleetQuality {
                mean_coverage: 0.0,
                p10_coverage: 0.0,
                covered_fraction: 0.0,
                starved_fraction: 0.0,
            };
        }
        let n = devices.len() as f64;
        let mean_coverage = devices.iter().map(|d| d.mean_coverage).sum::<f64>() / n;
        let covered = devices.iter().filter(|d| d.mean_coverage >= 0.99).count();
        let starved = devices.iter().filter(|d| d.mean_coverage < 0.5).count();
        let mut sorted: Vec<f64> = devices.iter().map(|d| d.mean_coverage).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("coverage is finite"));
        let p10 = sorted[(sorted.len() - 1) / 10];
        FleetQuality {
            mean_coverage,
            p10_coverage: p10,
            covered_fraction: covered as f64 / n,
            starved_fraction: starved as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_clamps_to_unit_interval() {
        let n = Hertz(1.0);
        assert_eq!(coverage(Hertz(2.0), n), 1.0);
        assert_eq!(coverage(Hertz(1.0), n), 1.0);
        assert!((coverage(Hertz(0.25), n) - 0.25).abs() < 1e-12);
        assert_eq!(coverage(Hertz(0.0), n), 0.0);
        // Degenerate requirement: anything covers a zero-band signal.
        assert_eq!(coverage(Hertz(0.0), Hertz(0.0)), 1.0);
    }

    fn device(index: usize, c: f64) -> DeviceQuality {
        DeviceQuality {
            index,
            kind: MetricKind::ALL[0],
            mean_coverage: c,
            final_rate: 1.0,
            deferred_epochs: 0,
            missed_epochs: 0,
        }
    }

    #[test]
    fn fleet_aggregates_mean_tail_and_fractions() {
        let devices: Vec<DeviceQuality> = [1.0, 1.0, 0.995, 0.8, 0.6, 0.4, 0.3, 0.2, 1.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &c)| device(i, c))
            .collect();
        let q = FleetQuality::from_devices(&devices);
        assert!((q.mean_coverage - 0.7295).abs() < 1e-9);
        assert!((q.covered_fraction - 0.5).abs() < 1e-12);
        assert!((q.starved_fraction - 0.3).abs() < 1e-12);
        // p10 with 10 devices: sorted[0] = 0.2.
        assert!((q.p10_coverage - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_is_zero_quality() {
        let q = FleetQuality::from_devices(&[]);
        assert_eq!(q.mean_coverage, 0.0);
        assert_eq!(q.covered_fraction, 0.0);
    }
}
