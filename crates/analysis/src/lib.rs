//! # sweetspot-analysis
//!
//! The experiment harness: everything needed to regenerate the paper's
//! figures and headline statistics from the synthetic fleet.
//!
//! * [`study`] — the §3.2 fleet study engine: run the Nyquist estimator over
//!   every `(metric, device)` production trace, in parallel, and aggregate.
//! * [`report`] — plain-text rendering of bar charts, CDFs, box plots and
//!   tables (every figure is reproduced as text so the harness has no
//!   plotting dependencies).
//! * [`fleetsim`] — the fleet-level adaptive simulation: every device's
//!   §4.2 controller under one shared budget, with pluggable cross-device
//!   schedulers and a ground-truth quality model, producing the
//!   cost-vs-quality frontier per policy.
//! * [`experiments`] — one driver per paper artifact:
//!   [`experiments::fig1`] … [`experiments::fig7`],
//!   [`experiments::headline`], [`experiments::sweetspot`] (the title
//!   experiment) and [`experiments::ablation`].
//!
//! Every driver returns structured data (so benches and tests can assert on
//! shapes) plus a `render()` string for human consumption.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod fleetsim;
pub mod report;
mod shard;
pub mod study;

pub use fleetsim::{FleetFrontier, FleetSimConfig, PolicyOutcome};
pub use study::{FleetStudy, PairResult, StudyConfig};
