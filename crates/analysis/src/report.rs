//! Plain-text figure rendering.
//!
//! The harness reproduces every figure as text: horizontal bar charts
//! (Figure 1), CDF tables (Figure 4), box-plot tables (Figure 5) and generic
//! aligned tables. No plotting dependencies; output is stable and diffable.

use sweetspot_dsp::stats::{Cdf, FiveNumber};

/// Peak resident set size of this process in kB, from Linux's `VmHWM`
/// (`/proc/self/status`). `None` where procfs is unavailable (non-Linux) —
/// callers should silently omit the figure. VmHWM is a kernel-maintained
/// high-water mark, so reading it once at the end of a run captures the
/// true peak without sampling.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Renders a horizontal bar chart. `rows` are `(label, value)` with values
/// in `[0, 1]` (fractions); `width` is the bar budget in characters.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let v = value.clamp(0.0, 1.0);
        let filled = (v * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} |{}{}| {:>5.1}%\n",
            "█".repeat(filled),
            " ".repeat(width - filled),
            v * 100.0,
        ));
    }
    out
}

/// Renders an aligned table. All rows must have `headers.len()` cells.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Samples a CDF at log-spaced x positions — the coordinates of Figure 4's
/// panels (x axis `10^0 … 10^3`).
pub fn cdf_log_samples(cdf: &Cdf, decades: std::ops::Range<i32>, per_decade: usize) -> Vec<(f64, f64)> {
    let mut points = Vec::new();
    for d in decades.clone() {
        for k in 0..per_decade {
            let x = 10f64.powf(d as f64 + k as f64 / per_decade as f64);
            points.push((x, cdf.fraction_at_or_below(x)));
        }
    }
    let x = 10f64.powi(decades.end);
    points.push((x, cdf.fraction_at_or_below(x)));
    points
}

/// Renders a CDF as an ASCII curve over log-spaced columns.
pub fn cdf_ascii(title: &str, cdf: &Cdf, decades: std::ops::Range<i32>) -> String {
    let samples = cdf_log_samples(cdf, decades.clone(), 8);
    let height = 10usize;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for level in (0..=height).rev() {
        let y = level as f64 / height as f64;
        let mut line = format!("  {:>4.2} |", y);
        for &(_, frac) in &samples {
            line.push(if frac >= y { '#' } else { ' ' });
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "        {}\n        1e{} .. 1e{} (log x: possible reduction ratio)\n",
        "-".repeat(samples.len()),
        decades.start,
        decades.end
    ));
    out
}

/// Renders five-number summaries as a box-plot table (Figure 5's content).
pub fn boxplot_table(title: &str, rows: &[(String, FiveNumber)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, f)| {
            vec![
                label.clone(),
                format!("{:.3e}", f.min),
                format!("{:.3e}", f.q1),
                format!("{:.3e}", f.median),
                format!("{:.3e}", f.q3),
                format!("{:.3e}", f.max),
            ]
        })
        .collect();
    out.push_str(&table(
        &["metric", "min", "q1", "median", "q3", "max"],
        &body,
    ));
    out
}

/// A small hand-rolled JSON writer.
///
/// The vendored `serde` is a no-op stub (its derives generate nothing), so
/// machine-readable output is built with these two push-style builders
/// instead. Scope is deliberately tiny: objects, arrays, strings, finite
/// numbers, booleans and null — exactly what `--json` output needs.
/// Numbers are formatted with Rust's shortest-roundtrip `{}` so output is
/// stable and parseable; non-finite numbers serialize as `null` (JSON has
/// no `inf`/`nan`).
pub mod json {
    /// Escapes a string for a JSON string literal (quotes included).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Formats a number as a JSON value (`null` when not finite).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Builds one JSON object, field by field.
    #[derive(Debug, Default)]
    pub struct JsonObject {
        parts: Vec<String>,
    }

    impl JsonObject {
        /// Empty object.
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds a string field.
        pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
            self.parts.push(format!("{}:{}", escape(key), escape(value)));
            self
        }

        /// Adds a numeric field (`null` when not finite).
        pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
            self.parts.push(format!("{}:{}", escape(key), number(value)));
            self
        }

        /// Adds a boolean field.
        pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
            self.parts.push(format!("{}:{value}", escape(key)));
            self
        }

        /// Adds an explicit `null` field.
        pub fn field_null(&mut self, key: &str) -> &mut Self {
            self.parts.push(format!("{}:null", escape(key)));
            self
        }

        /// Adds a pre-serialized JSON value (nested object or array).
        pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
            self.parts.push(format!("{}:{raw}", escape(key)));
            self
        }

        /// Serializes the object.
        pub fn finish(&self) -> String {
            format!("{{{}}}", self.parts.join(","))
        }
    }

    /// Builds one JSON array, element by element.
    #[derive(Debug, Default)]
    pub struct JsonArray {
        parts: Vec<String>,
    }

    impl JsonArray {
        /// Empty array.
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends a string element.
        pub fn push_str(&mut self, value: &str) -> &mut Self {
            self.parts.push(escape(value));
            self
        }

        /// Appends a numeric element (`null` when not finite).
        pub fn push_num(&mut self, value: f64) -> &mut Self {
            self.parts.push(number(value));
            self
        }

        /// Appends a pre-serialized JSON value.
        pub fn push_raw(&mut self, raw: &str) -> &mut Self {
            self.parts.push(raw.to_string());
            self
        }

        /// Serializes the array.
        pub fn finish(&self) -> String {
            format!("[{}]", self.parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_builds_all_field_kinds() {
        let mut inner = json::JsonArray::new();
        inner.push_num(1.0).push_num(2.5).push_str("x");
        let mut obj = json::JsonObject::new();
        obj.field_str("name", "fleet \"a\"\n")
            .field_num("count", 3.0)
            .field_num("bad", f64::INFINITY)
            .field_bool("ok", true)
            .field_null("none")
            .field_raw("items", &inner.finish());
        assert_eq!(
            obj.finish(),
            "{\"name\":\"fleet \\\"a\\\"\\n\",\"count\":3,\"bad\":null,\
             \"ok\":true,\"none\":null,\"items\":[1,2.5,\"x\"]}"
        );
    }

    #[test]
    fn json_numbers_round_trip() {
        assert_eq!(json::number(0.1), "0.1");
        assert_eq!(json::number(-3.0), "-3");
        assert_eq!(json::number(f64::NAN), "null");
        let v: f64 = json::number(1.0 / 3.0).parse().unwrap();
        assert_eq!(v, 1.0 / 3.0, "shortest-roundtrip formatting");
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json::escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json::escape("tab\tnl\n"), "\"tab\\tnl\\n\"");
    }

    #[test]
    fn bar_chart_renders_all_rows() {
        let rows = vec![("alpha".to_string(), 0.5), ("b".to_string(), 1.0)];
        let s = bar_chart("title", &rows, 10);
        assert!(s.contains("title"));
        assert!(s.contains("alpha"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("100.0%"));
        // Bars aligned: both rows pad the label to the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let bar_starts: Vec<usize> = lines.iter().map(|l| l.find('|').unwrap()).collect();
        assert_eq!(bar_starts[0], bar_starts[1]);
    }

    #[test]
    fn bar_chart_clamps_out_of_range() {
        let rows = vec![("x".to_string(), 1.5)];
        let s = bar_chart("t", &rows, 10);
        assert!(s.contains("100.0%"));
    }

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn cdf_log_samples_monotone() {
        let cdf = Cdf::new([1.0, 5.0, 50.0, 500.0, 2000.0]);
        let pts = cdf_log_samples(&cdf, 0..3, 4);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 0.8); // 4 of 5 ≤ 1000
    }

    #[test]
    fn cdf_ascii_has_fixed_height() {
        let cdf = Cdf::new([1.0, 10.0, 100.0]);
        let s = cdf_ascii("panel", &cdf, 0..3);
        assert_eq!(s.lines().count(), 1 + 11 + 2);
    }

    #[test]
    fn boxplot_table_contains_all_metrics() {
        let rows = vec![(
            "Temperature".to_string(),
            FiveNumber {
                min: 7.99e-7,
                q1: 1e-5,
                median: 1e-4,
                q3: 1e-3,
                max: 3e-3,
            },
        )];
        let s = boxplot_table("fig5", &rows);
        assert!(s.contains("Temperature"));
        assert!(s.contains("7.990e-7"));
    }
}
