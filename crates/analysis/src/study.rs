//! The §3.2 fleet study engine.
//!
//! For every `(metric, device)` pair: take one day of the device's measured
//! production trace, pre-clean it (nearest-neighbour re-gridding), run the
//! Nyquist estimator, and record the possible-reduction outcome. Devices are
//! processed in parallel with scoped threads (CPU-bound work ⇒ threads, not
//! async).

use crossbeam::thread;
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
use sweetspot_core::reduction::{reduction_outcome, summarize, ReductionOutcome, ReductionSummary};
use sweetspot_dsp::stats::{Cdf, FiveNumber};
use sweetspot_telemetry::{DeviceTrace, Fleet, FleetConfig, MetricKind};
use sweetspot_timeseries::clean::{clean, CleanConfig};
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, Seconds};

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Fleet to build and analyze.
    pub fleet: FleetConfig,
    /// Estimator settings (§3.2 defaults).
    pub estimator: NyquistConfig,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            fleet: FleetConfig::default(),
            estimator: NyquistConfig::default(),
            threads: 0,
        }
    }
}

/// One pair's study result.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Metric kind.
    pub kind: MetricKind,
    /// Pair identity.
    pub meta: TraceMeta,
    /// Today's (production) sampling rate.
    pub production_rate: Hertz,
    /// The §3.2 estimate from the measured trace.
    pub estimate: NyquistEstimate,
    /// Reduction classification and ratio.
    pub outcome: ReductionOutcome,
    /// Ground truth: was this pair truly under-sampled at production rate?
    /// (Available because the fleet is synthetic; lets tests check the
    /// estimator's classification accuracy.)
    pub truly_undersampled: bool,
}

/// The completed study.
#[derive(Debug, Clone)]
pub struct FleetStudy {
    /// Per-pair results in fleet order.
    pub pairs: Vec<PairResult>,
}

impl FleetStudy {
    /// Builds the fleet from `cfg` and runs the study.
    pub fn run(cfg: StudyConfig) -> FleetStudy {
        let fleet = Fleet::build(cfg.fleet);
        Self::run_on(&fleet, cfg)
    }

    /// Runs the study over an existing fleet.
    pub fn run_on(fleet: &Fleet, cfg: StudyConfig) -> FleetStudy {
        let traces = fleet.traces();
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            cfg.threads
        }
        .min(traces.len().max(1));
        let duration = cfg.fleet.trace_duration;
        let chunk = traces.len().div_ceil(threads);
        let mut pairs: Vec<Option<PairResult>> = vec![None; traces.len()];

        thread::scope(|s| {
            for (slot_chunk, trace_chunk) in
                pairs.chunks_mut(chunk).zip(traces.chunks(chunk))
            {
                s.spawn(move |_| {
                    let mut estimator = NyquistEstimator::new(cfg.estimator);
                    for (slot, trace) in slot_chunk.iter_mut().zip(trace_chunk) {
                        *slot = Some(analyze_pair(trace, duration, &mut estimator));
                    }
                });
            }
        })
        .expect("study worker panicked");

        FleetStudy {
            pairs: pairs.into_iter().map(|p| p.expect("all slots filled")).collect(),
        }
    }

    /// Results for one metric.
    pub fn pairs_for(&self, kind: MetricKind) -> impl Iterator<Item = &PairResult> {
        self.pairs.iter().filter(move |p| p.kind == kind)
    }

    /// Fleet-level headline summary (§3.2 text numbers).
    pub fn summary(&self) -> ReductionSummary {
        let outcomes: Vec<ReductionOutcome> = self.pairs.iter().map(|p| p.outcome).collect();
        summarize(&outcomes)
    }

    /// Figure 1: per metric, the fraction of devices currently sampling
    /// above their (estimated) Nyquist rate.
    pub fn oversampled_fraction_per_metric(&self) -> Vec<(MetricKind, f64)> {
        MetricKind::ALL
            .iter()
            .map(|&kind| {
                let (total, over) = self.pairs_for(kind).fold((0usize, 0usize), |(t, o), p| {
                    let is_over = p.outcome.ratio.map_or(false, |r| r >= 1.0);
                    (t + 1, o + is_over as usize)
                });
                (kind, if total == 0 { 0.0 } else { over as f64 / total as f64 })
            })
            .collect()
    }

    /// Figure 4: the reduction-ratio CDF for one metric (over-sampled pairs
    /// only, matching "we do not show the cases where we cannot reliably
    /// detect the Nyquist rate").
    pub fn reduction_cdf(&self, kind: MetricKind) -> Cdf {
        Cdf::new(
            self.pairs_for(kind)
                .filter_map(|p| p.outcome.ratio)
                .filter(|&r| r >= 1.0),
        )
    }

    /// Figure 5: the five-number summary of estimated Nyquist rates for one
    /// metric (non-aliased pairs). `None` when no pair yielded a rate.
    pub fn nyquist_five_number(&self, kind: MetricKind) -> Option<FiveNumber> {
        let rates: Vec<f64> = self
            .pairs_for(kind)
            .filter_map(|p| p.estimate.rate().map(|r| r.value()))
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(FiveNumber::of(&rates))
        }
    }
}

fn analyze_pair(
    trace: &DeviceTrace,
    duration: Seconds,
    estimator: &mut NyquistEstimator,
) -> PairResult {
    let production_rate = trace.profile().production_rate();
    let raw = trace.production_trace(duration);
    // §3.2 pre-cleaning: nearest-neighbour re-grid onto the nominal interval.
    let estimate = match clean(
        &raw,
        CleanConfig {
            interval: Some(production_rate.period()),
            outlier_mads: Some(8.0),
        },
    ) {
        Some(series) if series.len() >= 4 => estimator.estimate_series(&series),
        // Too little data ⇒ treat as "cannot assess", conservatively aliased.
        _ => NyquistEstimate::Aliased,
    };
    PairResult {
        kind: trace.profile().kind,
        meta: trace.meta().clone(),
        production_rate,
        estimate,
        outcome: reduction_outcome(production_rate, estimate),
        truly_undersampled: trace.is_undersampled_at_production_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> FleetStudy {
        FleetStudy::run(StudyConfig {
            fleet: FleetConfig {
                seed: 0x5EED,
                devices_per_metric: 6,
                trace_duration: Seconds::from_days(1.0),
            },
            estimator: NyquistConfig::default(),
            threads: 4,
        })
    }

    #[test]
    fn study_covers_every_pair() {
        let study = small_study();
        assert_eq!(study.pairs.len(), 14 * 6);
        for kind in MetricKind::ALL {
            assert_eq!(study.pairs_for(kind).count(), 6);
        }
    }

    #[test]
    fn majority_of_pairs_oversampled() {
        let study = small_study();
        let s = study.summary();
        assert!(
            s.oversampled_fraction > 0.6,
            "oversampled fraction {} (paper: 0.89)",
            s.oversampled_fraction
        );
        assert!(s.undersampled_fraction < 0.4);
    }

    #[test]
    fn fig1_fractions_in_unit_range() {
        let study = small_study();
        let fracs = study.oversampled_fraction_per_metric();
        assert_eq!(fracs.len(), 14);
        for (kind, f) in fracs {
            assert!((0.0..=1.0).contains(&f), "{kind}: {f}");
        }
    }

    #[test]
    fn fig4_cdf_spans_decades() {
        let study = small_study();
        // Union across metrics so the small fleet still shows the spread.
        let all_ratios: Vec<f64> = study
            .pairs
            .iter()
            .filter_map(|p| p.outcome.ratio)
            .filter(|&r| r >= 1.0)
            .collect();
        let cdf = Cdf::new(all_ratios);
        assert!(cdf.len() > 40);
        assert!(cdf.quantile(0.9) / cdf.quantile(0.1) > 10.0,
            "ratios should span ≥1 decade");
    }

    #[test]
    fn fig5_five_numbers_are_ordered_and_in_band() {
        let study = small_study();
        for kind in MetricKind::ALL {
            if let Some(f) = study.nyquist_five_number(kind) {
                assert!(f.min <= f.median && f.median <= f.max);
                // All estimated rates must sit below the production rate's
                // representable band (2 × folding = production rate).
                let prod = study
                    .pairs_for(kind)
                    .next()
                    .unwrap()
                    .production_rate
                    .value();
                assert!(f.max <= prod * 1.01, "{kind}: max {} vs prod {prod}", f.max);
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed: 7,
                devices_per_metric: 2,
                trace_duration: Seconds::from_hours(12.0),
            },
            estimator: NyquistConfig::default(),
            threads: 1,
        };
        let serial = FleetStudy::run(cfg);
        let parallel = FleetStudy::run(StudyConfig { threads: 7, ..cfg });
        assert_eq!(serial.pairs.len(), parallel.pairs.len());
        for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.estimate, b.estimate);
        }
    }

    #[test]
    fn estimator_classification_tracks_ground_truth() {
        let study = small_study();
        // Truly well-sampled pairs should overwhelmingly be classified
        // oversampled (the estimator sees their full band).
        let (well_total, well_over) = study
            .pairs
            .iter()
            .filter(|p| !p.truly_undersampled)
            .fold((0, 0), |(t, o), p| {
                (t + 1, o + p.outcome.ratio.map_or(false, |r| r >= 1.0) as usize)
            });
        assert!(well_total > 0);
        assert!(
            well_over as f64 / well_total as f64 > 0.8,
            "{well_over}/{well_total} well-sampled pairs classified oversampled"
        );
    }
}
