//! The §3.2 fleet study engine.
//!
//! For every `(metric, device)` pair: take one day of the device's measured
//! production trace, pre-clean it (nearest-neighbour re-gridding), run the
//! Nyquist estimator, and record the possible-reduction outcome.
//!
//! # Sharded execution
//!
//! The study is embarrassingly parallel, and the engine exploits that with a
//! shard-per-worker design (CPU-bound work ⇒ scoped threads, not async):
//!
//! 1. The `(metric, device)` index space is split into `threads` contiguous
//!    shards.
//! 2. Each worker **synthesizes its own devices** — trace generation is the
//!    expensive half of the study, so it parallelizes too. Every device's RNG
//!    is seeded from `(fleet seed, metric, device)` alone (see
//!    [`DeviceTrace::synthesize`]), so no worker consumes a shared random
//!    stream and each shard's results are a pure function of the config.
//! 3. Shards are merged back in index order.
//!
//! Consequence: results are **bit-identical regardless of thread count** —
//! `--threads 1` and `--threads 64` produce byte-identical reports. The
//! `parallel_and_serial_agree` test pins this.

use std::thread;
use std::time::{Duration, Instant};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
use sweetspot_core::reduction::{reduction_outcome, summarize, ReductionOutcome, ReductionSummary};
use sweetspot_dsp::stats::{Cdf, FiveNumber};
use sweetspot_telemetry::{DeviceTrace, Fleet, FleetConfig, MetricKind, MetricProfile, TraceSynth};
use sweetspot_timeseries::clean::{clean_into, CleanConfig, CleanScratch};
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, IrregularSeries, Seconds};

/// Study parameters.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct StudyConfig {
    /// Fleet to build and analyze.
    pub fleet: FleetConfig,
    /// Estimator settings (§3.2 defaults).
    pub estimator: NyquistConfig,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
}


impl StudyConfig {
    /// Resolves `threads: 0` to the machine's available parallelism and caps
    /// the worker count at `work_items` (no point spawning idle workers).
    fn resolve_threads(&self, work_items: usize) -> usize {
        crate::shard::resolve_threads(self.threads, work_items)
    }
}

/// One pair's study result.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Metric kind.
    pub kind: MetricKind,
    /// Pair identity.
    pub meta: TraceMeta,
    /// Today's (production) sampling rate.
    pub production_rate: Hertz,
    /// The §3.2 estimate from the measured trace.
    pub estimate: NyquistEstimate,
    /// Reduction classification and ratio.
    pub outcome: ReductionOutcome,
    /// Ground truth: was this pair truly under-sampled at production rate?
    /// (Available because the fleet is synthetic; lets tests check the
    /// estimator's classification accuracy.)
    pub truly_undersampled: bool,
}

/// Wall-clock totals of the three per-pair phases, summed over every pair a
/// worker (or, after merging, the whole study) processed. Because phases are
/// summed across concurrent workers, the totals measure aggregate CPU time,
/// not elapsed time — the right quantity for "which phase dominates".
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Trace synthesis: oscillator-bank ground truth + impairment chain.
    pub synthesis: Duration,
    /// §3.2 pre-cleaning (outlier discard + nearest-neighbour re-gridding).
    pub clean: Duration,
    /// Nyquist estimation (PSD + energy threshold).
    pub estimate: Duration,
}

impl PhaseTimings {
    /// Sum of all three phases.
    pub fn total(&self) -> Duration {
        self.synthesis + self.clean + self.estimate
    }

    fn merge(&mut self, other: PhaseTimings) {
        self.synthesis += other.synthesis;
        self.clean += other.clean;
        self.estimate += other.estimate;
    }
}

/// Persistent per-worker state for the study loop: synthesis scratch
/// (oscillator bank + trace buffers), cleaning scratch, and the estimator
/// (FFT plans + PSD scratch). With one `WorkerScratch` per worker the
/// steady-state per-pair loop recycles every sample buffer it touches —
/// the only remaining allocations are the O(tones) model and identity
/// strings a fresh [`DeviceTrace`] itself owns.
pub struct WorkerScratch {
    synth: TraceSynth,
    times: Vec<Seconds>,
    values: Vec<f64>,
    clean: CleanScratch,
    estimator: NyquistEstimator,
    timings: PhaseTimings,
}

impl WorkerScratch {
    /// Fresh scratch with an estimator configured as `cfg`.
    pub fn new(cfg: NyquistConfig) -> Self {
        WorkerScratch {
            synth: TraceSynth::new(),
            times: Vec::new(),
            values: Vec::new(),
            clean: CleanScratch::new(),
            estimator: NyquistEstimator::new(cfg),
            timings: PhaseTimings::default(),
        }
    }
}

/// The results of one worker's contiguous slice of the index space, tagged
/// with where the slice starts so merging can restore global order.
#[derive(Debug)]
struct Shard {
    start_index: usize,
    pairs: Vec<PairResult>,
    timings: PhaseTimings,
}

/// Merges per-worker shards back into a single in-order result list plus
/// the summed phase timings.
fn merge_shards(mut shards: Vec<Shard>, expected: usize) -> (Vec<PairResult>, PhaseTimings) {
    shards.sort_by_key(|s| s.start_index);
    let mut timings = PhaseTimings::default();
    for s in &shards {
        timings.merge(s.timings);
    }
    let pairs: Vec<PairResult> = shards.into_iter().flat_map(|s| s.pairs).collect();
    debug_assert_eq!(pairs.len(), expected, "every work item produces one result");
    (pairs, timings)
}

use crate::shard::shard_spans;

/// The completed study.
#[derive(Debug, Clone)]
pub struct FleetStudy {
    /// Per-pair results in fleet order.
    pub pairs: Vec<PairResult>,
    /// Per-phase wall-clock totals (synthesis / clean / estimate), summed
    /// over all workers. Timing never influences the results, so output
    /// stays byte-identical across `--threads N`.
    pub timing: PhaseTimings,
}

impl FleetStudy {
    /// Runs the study, synthesizing devices inside the workers.
    ///
    /// Device synthesis is the expensive half of a fleet study; this
    /// entry point never materializes the whole [`Fleet`], so generation and
    /// analysis both scale across cores while peak memory stays one trace
    /// per worker.
    pub fn run(cfg: StudyConfig) -> FleetStudy {
        Self::run_work(&cfg.fleet.work_list(), cfg)
    }

    /// Runs the study at the paper's scale — the full 1613 metric-device
    /// population of §3.2 (`Fleet::paper_scale`), synthesized inside the
    /// workers like [`FleetStudy::run`]. Output is byte-identical for any
    /// `threads` value and matches `run_on(&Fleet::paper_scale(seed), ..)`.
    pub fn run_paper_scale(seed: u64, estimator: NyquistConfig, threads: usize) -> FleetStudy {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed,
                devices_per_metric: 115,
                trace_duration: Seconds::from_days(1.0),
            },
            estimator,
            threads,
        };
        Self::run_work(&sweetspot_telemetry::paper_scale_work(), cfg)
    }

    /// Shared synthesize-in-worker driver over an explicit work list.
    fn run_work(work: &[(MetricProfile, usize)], cfg: StudyConfig) -> FleetStudy {
        let duration = cfg.fleet.trace_duration;
        let seed = cfg.fleet.seed;
        Self::run_sharded(work.len(), &cfg, |span, scratch| {
            work[span]
                .iter()
                .map(|&(profile, device_idx)| {
                    let trace = DeviceTrace::synthesize(profile, device_idx, seed);
                    analyze_pair(&trace, duration, scratch)
                })
                .collect()
        })
    }

    /// Runs the study over an existing fleet (same sharding, but traces are
    /// taken from `fleet` instead of synthesized in the workers).
    pub fn run_on(fleet: &Fleet, cfg: StudyConfig) -> FleetStudy {
        let traces = fleet.traces();
        let duration = cfg.fleet.trace_duration;
        Self::run_sharded(traces.len(), &cfg, |span, scratch| {
            traces[span]
                .iter()
                .map(|trace| analyze_pair(trace, duration, scratch))
                .collect()
        })
    }

    /// Shared fan-out/merge skeleton: splits `total` items into per-worker
    /// spans, runs `process` for each span on a scoped thread with a
    /// persistent worker-local [`WorkerScratch`], and merges the shards in
    /// index order.
    fn run_sharded<F>(total: usize, cfg: &StudyConfig, process: F) -> FleetStudy
    where
        F: Fn(std::ops::Range<usize>, &mut WorkerScratch) -> Vec<PairResult> + Sync,
    {
        let threads = cfg.resolve_threads(total);
        let spans = shard_spans(total, threads);

        let shards: Vec<Shard> = if threads == 1 {
            // Serial fast path: no thread overhead, same code path semantics.
            let mut scratch = WorkerScratch::new(cfg.estimator);
            spans
                .into_iter()
                .map(|span| {
                    scratch.timings = PhaseTimings::default();
                    let pairs = process(span.clone(), &mut scratch);
                    Shard {
                        start_index: span.start,
                        pairs,
                        timings: scratch.timings,
                    }
                })
                .collect()
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = spans
                    .into_iter()
                    .map(|span| {
                        let process = &process;
                        let estimator_cfg = cfg.estimator;
                        s.spawn(move || {
                            let mut scratch = WorkerScratch::new(estimator_cfg);
                            let pairs = process(span.clone(), &mut scratch);
                            Shard {
                                start_index: span.start,
                                pairs,
                                timings: scratch.timings,
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("study worker panicked"))
                    .collect()
            })
        };

        let (pairs, timing) = merge_shards(shards, total);
        FleetStudy { pairs, timing }
    }

    /// Results for one metric.
    pub fn pairs_for(&self, kind: MetricKind) -> impl Iterator<Item = &PairResult> {
        self.pairs.iter().filter(move |p| p.kind == kind)
    }

    /// Fleet-level headline summary (§3.2 text numbers).
    pub fn summary(&self) -> ReductionSummary {
        let outcomes: Vec<ReductionOutcome> = self.pairs.iter().map(|p| p.outcome).collect();
        summarize(&outcomes)
    }

    /// Figure 1: per metric, the fraction of devices currently sampling
    /// above their (estimated) Nyquist rate.
    pub fn oversampled_fraction_per_metric(&self) -> Vec<(MetricKind, f64)> {
        MetricKind::ALL
            .iter()
            .map(|&kind| {
                let (total, over) = self.pairs_for(kind).fold((0usize, 0usize), |(t, o), p| {
                    let is_over = p.outcome.ratio.is_some_and(|r| r >= 1.0);
                    (t + 1, o + is_over as usize)
                });
                (kind, if total == 0 { 0.0 } else { over as f64 / total as f64 })
            })
            .collect()
    }

    /// Figure 4: the reduction-ratio CDF for one metric (over-sampled pairs
    /// only, matching "we do not show the cases where we cannot reliably
    /// detect the Nyquist rate").
    pub fn reduction_cdf(&self, kind: MetricKind) -> Cdf {
        Cdf::new(
            self.pairs_for(kind)
                .filter_map(|p| p.outcome.ratio)
                .filter(|&r| r >= 1.0),
        )
    }

    /// Figure 5: the five-number summary of estimated Nyquist rates for one
    /// metric (non-aliased pairs). `None` when no pair yielded a rate.
    pub fn nyquist_five_number(&self, kind: MetricKind) -> Option<FiveNumber> {
        let rates: Vec<f64> = self
            .pairs_for(kind)
            .filter_map(|p| p.estimate.rate().map(|r| r.value()))
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(FiveNumber::of(&rates))
        }
    }
}

fn analyze_pair(
    trace: &DeviceTrace,
    duration: Seconds,
    ws: &mut WorkerScratch,
) -> PairResult {
    let production_rate = trace.profile().production_rate();

    // Synthesis: oscillator-bank ground truth + impairments, streamed into
    // the worker's recycled buffers.
    let t_synth = Instant::now();
    let mut times = std::mem::take(&mut ws.times);
    let mut values = std::mem::take(&mut ws.values);
    trace.production_trace_into(&mut ws.synth, duration, &mut times, &mut values);
    let raw = IrregularSeries::from_recycled(times, values);
    let t_clean = Instant::now();

    // §3.2 pre-cleaning: nearest-neighbour re-grid onto the nominal interval.
    let cleaned = clean_into(
        &raw,
        CleanConfig {
            interval: Some(production_rate.period()),
            outlier_mads: Some(8.0),
        },
        &mut ws.clean,
    );
    let t_estimate = Instant::now();

    let estimate = match cleaned {
        Ok(series) if series.len() >= 4 => {
            let estimate = ws.estimator.estimate_series(&series);
            ws.clean.reclaim(series);
            estimate
        }
        // Too little data ⇒ treat as "cannot assess", conservatively aliased.
        Ok(series) => {
            ws.clean.reclaim(series);
            NyquistEstimate::Aliased
        }
        Err(_) => NyquistEstimate::Aliased,
    };
    let t_done = Instant::now();

    ws.timings.synthesis += t_clean - t_synth;
    ws.timings.clean += t_estimate - t_clean;
    ws.timings.estimate += t_done - t_estimate;
    (ws.times, ws.values) = raw.into_parts();

    PairResult {
        kind: trace.profile().kind,
        meta: trace.meta().clone(),
        production_rate,
        estimate,
        outcome: reduction_outcome(production_rate, estimate),
        truly_undersampled: trace.is_undersampled_at_production_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> FleetStudy {
        FleetStudy::run(StudyConfig {
            fleet: FleetConfig {
                seed: 0x5EED,
                devices_per_metric: 6,
                trace_duration: Seconds::from_days(1.0),
            },
            estimator: NyquistConfig::default(),
            threads: 4,
        })
    }

    #[test]
    fn study_covers_every_pair() {
        let study = small_study();
        assert_eq!(study.pairs.len(), 14 * 6);
        for kind in MetricKind::ALL {
            assert_eq!(study.pairs_for(kind).count(), 6);
        }
    }

    #[test]
    fn majority_of_pairs_oversampled() {
        let study = small_study();
        let s = study.summary();
        assert!(
            s.oversampled_fraction > 0.6,
            "oversampled fraction {} (paper: 0.89)",
            s.oversampled_fraction
        );
        assert!(s.undersampled_fraction < 0.4);
    }

    #[test]
    fn fig1_fractions_in_unit_range() {
        let study = small_study();
        let fracs = study.oversampled_fraction_per_metric();
        assert_eq!(fracs.len(), 14);
        for (kind, f) in fracs {
            assert!((0.0..=1.0).contains(&f), "{kind}: {f}");
        }
    }

    #[test]
    fn fig4_cdf_spans_decades() {
        let study = small_study();
        // Union across metrics so the small fleet still shows the spread.
        let all_ratios: Vec<f64> = study
            .pairs
            .iter()
            .filter_map(|p| p.outcome.ratio)
            .filter(|&r| r >= 1.0)
            .collect();
        let cdf = Cdf::new(all_ratios);
        assert!(cdf.len() > 40);
        assert!(cdf.quantile(0.9) / cdf.quantile(0.1) > 10.0,
            "ratios should span ≥1 decade");
    }

    #[test]
    fn fig5_five_numbers_are_ordered_and_in_band() {
        let study = small_study();
        for kind in MetricKind::ALL {
            if let Some(f) = study.nyquist_five_number(kind) {
                assert!(f.min <= f.median && f.median <= f.max);
                // All estimated rates must sit below the production rate's
                // representable band (2 × folding = production rate).
                let prod = study
                    .pairs_for(kind)
                    .next()
                    .unwrap()
                    .production_rate
                    .value();
                assert!(f.max <= prod * 1.01, "{kind}: max {} vs prod {prod}", f.max);
            }
        }
    }

    #[test]
    fn phase_timings_are_populated() {
        let study = small_study();
        assert!(study.timing.synthesis > Duration::ZERO);
        assert!(study.timing.clean > Duration::ZERO);
        assert!(study.timing.estimate > Duration::ZERO);
        assert_eq!(
            study.timing.total(),
            study.timing.synthesis + study.timing.clean + study.timing.estimate
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed: 7,
                devices_per_metric: 2,
                trace_duration: Seconds::from_hours(12.0),
            },
            estimator: NyquistConfig::default(),
            threads: 1,
        };
        let serial = FleetStudy::run(cfg);
        for threads in [2, 3, 7] {
            let parallel = FleetStudy::run(StudyConfig { threads, ..cfg });
            assert_eq!(serial.pairs.len(), parallel.pairs.len());
            for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
                assert_eq!(a.meta, b.meta);
                assert_eq!(a.estimate, b.estimate);
                assert_eq!(a.outcome.ratio, b.outcome.ratio);
            }
        }
    }

    #[test]
    fn run_matches_run_on_prebuilt_fleet() {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed: 21,
                devices_per_metric: 2,
                trace_duration: Seconds::from_hours(6.0),
            },
            estimator: NyquistConfig::default(),
            threads: 3,
        };
        let synthesized = FleetStudy::run(cfg);
        let fleet = Fleet::build(cfg.fleet);
        let prebuilt = FleetStudy::run_on(&fleet, cfg);
        assert_eq!(synthesized.pairs.len(), prebuilt.pairs.len());
        for (a, b) in synthesized.pairs.iter().zip(&prebuilt.pairs) {
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.estimate, b.estimate);
        }
    }

    #[test]
    fn paper_scale_work_list_mirrors_fleet_paper_scale() {
        // Pin the pair count and the exact (profile, device, seed) ordering
        // against Fleet::paper_scale without paying for 1613 estimations:
        // synthesizing the traces is cheap, analyzing them is not.
        let seed = 0xFEED_BEEF;
        let fleet = Fleet::paper_scale(seed);
        let work = sweetspot_telemetry::paper_scale_work();
        assert_eq!(work.len(), fleet.len());
        assert_eq!(work.len(), 1613);
        for (&(profile, device_idx), trace) in work.iter().zip(fleet.traces()) {
            assert_eq!(
                &DeviceTrace::synthesize(profile, device_idx, seed),
                trace,
                "work list diverges from Fleet::paper_scale at {profile:?}/{device_idx}"
            );
        }
    }

    #[test]
    fn estimator_classification_tracks_ground_truth() {
        let study = small_study();
        // Truly well-sampled pairs should overwhelmingly be classified
        // oversampled (the estimator sees their full band).
        let (well_total, well_over) = study
            .pairs
            .iter()
            .filter(|p| !p.truly_undersampled)
            .fold((0, 0), |(t, o), p| {
                (t + 1, o + p.outcome.ratio.is_some_and(|r| r >= 1.0) as usize)
            });
        assert!(well_total > 0);
        assert!(
            well_over as f64 / well_total as f64 > 0.8,
            "{well_over}/{well_total} well-sampled pairs classified oversampled"
        );
    }
}
