//! Property tests pinning the stateful [`Scheduler`] implementations —
//! incremental water-fill order maintenance included — **bit-identical** to
//! the stateless from-scratch [`allocate`] reference over randomized
//! multi-epoch request sequences.
//!
//! The sequences model what a real fleet feeds the scheduler: most
//! controllers hold their rate between epochs (settled steady state,
//! evidence-free holds), a random minority moves, and capacity swings
//! between slack and starvation. Every epoch's grants from the persistent
//! scheduler must equal the reference computed from scratch — not "close",
//! *equal*: scheduler state is a performance device and must never leak
//! into results (the byte-identical `--threads N` guarantee depends on it).
//!
//! [`Scheduler`]: sweetspot_analysis::fleetsim::scheduler::Scheduler
//! [`allocate`]: sweetspot_analysis::fleetsim::scheduler::allocate

use proptest::prelude::*;
use sweetspot_analysis::fleetsim::scheduler::{allocate, SchedulerPolicy};

/// One epoch's churn: which devices move, to what, and the epoch capacity.
#[derive(Debug, Clone)]
struct EpochChurn {
    /// `(device index seed, new request)` — index is reduced modulo n.
    moves: Vec<(usize, f64)>,
    /// Capacity as a fraction of a nominal fleet demand; huge values model
    /// a non-binding budget.
    capacity: f64,
}

fn churn_strategy() -> impl Strategy<Value = Vec<EpochChurn>> {
    prop::collection::vec(
        (
            prop::collection::vec((0usize..10_000, 0.0f64..20.0), 0..12),
            0.0f64..400.0,
        ),
        1..30,
    )
    .prop_map(|epochs| {
        epochs
            .into_iter()
            .map(|(moves, capacity)| EpochChurn { moves, capacity })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stateful_matches_reference_over_request_sequences(
        n in 1usize..80,
        init in prop::collection::vec(0.0f64..20.0, 80..81),
        weight_seed in prop::collection::vec(0.1f64..4.0, 80..81),
        production_seed in prop::collection::vec(0.01f64..10.0, 80..81),
        churn in churn_strategy(),
    ) {
        let weights = &weight_seed[..n];
        let production = &production_seed[..n];
        let requests: Vec<f64> = init[..n].to_vec();
        for policy in SchedulerPolicy::ALL {
            let mut sched = policy.scheduler(weights, production);
            let mut requests = requests.clone();
            let mut grants = Vec::new();
            let mut reference = Vec::new();
            for (epoch, step) in churn.iter().enumerate() {
                sched.allocate(&requests, step.capacity, &mut grants);
                allocate(policy, &requests, weights, production, step.capacity, &mut reference);
                prop_assert_eq!(
                    &grants,
                    &reference,
                    "{} diverged from the reference at epoch {} (capacity {})",
                    policy,
                    epoch,
                    step.capacity
                );
                // Apply this epoch's churn; untouched requests stay
                // bit-identical, exactly like holding controllers.
                for &(i, value) in &step.moves {
                    requests[i % n] = value;
                }
            }
        }
    }
}
