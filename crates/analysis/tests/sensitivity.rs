//! Sensitivity studies: how the §3.2 results depend on methodology knobs
//! the paper leaves implicit.

use sweetspot_analysis::study::{FleetStudy, StudyConfig};
use sweetspot_core::estimator::NyquistConfig;
use sweetspot_telemetry::{FleetConfig, MetricKind};
use sweetspot_timeseries::Seconds;

fn study(days: f64, devices: usize, seed: u64) -> FleetStudy {
    FleetStudy::run(StudyConfig {
        fleet: FleetConfig {
            seed,
            devices_per_metric: devices,
            trace_duration: Seconds::from_days(days),
        },
        estimator: NyquistConfig::default(),
        threads: 0,
    })
}

#[test]
fn longer_traces_expose_slower_nyquist_rates() {
    // The paper reports temperature rates down to 7.99e-7 Hz — below what a
    // one-day FFT can resolve (one bin = 1.16e-5 Hz). This test pins the
    // mechanism: the floor of observable rates scales down as the trace
    // grows.
    let one_day = study(1.0, 12, 0x5E45);
    let four_days = study(4.0, 12, 0x5E45);
    let min_rate = |s: &FleetStudy| {
        s.nyquist_five_number(MetricKind::Temperature)
            .expect("temperature estimated")
            .min
    };
    let short = min_rate(&one_day);
    let long = min_rate(&four_days);
    assert!(
        long < short / 2.0,
        "4-day floor {long} should sit well below 1-day floor {short}"
    );
}

#[test]
fn longer_traces_do_not_change_the_oversampling_verdict() {
    // The classification (over- vs under-sampled) is about band edges, not
    // resolution: it must be stable across trace lengths.
    let one_day = study(1.0, 8, 0x5E46);
    let two_days = study(2.0, 8, 0x5E46);
    let a = one_day.summary();
    let b = two_days.summary();
    assert!(
        (a.oversampled_fraction - b.oversampled_fraction).abs() < 0.1,
        "1-day {} vs 2-day {}",
        a.oversampled_fraction,
        b.oversampled_fraction
    );
}

#[test]
fn reduction_tail_grows_with_trace_length() {
    // Quiet counters' reduction ratio is capped by the resolution floor
    // (rate / 2·bin). Longer traces lower the floor and stretch the tail —
    // the mechanism behind the paper's ≥1000× mass.
    let one_day = study(1.0, 8, 0x5E47);
    let two_days = study(2.0, 8, 0x5E47);
    let max_ratio = |s: &FleetStudy| {
        s.pairs
            .iter()
            .filter_map(|p| p.outcome.ratio)
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_ratio(&two_days) > max_ratio(&one_day) * 1.5,
        "2-day max {} vs 1-day max {}",
        max_ratio(&two_days),
        max_ratio(&one_day)
    );
}

#[test]
fn paper_literal_estimator_is_more_conservative() {
    // The raw-FFT (rectangular window) estimator leaks tone energy into
    // high bins, inflating estimates and shrinking the claimed savings —
    // which is why the default is Hann (DESIGN.md §6). The headline
    // classification must nevertheless stay in the same band under the
    // paper's literal method.
    let literal = FleetStudy::run(StudyConfig {
        fleet: FleetConfig {
            seed: 0x5E48,
            devices_per_metric: 8,
            trace_duration: Seconds::from_days(1.0),
        },
        estimator: NyquistConfig::paper_literal(),
        threads: 0,
    });
    let s = literal.summary();
    assert!(
        s.oversampled_fraction > 0.5,
        "even the literal method sees mostly oversampling: {}",
        s.oversampled_fraction
    );
}
