//! Allocation accounting for the metrics/flight-recorder path.
//!
//! Extends `alloc_steady_state.rs` to the observability layer, at the
//! 10³-device scale the tentpole promises. Two claims, separated because
//! they fail for different reasons:
//!
//! 1. **The metrics slice of a warm epoch allocates zero bytes** — counter
//!    tallies, the grant histogram, flight-recorder pushes (including ring
//!    overflow), and a full JSONL epoch emission. Everything the recorder
//!    owns (ring, buckets, line scratch, output buffer) is preallocated or
//!    pre-grown; steady-state recording reuses it. Measured by wrapping
//!    *only* the metrics calls of each epoch, so controller dynamics (a
//!    probing device legitimately allocates a new FFT plan) can't mask a
//!    regression in the metrics layer — at 10³ devices some controller is
//!    probing in almost every epoch, so a whole-epoch count would be
//!    workload noise.
//! 2. **Recording adds zero allocations to the epoch loop** — twin fleets
//!    stepped in lockstep, one with the full metrics path and one without,
//!    must allocate identically every epoch. This is the allocation-side
//!    face of the non-perturbation contract (the output-side face lives in
//!    `metrics_determinism.rs`).
//!
//! The counter is per-thread (see the telemetry alloc test), so fleets are
//! stepped serially — exactly the per-worker view of the sharded engine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sweetspot_analysis::fleetsim::{
    member_config,
    metrics::{action_kind, EpochSnapshot, MetricsRecorder, ShardMetrics},
    scheduler::SchedulerPolicy,
};
use sweetspot_dsp::fft::FftHandleStats;
use sweetspot_monitor::poller::{EpochScratch, FleetMember};
use sweetspot_monitor::EpochAccount;
use sweetspot_telemetry::{scaled_work, DeviceTrace};
use sweetspot_timeseries::{Hertz, Seconds};

std::thread_local! {
    // const-init + no Drop ⇒ accessing this inside the allocator hooks
    // never itself allocates or registers a TLS destructor.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// One serial worker's fleet plus its epoch-loop state, mirroring the
/// engine's per-shard view.
struct Fleet {
    members: Vec<FleetMember>,
    sched: Box<dyn sweetspot_analysis::fleetsim::scheduler::Scheduler>,
    capacity: f64,
    requests: Vec<f64>,
    grants: Vec<f64>,
    actions: Vec<Option<sweetspot_core::adaptive::EpochAction>>,
    scratch: EpochScratch,
    window: Seconds,
}

impl Fleet {
    fn build(devices: usize, seed: u64, window: Seconds) -> Fleet {
        let work = scaled_work(devices);
        let n = work.len();
        let members: Vec<FleetMember> = work
            .iter()
            .enumerate()
            .map(|(i, &(profile, device))| {
                FleetMember::new(
                    i,
                    DeviceTrace::synthesize(profile, device, seed),
                    member_config(&profile, window),
                )
            })
            .collect();
        let production: Vec<f64> =
            work.iter().map(|(p, _)| p.production_rate().value()).collect();
        let weights = vec![1.0; n];
        // Half the fleet's production rate: binding, so scheduling,
        // throttling, and deferred probes all stay active.
        let capacity: f64 = production.iter().sum::<f64>() * 0.5;
        Fleet {
            members,
            sched: SchedulerPolicy::WaterFill.scheduler(&weights, &production),
            capacity,
            requests: vec![0.0; n],
            grants: Vec::with_capacity(n),
            actions: vec![None; n],
            scratch: EpochScratch::new(),
            window,
        }
    }

    /// One lockstep epoch. With a recorder, runs the engine's full metrics
    /// path (grant feed, per-member tallies, serial journal walk, JSONL
    /// emission) and returns the number of heap allocations *the metrics
    /// calls alone* performed.
    fn epoch(&mut self, epoch: usize, epochs: usize, mut rec: Option<&mut MetricsRecorder>) -> usize {
        let start = Seconds(epoch as f64 * self.window.value());
        for (r, m) in self.requests.iter_mut().zip(self.members.iter()) {
            *r = m.requested_rate().value();
        }
        self.sched
            .allocate(&self.requests, self.capacity, &mut self.grants);
        let mut metrics_allocs = 0;
        if let Some(rec) = rec.as_deref_mut() {
            metrics_allocs += allocations_during(|| {
                for &g in &self.grants {
                    rec.record_grant(g);
                }
            });
        }
        let mut shard = ShardMetrics::default();
        for (i, (m, &g)) in self
            .members
            .iter_mut()
            .zip(self.grants.iter())
            .enumerate()
        {
            let report = m.step_epoch(&mut self.scratch, start, Hertz(g), self.window);
            if rec.is_some() {
                metrics_allocs += allocations_during(|| {
                    shard.controller.record(report.action, report.verified);
                });
            }
            self.actions[i] = Some(report.action);
        }
        if let Some(rec) = rec {
            // The engine's serial journal walk: device order, action kinds
            // only — plus the epoch snapshot emission.
            metrics_allocs += allocations_during(|| {
                for (i, (m, action)) in
                    self.members.iter().zip(self.actions.iter()).enumerate()
                {
                    if let Some(kind) = action.and_then(action_kind) {
                        rec.journal(epoch as u32, i as u32, kind, m.requested_rate().value());
                    }
                }
                let mut fft = FftHandleStats::default();
                for m in self.members.iter() {
                    fft.merge(&m.fft_handle_stats());
                }
                let account = EpochAccount {
                    epoch,
                    budget: self.capacity,
                    demanded: self.requests.iter().sum(),
                    granted: self.grants.iter().sum(),
                    samples: 0,
                    spent: 0.0,
                    throttled_devices: 0,
                };
                let snap = EpochSnapshot {
                    policy: "waterfill",
                    budget: self.capacity,
                    devices: self.members.len(),
                    account: &account,
                    shard,
                    fft,
                    sched: self.sched.stats(),
                    dealt: None,
                    watchdog: None,
                };
                assert!(rec.should_emit(epoch, epochs));
                rec.emit_epoch(&snap);
            });
        }
        metrics_allocs
    }
}

const DEVICES: usize = 1_000;
const EPOCHS: usize = 10;
const WARMUP: usize = 4;

#[test]
fn metrics_path_of_a_warm_epoch_is_allocation_free() {
    // 10³ pairs on 1 h windows under a binding water-fill budget: deferred
    // probes keep the flight recorder carrying real traffic (well past the
    // ring's 512-slot capacity, so overflow accounting runs too).
    let window = Seconds(3600.0);
    let mut fleet = Fleet::build(DEVICES, 2, window);
    let mut recorder = MetricsRecorder::in_memory();
    recorder.begin_run("waterfill", fleet.capacity);
    recorder.reserve(4 << 20);

    // Warm-up: the recorder's first emissions size its line scratch; the
    // fleet's scratch and plan caches grow.
    for epoch in 0..WARMUP {
        fleet.epoch(epoch, EPOCHS, Some(&mut recorder));
    }

    for epoch in WARMUP..EPOCHS {
        let metrics_allocs = fleet.epoch(epoch, EPOCHS, Some(&mut recorder));
        assert_eq!(
            metrics_allocs, 0,
            "metrics path of warm epoch {epoch} must not allocate"
        );
    }

    // The run wasn't vacuous: snapshots flowed, and the journal saw enough
    // traffic to wrap its preallocated ring.
    assert_eq!(
        recorder
            .buffer()
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"epoch\""))
            .count(),
        EPOCHS
    );
    assert!(
        recorder.journal_events() > 512,
        "expected the ring to overflow, saw {} events",
        recorder.journal_events()
    );
}

#[test]
fn recording_adds_zero_allocations_to_the_epoch_loop() {
    // Twin fleets, bit-identical by construction, stepped in lockstep: one
    // carries the full metrics path, the other none. Any extra allocation
    // in the recorded fleet — even during warm-up, even while devices are
    // still probing — is the metrics layer perturbing the engine.
    let window = Seconds(3600.0);
    let mut plain = Fleet::build(DEVICES, 2, window);
    let mut recorded = Fleet::build(DEVICES, 2, window);
    let mut recorder = MetricsRecorder::in_memory();
    recorder.begin_run("waterfill", recorded.capacity);
    recorder.reserve(4 << 20);

    for epoch in 0..EPOCHS {
        let without = allocations_during(|| {
            plain.epoch(epoch, EPOCHS, None);
        });
        let mut metrics_allocs = 0;
        let with = allocations_during(|| {
            metrics_allocs = recorded.epoch(epoch, EPOCHS, Some(&mut recorder));
        });
        assert_eq!(
            with - metrics_allocs,
            without,
            "epoch {epoch}: the engine allocated differently with metrics attached"
        );
        if epoch >= WARMUP {
            assert_eq!(metrics_allocs, 0, "warm metrics path allocated at epoch {epoch}");
        }
    }
}
