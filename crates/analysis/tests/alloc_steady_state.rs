//! Allocation accounting for the fleet-simulation epoch loop.
//!
//! Extends the `crates/telemetry/tests/alloc_steady_state.rs` pattern to the
//! whole lockstep epoch: request gathering, scheduling (incremental
//! water-fill), and every member's controller epoch — polling through the
//! oscillator bank and impairment chain, pre-cleaning, §4.1 dual-rate
//! verification and §3.2 estimation. Once the worker's [`EpochScratch`]
//! buffers, the scheduler's order and the planner's cached tables are warm,
//! a steady-state epoch must not touch the heap at all.
//!
//! Also pins the memory-wall invariants themselves: durable per-member
//! bytes stay flat as the fleet scales (the working set lives in the
//! worker scratch, not the members), and the scratch-sharing engine is
//! bit-identical to members each stepping through a private scratch.
//!
//! The counter is **per-thread** (see the telemetry test for why), so the
//! fleet is stepped serially — which is exactly the per-worker view of the
//! sharded engine: each worker owns its members and steps them in a plain
//! loop.
//!
//! [`EpochScratch`]: sweetspot_monitor::poller::EpochScratch

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use proptest::prelude::*;
use sweetspot_analysis::fleetsim::{
    member_config, quality, run_policy, scheduler, scheduler::SchedulerPolicy, FleetSimConfig,
};
use sweetspot_monitor::poller::{EpochScratch, FleetMember};
use sweetspot_monitor::CostModel;
use sweetspot_telemetry::{scaled_work, DeviceTrace};
use sweetspot_timeseries::{Hertz, Seconds};

std::thread_local! {
    // const-init + no Drop ⇒ accessing this inside the allocator hooks
    // never itself allocates or registers a TLS destructor.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn fleetsim_steady_state_epoch_is_allocation_free() {
    // A 28-pair round-robin fleet (two devices of every metric) under a
    // binding water-fill budget: scheduling and throttling both active.
    // Seed chosen so the fleet settles early: by epoch 10 every controller
    // holds its rate (steady, evidence-free or at a clamp) and every
    // realized trace length has passed through the planner once. Devices
    // still *probing* legitimately allocate (new rate ⇒ new FFT plan), so a
    // fleet that never settles would never go quiet — that is a property of
    // the workload, not the engine.
    let seed: u64 = 2;
    let window = Seconds::from_days(1.0);
    let work = scaled_work(28);
    let n = work.len();

    let mut members: Vec<FleetMember> = work
        .iter()
        .enumerate()
        .map(|(i, &(profile, device))| {
            FleetMember::new(
                i,
                DeviceTrace::synthesize(profile, device, seed),
                member_config(&profile, window),
            )
        })
        .collect();
    let production: Vec<f64> = work.iter().map(|(p, _)| p.production_rate().value()).collect();
    let weights = vec![1.0; n];
    // Half the fleet's production rate: binding, but not starving everyone
    // to the min-rate floor.
    let capacity: f64 = production.iter().sum::<f64>() * 0.5;

    let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
    let mut requests = vec![0.0f64; n];
    let mut grants: Vec<f64> = Vec::with_capacity(n);

    // The worker's single scratch, lent to every member in turn — the
    // hoisted working set whose reuse this test pins as allocation-free.
    let mut scratch = EpochScratch::new();
    let mut epoch_body = |epoch: usize| {
        let start = Seconds(epoch as f64 * window.value());
        for (r, m) in requests.iter_mut().zip(members.iter()) {
            *r = m.requested_rate().value();
        }
        sched.allocate(&requests, capacity, &mut grants);
        for (m, &g) in members.iter_mut().zip(grants.iter()) {
            let report = m.step_epoch(&mut scratch, start, Hertz(g), window);
            std::hint::black_box(report.samples_taken);
        }
    };

    // Warm-up: controllers probe/settle, scratch buffers and the planner's
    // per-length FFT/window tables grow. Sample counts jitter by ±1 with the
    // 0.2% drop impairment, so several epochs are needed before every
    // realized trace length has been planned once.
    for epoch in 0..10 {
        epoch_body(epoch);
    }

    // Steady state: entire lockstep epochs — request gathering, water-fill
    // scheduling, every member's controller epoch — must not allocate.
    for epoch in 10..16 {
        let count = allocations_during(|| epoch_body(epoch));
        assert_eq!(
            count, 0,
            "steady-state fleet epoch {epoch} must not allocate"
        );
    }
}

#[test]
fn per_member_resident_bytes_flat_under_scale() {
    // The memory-wall invariant: durable bytes per member must not grow as
    // the fleet scales 10³ → 10⁴ (the working set lives in the per-worker
    // scratch, whose size tracks workers, not devices). Short evidence-free
    // epochs keep this cheap: a 1 h window at production rates holds far
    // fewer than the estimator's 64-sample minimum, so controllers hold
    // their rate and the run is pure accounting.
    let run = |devices: usize| {
        let cfg = FleetSimConfig {
            devices: Some(devices),
            days: 2.0 / 24.0, // two one-hour epochs
            window: Seconds(3600.0),
            threads: 1,
            ..FleetSimConfig::default()
        };
        run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY)
    };
    let small = run(1_000);
    let large = run(10_000);
    let per_small = small.memory.bytes_per_member(small.devices);
    let per_large = large.memory.bytes_per_member(large.devices);
    assert!(per_small > 0.0 && per_large > 0.0);
    // Flat within round-off: slab growth is exactly linear, so the only
    // slack needed is for per-device string/model length variation across
    // the round-robin population.
    assert!(
        per_large <= per_small * 1.10,
        "per-member durable bytes grew with fleet size: {per_small:.1} B @1k vs {per_large:.1} B @10k"
    );
    // The working set is per worker: one shard here, same buffers either way.
    assert_eq!(small.memory.workers, 1);
    assert_eq!(large.memory.workers, 1);
    assert!(
        large.memory.scratch_bytes <= small.memory.scratch_bytes.max(1) * 2,
        "worker scratch must not scale with devices: {} B @1k vs {} B @10k",
        small.memory.scratch_bytes,
        large.memory.scratch_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The arena-backed, scratch-sharing engine must be **bit-identical**
    /// to the boxed layout it replaced: every member owning a private
    /// working set, grants computed by the stateless scheduler reference.
    #[test]
    fn arena_engine_matches_boxed_members(
        devices in 4usize..24,
        seed in 0u64..1_000,
        budget_frac in 0.2f64..1.5,
        verify_every in 1usize..4,
        policy_pick in 0usize..3,
    ) {
        let policy = [
            SchedulerPolicy::Uniform,
            SchedulerPolicy::Fair,
            SchedulerPolicy::WaterFill,
        ][policy_pick];
        let mut cfg = FleetSimConfig {
            devices: Some(devices),
            days: 3.0,
            threads: 1,
            verify_every,
            ..FleetSimConfig::default()
        };
        cfg.fleet.seed = seed;
        let window = cfg.window;
        let work = scaled_work(devices);
        let production: Vec<f64> =
            work.iter().map(|(p, _)| p.production_rate().value()).collect();
        let weights = vec![1.0f64; devices];

        // Budget in cost units, scaled off the fleet's production demand so
        // the ladder spans slack through starvation.
        let verify_overhead = 1.0 + 1.0 / sweetspot_core::aliasing::COMPANION_RATIO;
        let epoch_unit = CostModel::default().cost_per_sample() * window.value() * verify_overhead;
        let budget = budget_frac * production.iter().sum::<f64>() * epoch_unit;
        let capacity_rate = budget / epoch_unit;

        let engine = run_policy(&cfg, policy, budget);

        // Boxed reference: standalone members, each with a private scratch.
        let mut members: Vec<FleetMember> = work
            .iter()
            .enumerate()
            .map(|(i, &(p, d))| {
                let mut config = member_config(&p, window);
                config.verify_every = verify_every;
                FleetMember::new(i, DeviceTrace::synthesize(p, d, seed), config)
            })
            .collect();
        let mut scratches: Vec<EpochScratch> =
            members.iter().map(|_| EpochScratch::new()).collect();
        let requirement: Vec<Hertz> = members
            .iter()
            .map(|m| {
                if m.device().trace().is_quiet() {
                    Hertz(0.0)
                } else {
                    m.true_nyquist_rate()
                }
            })
            .collect();
        let epochs = engine.epochs;
        let mut requests = vec![0.0f64; devices];
        let mut grants: Vec<f64> = Vec::new();
        let mut coverage_sum = vec![0.0f64; devices];
        let mut epoch_sample_sums = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            for (r, m) in requests.iter_mut().zip(members.iter()) {
                *r = m.requested_rate().value();
            }
            scheduler::allocate(policy, &requests, &weights, &production, capacity_rate, &mut grants);
            let start = Seconds(epoch as f64 * window.value());
            let mut samples = 0usize;
            for (i, (m, scratch)) in members.iter_mut().zip(scratches.iter_mut()).enumerate() {
                let report = m.step_epoch(scratch, start, Hertz(grants[i]), window);
                coverage_sum[i] += quality::coverage(report.primary_rate, requirement[i]);
                samples += report.samples_taken;
            }
            epoch_sample_sums.push(samples);
        }
        for (i, dq) in engine.device_quality.iter().enumerate() {
            prop_assert_eq!(
                dq.mean_coverage,
                coverage_sum[i] / epochs as f64,
                "device {} coverage diverged from the boxed reference",
                i
            );
            prop_assert_eq!(dq.deferred_epochs, members[i].sampler().deferred_epochs());
        }
        let engine_samples: Vec<usize> =
            engine.ledger.accounts().iter().map(|a| a.samples).collect();
        prop_assert_eq!(engine_samples, epoch_sample_sums);
    }
}
