//! Allocation accounting for the fleet-simulation epoch loop.
//!
//! Extends the `crates/telemetry/tests/alloc_steady_state.rs` pattern to the
//! whole lockstep epoch: request gathering, scheduling (incremental
//! water-fill), and every member's controller epoch — polling through the
//! oscillator bank and impairment chain, pre-cleaning, §4.1 dual-rate
//! verification and §3.2 estimation. Once the per-member [`PollScratch`]
//! buffers, the controller's recycled series buffers, the scheduler's order
//! and the planner's cached tables are warm, a steady-state epoch must not
//! touch the heap at all.
//!
//! The counter is **per-thread** (see the telemetry test for why), so the
//! fleet is stepped serially — which is exactly the per-worker view of the
//! sharded engine: each worker owns its members and steps them in a plain
//! loop.
//!
//! [`PollScratch`]: sweetspot_monitor::device::PollScratch

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sweetspot_analysis::fleetsim::{member_config, scheduler::SchedulerPolicy};
use sweetspot_monitor::poller::FleetMember;
use sweetspot_telemetry::{scaled_work, DeviceTrace};
use sweetspot_timeseries::{Hertz, Seconds};

std::thread_local! {
    // const-init + no Drop ⇒ accessing this inside the allocator hooks
    // never itself allocates or registers a TLS destructor.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn fleetsim_steady_state_epoch_is_allocation_free() {
    // A 28-pair round-robin fleet (two devices of every metric) under a
    // binding water-fill budget: scheduling and throttling both active.
    // Seed chosen so the fleet settles early: by epoch 10 every controller
    // holds its rate (steady, evidence-free or at a clamp) and every
    // realized trace length has passed through the planner once. Devices
    // still *probing* legitimately allocate (new rate ⇒ new FFT plan), so a
    // fleet that never settles would never go quiet — that is a property of
    // the workload, not the engine.
    let seed: u64 = 2;
    let window = Seconds::from_days(1.0);
    let work = scaled_work(28);
    let n = work.len();

    let mut members: Vec<FleetMember> = work
        .iter()
        .enumerate()
        .map(|(i, &(profile, device))| {
            FleetMember::new(
                i,
                DeviceTrace::synthesize(profile, device, seed),
                member_config(&profile, window),
            )
        })
        .collect();
    let production: Vec<f64> = work.iter().map(|(p, _)| p.production_rate().value()).collect();
    let weights = vec![1.0; n];
    // Half the fleet's production rate: binding, but not starving everyone
    // to the min-rate floor.
    let capacity: f64 = production.iter().sum::<f64>() * 0.5;

    let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
    let mut requests = vec![0.0f64; n];
    let mut grants: Vec<f64> = Vec::with_capacity(n);

    let mut epoch_body = |epoch: usize| {
        let start = Seconds(epoch as f64 * window.value());
        for (r, m) in requests.iter_mut().zip(members.iter()) {
            *r = m.requested_rate().value();
        }
        sched.allocate(&requests, capacity, &mut grants);
        for (m, &g) in members.iter_mut().zip(grants.iter()) {
            let report = m.step_epoch(start, Hertz(g), window);
            std::hint::black_box(report.samples_taken);
        }
    };

    // Warm-up: controllers probe/settle, scratch buffers and the planner's
    // per-length FFT/window tables grow. Sample counts jitter by ±1 with the
    // 0.2% drop impairment, so several epochs are needed before every
    // realized trace length has been planned once.
    for epoch in 0..10 {
        epoch_body(epoch);
    }

    // Steady state: entire lockstep epochs — request gathering, water-fill
    // scheduling, every member's controller epoch — must not allocate.
    for epoch in 10..16 {
        let count = allocations_during(|| epoch_body(epoch));
        assert_eq!(
            count, 0,
            "steady-state fleet epoch {epoch} must not allocate"
        );
    }
}
