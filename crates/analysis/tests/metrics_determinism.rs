//! Determinism of the metrics/flight-recorder subsystem.
//!
//! The engine's contract (see `fleetsim::metrics`) has two halves:
//!
//! 1. **Thread invariance** — everything a [`MetricsRecorder`] emits is
//!    fleet-scope: per-worker `ShardMetrics` merge in shard order, the
//!    journal and grant histogram are fed serially in device order, and
//!    FFT counters are summed per member handle. The JSONL stream must
//!    therefore be *byte-identical* for any `--threads N`.
//! 2. **Non-perturbation** — attaching a recorder must not change the
//!    simulation: ledger, per-device quality, and the always-on counter
//!    summary are identical with and without one.
//!
//! Both halves are checked under an active churn+lossy scenario, where the
//! journal, the applied-event counters, and the scheduler's incremental
//! repair paths all carry real traffic.

use proptest::prelude::*;
use sweetspot_analysis::fleetsim::{
    metrics::MetricsRecorder, run_policy, run_policy_recorded, scenario::ScenarioSpec,
    scheduler::SchedulerPolicy, FleetSimConfig, PolicyOutcome,
};
use sweetspot_telemetry::FleetConfig;
use sweetspot_timeseries::Seconds;

fn churn_config(devices: usize, seed: u64, threads: usize) -> FleetSimConfig {
    let mut cfg = FleetSimConfig {
        fleet: FleetConfig {
            seed,
            devices_per_metric: 2,
            trace_duration: Seconds::from_days(1.0),
        },
        paper_scale: false,
        devices: Some(devices),
        days: 4.0,
        threads,
        ..FleetSimConfig::default()
    };
    cfg.scenario = ScenarioSpec::parse("churn+lossy-reports").expect("preset parses");
    cfg.scenario.seed = seed ^ 0xC0FFEE;
    cfg
}

fn recorded(cfg: &FleetSimConfig, budget: f64) -> (PolicyOutcome, String) {
    let mut rec = MetricsRecorder::in_memory();
    let out = run_policy_recorded(cfg, SchedulerPolicy::WaterFill, budget, Some(&mut rec));
    rec.finish().expect("in-memory recorder cannot fail");
    (out, rec.buffer().to_owned())
}

#[test]
fn metrics_stream_is_byte_identical_across_thread_counts() {
    let (serial, serial_jsonl) = recorded(&churn_config(40, 7, 1), 30.0);
    for threads in [2, 4] {
        let (parallel, parallel_jsonl) =
            recorded(&churn_config(40, 7, threads), 30.0);
        assert_eq!(
            serial_jsonl, parallel_jsonl,
            "JSONL diverged at {threads} threads"
        );
        assert_eq!(serial.metrics, parallel.metrics);
        assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
        assert_eq!(serial.device_quality, parallel.device_quality);
    }
    // The stream actually carried traffic: epoch snapshots for every epoch
    // plus at least one flight-recorder event from the churn schedule.
    let epoch_lines = serial_jsonl
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"epoch\""))
        .count();
    assert_eq!(epoch_lines, serial.epochs);
    assert!(
        serial_jsonl.contains("{\"type\":\"event\""),
        "churn scenario produced no journal events"
    );
}

#[test]
fn recording_does_not_perturb_the_simulation() {
    let cfg = churn_config(40, 7, 4);
    let (with_rec, _) = recorded(&cfg, 30.0);
    let without = run_policy(&cfg, SchedulerPolicy::WaterFill, 30.0);
    assert_eq!(with_rec.ledger.accounts(), without.ledger.accounts());
    assert_eq!(with_rec.device_quality, without.device_quality);
    assert_eq!(with_rec.quality, without.quality);
    // The counter summary is always on, recorder or not.
    assert_eq!(with_rec.metrics, without.metrics);
}

#[test]
fn summary_invariants_hold_under_churn() {
    let (out, jsonl) = recorded(&churn_config(60, 3, 2), 25.0);
    let m = &out.metrics;
    // Every FFT lookup either hit or missed.
    assert_eq!(m.fft.lookups.get(), m.fft.hits.get() + m.fft.misses.get());
    // Every stepped device epoch got exactly one controller action.
    assert!(m.controller.stepped() > 0);
    assert_eq!(
        m.controller.verified.get() + m.controller.unverified.get(),
        m.controller.stepped()
    );
    // Dealt faults all landed: the scenario summary counts what the dealer
    // scheduled, the applied counters what the members actually absorbed.
    let dealt = out.scenario.as_ref().expect("scenario ran").counters;
    assert_eq!(m.applied.absent_epochs.get(), dealt.absent_epochs as u64);
    assert_eq!(m.applied.reboot_steps.get(), dealt.reboots as u64);
    assert_eq!(m.applied.dropped_reports.get(), dealt.dropped_reports as u64);
    assert_eq!(m.applied.delayed_reports.get(), dealt.delayed_reports as u64);
    assert_eq!(
        m.applied.duplicated_reports.get(),
        dealt.duplicated_reports as u64
    );
    // Spot-check the stream against the summary: the last epoch snapshot
    // carries the same cumulative controller totals.
    let last_epoch = jsonl
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"type\":\"epoch\""))
        .expect("at least one snapshot");
    assert!(last_epoch.contains(&format!("\"lookups\":{}", m.fft.lookups.get())));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Thread invariance over the whole (seed, fleet size, budget) space,
    /// not just the hand-picked cases above.
    #[test]
    fn metrics_thread_invariance_holds_for_arbitrary_fleets(
        devices in 8usize..48,
        seed in 0u64..1_000,
        budget_frac in 0.3f64..1.2,
    ) {
        let budget = budget_frac * 40.0;
        let (serial, serial_jsonl) = recorded(&churn_config(devices, seed, 1), budget);
        let (parallel, parallel_jsonl) = recorded(&churn_config(devices, seed, 4), budget);
        prop_assert_eq!(serial_jsonl, parallel_jsonl);
        prop_assert_eq!(serial.metrics, parallel.metrics);
        prop_assert_eq!(serial.ledger.accounts(), parallel.ledger.accounts());
    }
}
