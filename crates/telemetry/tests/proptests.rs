//! Property-based tests for the synthetic telemetry generator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sweetspot_telemetry::model::{SignalModel, ToneBank};
use sweetspot_telemetry::noise::Impairments;
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{Hertz, Seconds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn band_limited_model_pins_the_edge(
        seed in 0u64..1000,
        edge in 1e-6f64..1e-2,
        amp in 0.1f64..100.0,
        diurnal in 0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = SignalModel::band_limited(&mut rng, Hertz(edge), 0.0, amp, diurnal, 16);
        prop_assert!((m.band_edge().value() - edge).abs() < 1e-15);
        // No tone exceeds the requested edge.
        for t in m.tones() {
            prop_assert!(t.freq <= edge * (1.0 + 1e-12));
        }
    }

    #[test]
    fn model_stays_within_mean_plus_amplitude(
        seed in 0u64..500,
        mean in -100f64..100.0,
        amp in 0.1f64..50.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = SignalModel::band_limited(&mut rng, Hertz(1e-3), mean, amp, 0.3, 12);
        let bound = m.total_amplitude();
        for k in 0..200 {
            let v = m.value_at(k as f64 * 137.0);
            prop_assert!(
                (v - mean).abs() <= bound + 1e-9,
                "value {v} exceeds mean {mean} ± {bound}"
            );
        }
    }

    #[test]
    fn device_synthesis_is_pure(
        metric_idx in 0usize..14,
        device_idx in 0usize..50,
        seed in 0u64..100,
    ) {
        let profile = MetricProfile::for_kind(MetricKind::ALL[metric_idx]);
        let a = DeviceTrace::synthesize(profile, device_idx, seed);
        let b = DeviceTrace::synthesize(profile, device_idx, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn well_sampled_devices_are_recoverable(
        metric_idx in 0usize..14,
        device_idx in 0usize..30,
    ) {
        let profile = MetricProfile::for_kind(MetricKind::ALL[metric_idx]);
        let dev = DeviceTrace::synthesize(profile, device_idx, 0xBEEF);
        if !dev.is_undersampled_at_production_rate() {
            // The whole point of "well-sampled": the true band edge sits
            // below the production folding frequency.
            prop_assert!(
                dev.true_band_edge().value() < profile.folding_frequency().value()
            );
        } else {
            prop_assert!(
                dev.true_band_edge().value() > profile.folding_frequency().value()
            );
        }
    }

    #[test]
    fn impairments_never_invent_samples(
        drop in 0f64..0.5,
        jitter in 0f64..0.4,
        seed in 0u64..100,
    ) {
        let dev = DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::LinkUtil),
            0,
            seed,
        );
        let truth = dev.ground_truth(Hertz(1.0 / 30.0), Seconds::from_hours(2.0));
        let imp = Impairments {
            drop_prob: drop,
            jitter_frac: jitter,
            ..Impairments::none()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = imp.apply(&mut rng, &truth);
        prop_assert!(out.len() <= truth.len());
        // Timestamps stay within half an interval of their origin slot.
        for (t, _) in out.iter() {
            let slot = ((t.value() - truth.start().value()) / 30.0).round();
            prop_assert!(
                (t.value() - truth.start().value() - slot * 30.0).abs() <= 0.4 * 30.0 + 1e-9
            );
        }
    }

    /// The oscillator-bank recurrence must track direct `Tone::value_at`
    /// evaluation to 1e-9 (relative to the model's amplitude scale) over
    /// day-length traces, both at the production polling rate and at 3× the
    /// production *folding* frequency — the fastest grid an under-sampled
    /// device's band edge (up to 3× folding) ever demands. This pins
    /// `ToneBank::RENORM_INTERVAL`: drift grows with the interval, so a too
    /// lax re-seed cadence fails exactly this bound.
    #[test]
    fn oscillator_bank_matches_direct_evaluation(
        seed in 0u64..500,
        metric_idx in 0usize..14,
        device_idx in 0usize..20,
    ) {
        let profile = MetricProfile::for_kind(MetricKind::ALL[metric_idx]);
        let dev = DeviceTrace::synthesize(profile, device_idx, seed);
        let model = dev.model();
        let day = Seconds::from_days(1.0);
        let production = profile.production_rate();
        let three_fold = Hertz(3.0 * profile.folding_frequency().value());
        let tol = 1e-9 * (1.0 + model.total_amplitude() + model.mean().abs());
        let mut bank = ToneBank::new();
        let mut fast = Vec::new();
        for rate in [production, three_fold] {
            model.sample_into(&mut bank, Seconds::ZERO, rate, day, &mut fast);
            let dt = rate.period().value();
            prop_assert!(!fast.is_empty());
            for (k, v) in fast.iter().enumerate() {
                let exact = model.value_at(k as f64 * dt);
                prop_assert!(
                    (v - exact).abs() <= tol,
                    "{}/dev{} rate {rate}: slot {k} drifted {} (tol {tol})",
                    profile.kind, device_idx, (v - exact).abs()
                );
            }
        }
    }

    #[test]
    fn quiet_devices_quantize_flat(seed in 0u64..200) {
        let profile = MetricProfile::for_kind(MetricKind::FcsErrors);
        for idx in 0..20 {
            let dev = DeviceTrace::synthesize(profile, idx, seed);
            if !dev.is_quiet() {
                continue;
            }
            let trace = dev.production_trace(Seconds::from_hours(6.0));
            let first = trace.values()[0];
            prop_assert!(
                trace.values().iter().all(|&v| v == first),
                "quiet device must be constant after quantization"
            );
        }
    }
}
