//! Allocation accounting for the streaming trace synthesizer.
//!
//! Extends the `crates/dsp/tests/alloc_steady_state.rs` pattern to
//! telemetry: once the `TraceSynth` scratch and the output buffers are warm,
//! synthesizing another day-long trace — oscillator-bank ground truth plus
//! the full impairment chain — must not touch the heap at all.
//!
//! The counter is **per-thread**: libtest's harness threads (timeout
//! watchdog, capture machinery) allocate at unpredictable times, so a
//! process-global counter would flake. Counting only the measuring thread's
//! allocations makes the zero assertion exact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile, TraceSynth};
use sweetspot_timeseries::{IrregularSeries, Seconds};

std::thread_local! {
    // const-init + no Drop ⇒ accessing this inside the allocator hooks
    // never itself allocates or registers a TLS destructor.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local side effect (`try_with` so teardown-time allocations on
// foreign threads are simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Number of allocations *this thread* performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn trace_synthesis_steady_state_is_allocation_free() {
    // LinkUtil: 30 s polls (2880 samples/day), measurement noise,
    // quantization, drops and jitter — every impairment stage active.
    let trace = DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::LinkUtil), 0, 0xA110C);
    let day = Seconds::from_days(1.0);
    let rate = trace.profile().production_rate();

    let mut synth = TraceSynth::new();
    let mut times = Vec::new();
    let mut values = Vec::new();

    // Warm-up: grows the oscillator bank, the ground-truth grid and the
    // measured-trace buffers to day-trace length.
    trace.production_trace_into(&mut synth, day, &mut times, &mut values);

    // Steady state: a second full day-trace must be allocation-free.
    let count = allocations_during(|| {
        trace.production_trace_into(&mut synth, day, &mut times, &mut values);
    });
    assert_eq!(count, 0, "steady-state measured-trace synthesis must not allocate");

    // Same guarantee for a *different* device of the same metric — the whole
    // point of per-worker scratch is reuse across the fleet, not per device.
    let other = DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::LinkUtil), 1, 0xA110C);
    let count = allocations_during(|| {
        other.production_trace_into(&mut synth, day, &mut times, &mut values);
    });
    assert_eq!(count, 0, "buffers must be reusable across devices");

    // Pristine ground truth into a recycled buffer is allocation-free too.
    let mut out = Vec::new();
    trace.ground_truth_into(&mut synth, rate, day, &mut out);
    let count = allocations_during(|| {
        trace.ground_truth_into(&mut synth, rate, day, &mut out);
    });
    assert_eq!(count, 0, "steady-state ground-truth synthesis must not allocate");

    // Cycling the buffers through an IrregularSeries and back (the study
    // loop's shape) stays allocation-free as well.
    let count = allocations_during(|| {
        let raw = IrregularSeries::from_recycled(std::mem::take(&mut times), std::mem::take(&mut values));
        (times, values) = raw.into_parts();
    });
    assert_eq!(count, 0, "series recycling must move buffers, not copy them");
}
