//! # sweetspot-telemetry
//!
//! Synthetic datacenter telemetry — the substitute for the proprietary
//! production traces the paper's §3.2 study runs on (see DESIGN.md §2 for the
//! substitution argument).
//!
//! The generator is built around one idea: every metric's *ground truth* is a
//! deterministic, **band-limited** function of continuous time (a seeded sum
//! of tones, [`model::SignalModel`]), so
//!
//! 1. the true band edge — and therefore the true Nyquist rate — of every
//!    trace is *known by construction*, which lets tests validate the
//!    estimator against ground truth, and
//! 2. the same device can be sampled at any rate by any poller without
//!    generation artifacts, which the monitoring simulator needs.
//!
//! Measurement reality is layered on top: white measurement noise,
//! quantization, lost samples, timestamp jitter and corruption
//! ([`noise::Impairments`]), and transient events — spikes, level shifts,
//! link flaps, fail-stops ([`events`]).
//!
//! [`fleet::Fleet`] assembles the paper's study population: 14 metric kinds
//! ([`metric::MetricKind`]) × enough devices to total 1613 metric-device
//! pairs, with per-metric spectral profiles ([`profile::MetricProfile`])
//! chosen so the *shape* of Figures 1, 4 and 5 is reproduced.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod events;
pub mod fleet;
pub mod generator;
pub mod metric;
pub mod model;
pub mod noise;
pub mod profile;

pub use fleet::{paper_scale_work, scaled_work, Fleet, FleetConfig};
pub use generator::{DeviceTrace, TraceSynth};
pub use metric::MetricKind;
pub use model::{SignalModel, ToneBank};
pub use profile::MetricProfile;
