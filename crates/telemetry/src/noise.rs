//! Measurement-layer impairments.
//!
//! A poller never sees the ground truth: readings carry white measurement
//! noise, are quantized (§4.3), occasionally go missing, arrive with jittered
//! timestamps, and are very occasionally corrupt. [`Impairments`] models all
//! of that as a pure function of (ground-truth series, RNG) so experiments
//! can dial each effect independently — the same fault-injection philosophy
//! the networking guides use for packet links.

use rand::Rng;
use sweetspot_dsp::quantize::Quantizer;
use sweetspot_timeseries::{IrregularSeries, RegularSeries, Seconds};

/// Measurement impairment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairments {
    /// Standard deviation of additive white Gaussian measurement noise
    /// (metric units).
    pub noise_std: f64,
    /// Quantization step; `None` disables quantization.
    pub quant_step: Option<f64>,
    /// Probability a sample is lost entirely.
    pub drop_prob: f64,
    /// Timestamp jitter as a fraction of the sampling interval (`0..0.5`).
    pub jitter_frac: f64,
    /// Probability a sample is replaced by a corrupt value.
    pub corrupt_prob: f64,
    /// Magnitude of corrupt readings (added to the true value).
    pub corrupt_magnitude: f64,
    /// Probability a report is **duplicated** in flight: the same
    /// (timestamp, value) pair reaches the collector twice. Downstream
    /// cleaning deduplicates identical timestamps deterministically.
    pub dup_prob: f64,
    /// Probability a report is **delayed** in flight: it arrives at the
    /// *next* collection tick instead of its own, sharing that tick's
    /// timestamp with the fresh reading (first-arrival-wins after
    /// deduplication). A report still in flight when the trace ends is
    /// lost. Timestamps stay non-decreasing, never reordered.
    pub delay_prob: f64,
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments {
            noise_std: 0.0,
            quant_step: None,
            drop_prob: 0.0,
            jitter_frac: 0.0,
            corrupt_prob: 0.0,
            corrupt_magnitude: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
        }
    }
}

impl Impairments {
    /// A clean measurement chain (no impairments at all).
    pub fn none() -> Self {
        Self::default()
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or jitter.
    pub fn validate(&self) {
        assert!(self.noise_std >= 0.0, "noise_std must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.drop_prob),
            "drop_prob must be a probability"
        );
        assert!(
            (0.0..0.5).contains(&self.jitter_frac) || self.jitter_frac == 0.0,
            "jitter_frac must be in [0, 0.5)"
        );
        assert!(
            (0.0..=1.0).contains(&self.corrupt_prob),
            "corrupt_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.dup_prob),
            "dup_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.delay_prob),
            "delay_prob must be a probability"
        );
        if let Some(q) = self.quant_step {
            assert!(q > 0.0, "quant_step must be positive");
        }
    }

    /// Applies the impairment chain to a ground-truth series, producing what
    /// the collector would actually record.
    ///
    /// Order of operations per sample: drop → noise → corruption →
    /// quantization → timestamp jitter → report faults (delay, duplicate).
    /// Dropped samples are removed (not NaN), so the output is an
    /// [`IrregularSeries`] — exactly the input shape the paper's
    /// pre-cleaning step expects. Report faults can emit two samples with
    /// the same timestamp (never out of order); the cleaning layer
    /// deduplicates them deterministically.
    ///
    /// Allocates the output; the synthesis hot loop uses
    /// [`Impairments::apply_into`] with recycled buffers instead.
    pub fn apply<R: Rng>(&self, rng: &mut R, truth: &RegularSeries) -> IrregularSeries {
        let mut times = Vec::with_capacity(truth.len());
        let mut values = Vec::with_capacity(truth.len());
        self.apply_grid_into(
            rng,
            truth.start(),
            truth.interval(),
            truth.values(),
            &mut times,
            &mut values,
        );
        IrregularSeries::from_recycled(times, values)
    }

    /// [`Impairments::apply`] into caller-owned `times`/`values` buffers
    /// (cleared, then filled): identical samples and RNG stream, zero heap
    /// allocations once the buffers have grown to the trace length. Pair
    /// with [`IrregularSeries::from_recycled`] / `into_parts` to cycle the
    /// buffers through a series and back.
    pub fn apply_into<R: Rng>(
        &self,
        rng: &mut R,
        truth: &RegularSeries,
        times: &mut Vec<Seconds>,
        values: &mut Vec<f64>,
    ) {
        self.apply_grid_into(rng, truth.start(), truth.interval(), truth.values(), times, values);
    }

    /// The buffer-level primitive behind [`Impairments::apply_into`]: the
    /// ground truth arrives as a bare uniform grid (`start`, `interval`,
    /// `truth`), so the generator can feed its recycled synthesis buffer
    /// without wrapping it in a [`RegularSeries`] first.
    pub fn apply_grid_into<R: Rng>(
        &self,
        rng: &mut R,
        start: Seconds,
        interval: Seconds,
        truth: &[f64],
        times: &mut Vec<Seconds>,
        values: &mut Vec<f64>,
    ) {
        self.validate();
        let quantizer = self.quant_step.map(Quantizer::new);
        let interval_s = interval.value();
        times.clear();
        values.clear();
        times.reserve(truth.len());
        values.reserve(truth.len());
        // One in-flight slot for a delayed report: it lands at the next
        // emitted sample's collection tick, sharing its timestamp. A report
        // still in flight when the trace ends never arrives.
        let mut in_flight: Option<f64> = None;
        for (k, &v) in truth.iter().enumerate() {
            let t = start + interval * k as f64;
            if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
                continue;
            }
            let mut value = v;
            if self.noise_std > 0.0 {
                value += gaussian(rng) * self.noise_std;
            }
            if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                value += sign * self.corrupt_magnitude;
            }
            if let Some(q) = &quantizer {
                value = q.quantize(value);
            }
            // `jitter_frac < 0.5` (validated) keeps jittered timestamps of
            // *consecutive* grid samples strictly increasing; delayed and
            // duplicated reports only ever reuse an already-emitted stamp,
            // so the output is non-decreasing — never reordered — and the
            // cleaning layer's timestamp dedup handles the collisions.
            let jitter = if self.jitter_frac > 0.0 {
                rng.gen_range(-self.jitter_frac..self.jitter_frac) * interval_s
            } else {
                0.0
            };
            let stamp = Seconds(t.value() + jitter);
            if let Some(stale) = in_flight.take() {
                // The delayed report finally lands — at this tick's stamp,
                // ahead of the fresh reading (first arrival wins downstream).
                times.push(stamp);
                values.push(stale);
            }
            if self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
                in_flight = Some(value);
                continue;
            }
            times.push(stamp);
            values.push(value);
            if self.dup_prob > 0.0 && rng.gen_bool(self.dup_prob) {
                times.push(stamp);
                values.push(value);
            }
        }
    }
}

/// Standard normal via Box–Muller (avoids depending on `rand_distr`).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> RegularSeries {
        RegularSeries::new(
            Seconds::ZERO,
            Seconds(10.0),
            (0..500).map(|i| (i as f64 * 0.05).sin() * 10.0 + 50.0).collect(),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn no_impairments_is_lossless() {
        let t = truth();
        let out = Impairments::none().apply(&mut rng(), &t);
        assert_eq!(out.len(), t.len());
        for ((tt, tv), (ot, ov)) in t.iter().zip(out.iter()) {
            assert_eq!(tt, ot);
            assert_eq!(tv, ov);
        }
    }

    #[test]
    fn noise_perturbs_but_stays_close() {
        let t = truth();
        let imp = Impairments {
            noise_std: 0.1,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        let max_dev = t
            .values()
            .iter()
            .zip(out.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_dev > 0.0);
        assert!(max_dev < 1.0, "6σ should bound deviation, got {max_dev}");
    }

    #[test]
    fn noise_statistics_match() {
        let flat = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![0.0; 20_000]);
        let imp = Impairments {
            noise_std: 2.0,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &flat);
        let mean = out.values().iter().sum::<f64>() / out.len() as f64;
        let var = out.values().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / out.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let t = truth();
        let imp = Impairments {
            quant_step: Some(1.0),
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        for &v in out.values() {
            assert!((v - v.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn drops_remove_samples() {
        let t = truth();
        let imp = Impairments {
            drop_prob: 0.3,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        let kept = out.len() as f64 / t.len() as f64;
        assert!((0.6..0.8).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn jitter_moves_timestamps_within_bounds() {
        let t = truth();
        let imp = Impairments {
            jitter_frac: 0.3,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        assert_eq!(out.len(), t.len());
        let mut any_moved = false;
        for ((tt, _), (ot, _)) in t.iter().zip(out.iter()) {
            let dev = (tt.value() - ot.value()).abs();
            assert!(dev < 3.01, "jitter exceeded 30% of 10s: {dev}");
            if dev > 0.0 {
                any_moved = true;
            }
        }
        assert!(any_moved);
    }

    #[test]
    fn corruption_injects_outliers() {
        let t = truth();
        let imp = Impairments {
            corrupt_prob: 0.05,
            corrupt_magnitude: 1e6,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        let outliers = out.values().iter().filter(|v| v.abs() > 1e5).count();
        let frac = outliers as f64 / out.len() as f64;
        assert!((0.02..0.09).contains(&frac), "corrupt fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = truth();
        let imp = Impairments {
            noise_std: 0.5,
            drop_prob: 0.1,
            jitter_frac: 0.2,
            ..Impairments::none()
        };
        let a = imp.apply(&mut StdRng::seed_from_u64(99), &t);
        let b = imp.apply(&mut StdRng::seed_from_u64(99), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_into_matches_apply_exactly() {
        let t = truth();
        let imp = Impairments {
            noise_std: 0.5,
            quant_step: Some(0.25),
            drop_prob: 0.1,
            jitter_frac: 0.2,
            corrupt_prob: 0.01,
            corrupt_magnitude: 100.0,
            dup_prob: 0.05,
            delay_prob: 0.05,
        };
        let reference = imp.apply(&mut StdRng::seed_from_u64(5), &t);
        let mut times = Vec::new();
        let mut values = Vec::new();
        imp.apply_into(&mut StdRng::seed_from_u64(5), &t, &mut times, &mut values);
        assert_eq!(times, reference.times());
        assert_eq!(values, reference.values());
    }

    #[test]
    fn apply_into_reuses_buffers() {
        let t = truth();
        let imp = Impairments {
            noise_std: 0.1,
            drop_prob: 0.05,
            ..Impairments::none()
        };
        let mut times = Vec::new();
        let mut values = Vec::new();
        imp.apply_into(&mut rng(), &t, &mut times, &mut values);
        let (tp, vp) = (times.as_ptr(), values.as_ptr());
        imp.apply_into(&mut rng(), &t, &mut times, &mut values);
        assert_eq!(times.as_ptr(), tp, "times buffer must be reused");
        assert_eq!(values.as_ptr(), vp, "values buffer must be reused");
    }

    #[test]
    fn duplicates_share_timestamps_exactly() {
        let t = truth();
        let imp = Impairments {
            dup_prob: 0.2,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        assert!(out.len() > t.len(), "duplication must add samples");
        let dups = out
            .times()
            .windows(2)
            .filter(|w| w[0] == w[1])
            .count();
        assert!(
            (30..120).contains(&dups),
            "expected ~100 duplicated reports in 500, got {dups}"
        );
        // Every duplicate is exact: same timestamp, same value, adjacent.
        for (tw, vw) in out.times().windows(2).zip(out.values().windows(2)) {
            if tw[0] == tw[1] {
                assert_eq!(vw[0], vw[1], "a duplicated report must repeat its value");
            }
        }
        // Never out of order.
        assert!(out.times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn delayed_reports_land_on_the_next_tick_never_reordered() {
        let t = truth();
        let imp = Impairments {
            delay_prob: 0.15,
            ..Impairments::none()
        };
        let out = imp.apply(&mut rng(), &t);
        // Delays shuffle arrival ticks but lose at most the one report
        // still in flight at the end of the trace.
        assert!(out.len() >= t.len() - 1, "delay must not lose reports mid-trace");
        // A delayed report shares its landing tick's timestamp.
        let collisions = out.times().windows(2).filter(|w| w[0] == w[1]).count();
        assert!(collisions > 20, "expected timestamp collisions, got {collisions}");
        assert!(
            out.times().windows(2).all(|w| w[0] <= w[1]),
            "delayed reports must never reorder timestamps"
        );
    }

    #[test]
    fn inert_report_faults_leave_the_chain_bit_identical() {
        // dup/delay at probability zero must not perturb the RNG stream:
        // the pre-existing impairment chain stays byte-for-byte identical.
        let t = truth();
        let faulty_chain = Impairments {
            noise_std: 0.5,
            drop_prob: 0.1,
            jitter_frac: 0.2,
            ..Impairments::none()
        };
        let a = faulty_chain.apply(&mut StdRng::seed_from_u64(99), &t);
        let b = Impairments {
            dup_prob: 0.0,
            delay_prob: 0.0,
            ..faulty_chain
        }
        .apply(&mut StdRng::seed_from_u64(99), &t);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_drop_prob_panics() {
        let imp = Impairments {
            drop_prob: 1.5,
            ..Impairments::none()
        };
        imp.apply(&mut rng(), &truth());
    }
}
