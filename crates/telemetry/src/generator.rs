//! Per-device trace synthesis.
//!
//! A [`DeviceTrace`] bundles everything about one `(metric, device)` pair:
//! the ground-truth [`SignalModel`] (with a band edge drawn from the metric's
//! profile), the measurement [`Impairments`], and the production polling
//! schedule. It can produce both the *measured* trace the §3.2 study
//! analyzes and the pristine ground truth tests validate against.

use crate::model::{SignalModel, ToneBank};
use crate::noise::Impairments;
use crate::profile::MetricProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, IrregularSeries, RegularSeries, Seconds};

/// Number of broadband tones in every synthesized signal.
const TONES_PER_SIGNAL: usize = 24;

/// SplitMix64 finalizer — decorrelates nearby seeds so device 7 of metric 3
/// shares nothing with device 7 of metric 4.
fn mix_seed(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reusable scratch for streaming trace synthesis: the [`ToneBank`]
/// oscillator plus the ground-truth grid buffer. One `TraceSynth` per worker
/// lets [`DeviceTrace::measured_into`] synthesize trace after trace with
/// zero steady-state heap allocations (pinned by
/// `crates/telemetry/tests/alloc_steady_state.rs`).
#[derive(Debug, Clone, Default)]
pub struct TraceSynth {
    bank: ToneBank,
    truth: Vec<f64>,
}

impl TraceSynth {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One synthetic `(metric, device)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTrace {
    meta: TraceMeta,
    profile: MetricProfile,
    model: SignalModel,
    impairments: Impairments,
    undersampled: bool,
    quiet: bool,
    seed: u64,
}

impl DeviceTrace {
    /// Synthesizes device `device_idx` of `profile.kind` under fleet `seed`.
    ///
    /// Deterministic: the same `(profile, device_idx, seed)` triple always
    /// yields the same trace.
    pub fn synthesize(profile: MetricProfile, device_idx: usize, seed: u64) -> DeviceTrace {
        let device_seed = mix_seed(seed, profile.kind.index() as u64 + 1, device_idx as u64 + 1);
        let mut rng = StdRng::seed_from_u64(device_seed);

        // Quiescent devices first (error counters sitting at zero all day):
        // their signal never moves a full quantum, so they quantize flat.
        // A quiet device is by construction never under-sampled.
        let quiet = rng.gen_bool(profile.quiet_fraction);
        let undersampled = !quiet && rng.gen_bool(profile.undersampled_fraction);
        let folding = profile.folding_frequency().value();
        let edge = if undersampled {
            // Band edge above the production folding frequency (up to 3×).
            let lo = folding * 1.05;
            let hi = folding * 3.0;
            Hertz(log_uniform(&mut rng, lo, hi))
        } else {
            Hertz(log_uniform(&mut rng, profile.edge_lo.value(), profile.edge_hi.value()))
        };

        // Mean and AC amplitude, kept inside the metric's physical range so
        // no clipping (and thus no spectral spreading) is needed.
        let (lo, hi) = profile.base_range;
        let (mean, amp) = if quiet {
            // Idle counter: sits at the range floor with sub-quantum wiggle.
            (lo + profile.quant_step * 0.25, profile.quant_step * 0.2)
        } else {
            let mid = profile.mid_value();
            let mean = mid + rng.gen_range(-0.2..0.2) * profile.half_range();
            let headroom = (mean - lo).min(hi - mean);
            (mean, rng.gen_range(0.3..0.8) * headroom)
        };

        let model = if undersampled {
            // Alias-heavy band: most tones sit at/above the production
            // folding frequency, so the folded spectrum fills the measurable
            // band — the signature today's polling cannot capture.
            SignalModel::broadband_between(
                &mut rng,
                Hertz(folding * 0.7),
                edge,
                mean,
                amp,
                TONES_PER_SIGNAL,
            )
        } else {
            SignalModel::band_limited(
                &mut rng,
                edge,
                mean,
                amp,
                if quiet { 0.0 } else { profile.diurnal_weight },
                TONES_PER_SIGNAL,
            )
        };

        let impairments = Impairments {
            noise_std: profile.relative_noise * amp,
            quant_step: Some(profile.quant_step),
            drop_prob: 0.002,
            jitter_frac: 0.02,
            corrupt_prob: 0.0,
            corrupt_magnitude: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
        };

        DeviceTrace {
            meta: TraceMeta {
                metric: profile.kind.name().to_string(),
                device: format!("{}-dev{:04}", profile.kind.slug(), device_idx),
            },
            profile,
            model,
            impairments,
            undersampled,
            quiet,
            seed: device_seed,
        }
    }

    /// Returns a copy of this device with transient events injected into its
    /// ground-truth model (for adaptation and event-recall experiments).
    pub fn with_events(mut self, events: Vec<crate::events::Event>) -> DeviceTrace {
        self.model = self.model.with_events(events);
        self
    }

    /// The ground-truth model of an alternate *regime*: every tone frequency
    /// scaled by `factor` (see [`SignalModel::with_scaled_frequencies`]).
    /// Scenario incidents build this once per member and swap it in and out
    /// with [`DeviceTrace::swap_model`] at regime boundaries.
    pub fn regime_model(&self, factor: f64) -> SignalModel {
        self.model.with_scaled_frequencies(factor)
    }

    /// Exchanges the ground-truth model with `alt` in place (no allocation).
    /// The caller owns the displaced model and is responsible for swapping
    /// it back — identity, impairments, and the noise seed are unaffected,
    /// so measurement noise stays on the same deterministic stream across a
    /// regime switch.
    pub fn swap_model(&mut self, alt: &mut SignalModel) {
        std::mem::swap(&mut self.model, alt);
    }

    /// Trace identity (`metric@device`).
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The metric profile used.
    pub fn profile(&self) -> &MetricProfile {
        &self.profile
    }

    /// The ground-truth signal model.
    pub fn model(&self) -> &SignalModel {
        &self.model
    }

    /// The measurement impairment chain.
    pub fn impairments(&self) -> &Impairments {
        &self.impairments
    }

    /// Heap bytes the trace holds beyond its inline struct (identity
    /// strings + signal model storage) — the durable per-member memory the
    /// fleet engine accounts for.
    pub fn heap_bytes(&self) -> usize {
        self.meta.metric.capacity() + self.meta.device.capacity() + self.model.heap_bytes()
    }

    /// True band edge of the ground-truth signal (known by construction).
    pub fn true_band_edge(&self) -> Hertz {
        self.model.band_edge()
    }

    /// True Nyquist sampling rate (`2 × band edge`).
    pub fn true_nyquist_rate(&self) -> Hertz {
        self.model.nyquist_rate()
    }

    /// Whether today's production polling under-samples this device.
    pub fn is_undersampled_at_production_rate(&self) -> bool {
        self.undersampled
    }

    /// Whether this device is quiescent (idle counter; flat after
    /// quantization).
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Pristine ground truth sampled at `rate` for `duration` from t=0.
    ///
    /// Evaluates through the streaming [`ToneBank`] oscillator (allocating
    /// fresh buffers); the zero-allocation loop uses
    /// [`DeviceTrace::ground_truth_into`].
    pub fn ground_truth(&self, rate: Hertz, duration: Seconds) -> RegularSeries {
        let mut bank = ToneBank::new();
        let mut values = Vec::new();
        self.model
            .sample_into(&mut bank, Seconds::ZERO, rate, duration, &mut values);
        RegularSeries::new(Seconds::ZERO, rate.period(), values)
    }

    /// [`DeviceTrace::ground_truth`] into a recycled buffer: `out` is
    /// cleared and refilled; `synth` carries the oscillator bank. Zero
    /// steady-state heap allocations.
    pub fn ground_truth_into(
        &self,
        synth: &mut TraceSynth,
        rate: Hertz,
        duration: Seconds,
        out: &mut Vec<f64>,
    ) {
        self.model
            .sample_into(&mut synth.bank, Seconds::ZERO, rate, duration, out);
    }

    /// The measured trace at the *production* rate: ground truth through the
    /// impairment chain. Deterministic per device.
    pub fn production_trace(&self, duration: Seconds) -> IrregularSeries {
        self.measured(self.profile.production_rate(), duration, 0)
    }

    /// [`DeviceTrace::production_trace`] into recycled buffers (see
    /// [`DeviceTrace::measured_into`]).
    pub fn production_trace_into(
        &self,
        synth: &mut TraceSynth,
        duration: Seconds,
        times: &mut Vec<Seconds>,
        values: &mut Vec<f64>,
    ) {
        self.measured_into(synth, self.profile.production_rate(), duration, 0, times, values);
    }

    /// Measured trace at an arbitrary rate. `stream` decorrelates repeated
    /// measurements of the same device (e.g. the two pollers of the
    /// dual-rate aliasing detector must not share noise).
    pub fn measured(&self, rate: Hertz, duration: Seconds, stream: u64) -> IrregularSeries {
        let mut synth = TraceSynth::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        self.measured_into(&mut synth, rate, duration, stream, &mut times, &mut values);
        IrregularSeries::from_recycled(times, values)
    }

    /// [`DeviceTrace::measured`] into recycled buffers: the ground truth is
    /// streamed into `synth`'s grid buffer and the impairment chain writes
    /// the surviving `(time, value)` pairs into `times`/`values` (cleared,
    /// then filled). Identical output to [`DeviceTrace::measured`]; zero
    /// steady-state heap allocations.
    pub fn measured_into(
        &self,
        synth: &mut TraceSynth,
        rate: Hertz,
        duration: Seconds,
        stream: u64,
        times: &mut Vec<Seconds>,
        values: &mut Vec<f64>,
    ) {
        let mut truth = std::mem::take(&mut synth.truth);
        self.model
            .sample_into(&mut synth.bank, Seconds::ZERO, rate, duration, &mut truth);
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, 0xDA7A, stream));
        self.impairments.apply_grid_into(
            &mut rng,
            Seconds::ZERO,
            rate.period(),
            &truth,
            times,
            values,
        );
        synth.truth = truth;
    }
}

fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    let u = rng.gen_range(lo.ln()..hi.ln());
    u.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricKind;

    fn temp_trace(idx: usize) -> DeviceTrace {
        DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::Temperature), idx, 1)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = temp_trace(3);
        let b = temp_trace(3);
        assert_eq!(a, b);
        let t1 = a.production_trace(Seconds::from_hours(2.0));
        let t2 = b.production_trace(Seconds::from_hours(2.0));
        assert_eq!(t1, t2);
    }

    #[test]
    fn distinct_devices_differ() {
        let a = temp_trace(1);
        let b = temp_trace(2);
        assert_ne!(a.model(), b.model());
        assert_ne!(a.meta(), b.meta());
    }

    #[test]
    fn well_sampled_edge_within_profile_band() {
        let p = MetricProfile::for_kind(MetricKind::Temperature);
        for idx in 0..50 {
            let t = temp_trace(idx);
            if !t.is_undersampled_at_production_rate() {
                let e = t.true_band_edge().value();
                assert!(
                    e >= p.edge_lo.value() * 0.99 && e <= p.edge_hi.value() * 1.01,
                    "edge {e} outside [{}, {}]",
                    p.edge_lo,
                    p.edge_hi
                );
            }
        }
    }

    #[test]
    fn undersampled_edge_beyond_folding() {
        let p = MetricProfile::for_kind(MetricKind::FcsErrors);
        let mut found = 0;
        for idx in 0..200 {
            let t = DeviceTrace::synthesize(p, idx, 5);
            if t.is_undersampled_at_production_rate() {
                found += 1;
                assert!(t.true_band_edge().value() > p.folding_frequency().value());
            }
        }
        // 16% nominal → expect plenty in 200 draws.
        assert!(found > 10, "only {found} undersampled devices");
    }

    #[test]
    fn ground_truth_stays_in_metric_range() {
        for idx in 0..10 {
            let t = temp_trace(idx);
            let (lo, hi) = t.profile().base_range;
            let series = t.ground_truth(Hertz(1.0 / 300.0), Seconds::from_hours(12.0));
            for &v in series.values() {
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "value {v} outside range");
            }
        }
    }

    #[test]
    fn production_trace_has_roughly_expected_length() {
        let t = temp_trace(0);
        let day = Seconds::from_days(1.0);
        let trace = t.production_trace(day);
        // 1 day at 5-minute polls = 288, minus ~0.2% drops.
        assert!(trace.len() >= 280 && trace.len() <= 288, "{}", trace.len());
    }

    #[test]
    fn production_values_are_quantized() {
        let t = temp_trace(0);
        let step = t.profile().quant_step;
        let trace = t.production_trace(Seconds::from_hours(6.0));
        for &v in trace.values() {
            let snapped = (v / step).round() * step;
            assert!((v - snapped).abs() < 1e-9, "unquantized value {v}");
        }
    }

    #[test]
    fn measurement_streams_are_decorrelated() {
        let t = temp_trace(0);
        let a = t.measured(Hertz(1.0 / 300.0), Seconds::from_hours(6.0), 1);
        let b = t.measured(Hertz(1.0 / 300.0), Seconds::from_hours(6.0), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn measured_into_matches_measured_exactly() {
        let t = DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::LinkUtil), 2, 9);
        let rate = t.profile().production_rate();
        let day = Seconds::from_days(1.0);
        let reference = t.measured(rate, day, 3);
        let mut synth = TraceSynth::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        t.measured_into(&mut synth, rate, day, 3, &mut times, &mut values);
        assert_eq!(times, reference.times());
        assert_eq!(values, reference.values());
    }

    #[test]
    fn synthesis_buffers_are_recycled_across_traces() {
        let a = temp_trace(0);
        let b = temp_trace(1);
        let mut synth = TraceSynth::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        let day = Seconds::from_days(1.0);
        a.production_trace_into(&mut synth, day, &mut times, &mut values);
        let (tp, vp) = (times.as_ptr(), values.as_ptr());
        b.production_trace_into(&mut synth, day, &mut times, &mut values);
        assert_eq!(times.as_ptr(), tp, "times buffer must be reused");
        assert_eq!(values.as_ptr(), vp, "values buffer must be reused");
        assert_eq!(values, b.production_trace(day).values());
    }

    #[test]
    fn ground_truth_into_matches_ground_truth() {
        let t = temp_trace(4);
        let rate = Hertz(1.0 / 300.0);
        let dur = Seconds::from_hours(12.0);
        let reference = t.ground_truth(rate, dur);
        let mut synth = TraceSynth::new();
        let mut out = Vec::new();
        t.ground_truth_into(&mut synth, rate, dur, &mut out);
        assert_eq!(out, reference.values());
    }

    #[test]
    fn meta_names_are_stable_and_unique() {
        let a = temp_trace(7);
        assert_eq!(a.meta().metric, "Temperature");
        assert_eq!(a.meta().device, "temperature-dev0007");
        let b = temp_trace(8);
        assert_ne!(a.meta().device, b.meta().device);
    }
}
