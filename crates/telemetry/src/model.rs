//! Band-limited ground-truth signal models.
//!
//! A [`SignalModel`] is a deterministic function of continuous time: a mean
//! plus a sum of sinusoidal tones (and optional transient [`events`]). Being
//! a finite tone sum makes it **exactly band-limited** with a band edge known
//! by construction — the property every estimator test in the workspace
//! leans on — and evaluable at any `t`, which lets pollers sample it at any
//! rate.
//!
//! [`events`]: crate::events

use crate::events::Event;
use rand::Rng;
use std::f64::consts::PI;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// One sinusoidal component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub freq: f64,
    /// Amplitude in metric units.
    pub amp: f64,
    /// Phase in radians.
    pub phase: f64,
}

impl Tone {
    /// Value of the tone at time `t` seconds.
    #[inline]
    pub fn value_at(&self, t: f64) -> f64 {
        self.amp * (2.0 * PI * self.freq * t + self.phase).sin()
    }
}

/// A streaming oscillator bank: evaluates a tone sum over a *uniform* time
/// grid by complex phase rotation instead of a `sin()` call per sample.
///
/// Each tone `a·sin(θ₀ + k·Δθ)` is a phasor stepped by the fixed rotation
/// `(cos Δθ, sin Δθ)` — one complex multiply-add per tone per sample. The
/// phasor is re-seeded from the exact angle every
/// [`ToneBank::RENORM_INTERVAL`] samples, bounding rounding drift (both the
/// phasor's magnitude and its phase) to `O(RENORM_INTERVAL · ε)` — around
/// 1e-13 of the tone amplitude — instead of letting it accumulate over a
/// whole trace. `proptests.rs` pins the agreement with [`Tone::value_at`]
/// to 1e-9 over day-length traces.
///
/// The bank's parameter buffers are reused across [`ToneBank::load`] calls,
/// so synthesizing trace after trace with one bank performs no steady-state
/// heap allocations.
#[derive(Debug, Clone, Default)]
pub struct ToneBank {
    amp: Vec<f64>,
    theta0: Vec<f64>,
    dtheta: Vec<f64>,
    /// Per-tone step rotation `(cos Δθ, sin Δθ)`.
    rot_cos: Vec<f64>,
    rot_sin: Vec<f64>,
    /// Per-tone phasor state, advanced sample by sample. Keeping the state
    /// in arrays and iterating sample-major gives every tone an independent
    /// dependency chain, so the recurrence pipelines/vectorizes instead of
    /// serializing on one phasor's multiply latency.
    cur_cos: Vec<f64>,
    cur_sin: Vec<f64>,
}

impl ToneBank {
    /// Samples between exact re-seeds of each oscillator. Small enough that
    /// worst-case drift (`~RENORM_INTERVAL · ε` in phase) stays orders of
    /// magnitude under the 1e-9 agreement the property tests pin, large
    /// enough that the per-chunk `sin_cos` re-seed cost is invisible.
    pub const RENORM_INTERVAL: usize = 256;

    /// An empty bank; buffers grow on first [`ToneBank::load`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes the bank currently holds (capacities, not lengths) —
    /// the per-worker memory-footprint accounting of the fleet engine.
    pub fn resident_bytes(&self) -> usize {
        (self.amp.capacity()
            + self.theta0.capacity()
            + self.dtheta.capacity()
            + self.rot_cos.capacity()
            + self.rot_sin.capacity()
            + self.cur_cos.capacity()
            + self.cur_sin.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Loads `tones` for a grid starting at `start` seconds with `interval`
    /// spacing, reusing the bank's buffers.
    pub fn load(&mut self, tones: &[Tone], start: Seconds, interval: Seconds) {
        self.amp.clear();
        self.theta0.clear();
        self.dtheta.clear();
        self.rot_cos.clear();
        self.rot_sin.clear();
        for tone in tones {
            let w = 2.0 * PI * tone.freq;
            self.amp.push(tone.amp);
            self.theta0.push(w * start.value() + tone.phase);
            let dtheta = w * interval.value();
            self.dtheta.push(dtheta);
            let (s, c) = dtheta.sin_cos();
            self.rot_cos.push(c);
            self.rot_sin.push(s);
        }
        self.cur_cos.resize(tones.len(), 0.0);
        self.cur_sin.resize(tones.len(), 0.0);
    }

    /// Adds every loaded tone's contribution at grid point `k` to `out[k]`.
    pub fn accumulate(&mut self, out: &mut [f64]) {
        let tones = self.amp.len();
        // Equal-length slice bindings so the inner loop's bounds checks
        // hoist and the recurrence auto-vectorizes across tones.
        let amp = &self.amp[..tones];
        let rot_cos = &self.rot_cos[..tones];
        let rot_sin = &self.rot_sin[..tones];
        let cur_sin = &mut self.cur_sin[..tones];
        let cur_cos = &mut self.cur_cos[..tones];
        let mut k = 0;
        while k < out.len() {
            let chunk_end = (k + Self::RENORM_INTERVAL).min(out.len());
            // Exact re-seed of every phasor: drift cannot outlive one chunk.
            for i in 0..tones {
                let (s, c) = (self.theta0[i] + k as f64 * self.dtheta[i]).sin_cos();
                cur_sin[i] = s;
                cur_cos[i] = c;
            }
            for v in &mut out[k..chunk_end] {
                let mut acc = 0.0;
                for i in 0..tones {
                    let (s, c) = (cur_sin[i], cur_cos[i]);
                    acc += amp[i] * s;
                    cur_sin[i] = s * rot_cos[i] + c * rot_sin[i];
                    cur_cos[i] = c * rot_cos[i] - s * rot_sin[i];
                }
                *v += acc;
            }
            k = chunk_end;
        }
    }
}

/// A band-limited ground-truth signal: `mean + Σ tones + Σ events`, clipped
/// to a physical range if configured.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalModel {
    mean: f64,
    tones: Vec<Tone>,
    events: Vec<Event>,
    clip: Option<(f64, f64)>,
}

impl SignalModel {
    /// Builds a model from explicit parts.
    ///
    /// # Panics
    /// Panics if any tone has a non-positive frequency or negative amplitude,
    /// or the clip range is inverted.
    pub fn new(mean: f64, tones: Vec<Tone>, clip: Option<(f64, f64)>) -> Self {
        assert!(
            tones.iter().all(|t| t.freq > 0.0 && t.amp >= 0.0),
            "tones must have positive frequency and non-negative amplitude"
        );
        if let Some((lo, hi)) = clip {
            assert!(lo < hi, "clip range must be ordered");
        }
        SignalModel {
            mean,
            tones,
            events: Vec::new(),
            clip,
        }
    }

    /// Synthesizes a random band-limited signal.
    ///
    /// * `edge` — the highest tone frequency (the true band edge).
    /// * `mean`, `amp` — DC level and total AC amplitude budget.
    /// * `diurnal_weight` — fraction (`0..=1`) of the amplitude budget put
    ///   into a 24-hour component; the rest is spread over `n_tones` tones
    ///   log-spaced from `edge/1000` up to `edge` with ±50% amplitude jitter.
    ///
    /// The tone *at* the band edge receives 35% of the broadband budget, so
    /// the edge always carries a visible share of the energy: this is what
    /// makes the 99%-energy estimator land close to `edge`, and what keeps
    /// slow signals visible above measurement noise within short analysis
    /// windows.
    ///
    /// # Panics
    /// Panics if `edge` is not positive, `amp` is negative, or `n_tones == 0`.
    pub fn band_limited<R: Rng>(
        rng: &mut R,
        edge: Hertz,
        mean: f64,
        amp: f64,
        diurnal_weight: f64,
        n_tones: usize,
    ) -> SignalModel {
        assert!(edge.value() > 0.0, "band edge must be positive");
        assert!(amp >= 0.0, "amplitude must be non-negative");
        assert!(n_tones > 0, "need at least one tone");
        let diurnal_freq = 1.0 / 86_400.0;
        let mut tones = Vec::with_capacity(n_tones + 1);
        // The diurnal share of the budget only applies when a 24-hour tone
        // fits inside the band; otherwise the whole budget goes broadband
        // (deducting it anyway would silently shrink slow signals).
        let mut diurnal_amp = amp * diurnal_weight.clamp(0.0, 1.0);
        if diurnal_amp > 0.0 && diurnal_freq < edge.value() {
            tones.push(Tone {
                freq: diurnal_freq,
                amp: diurnal_amp,
                phase: rng.gen_range(0.0..2.0 * PI),
            });
        } else {
            diurnal_amp = 0.0;
        }
        let broadband_amp = amp - diurnal_amp;
        let edge_amp = broadband_amp * 0.35;
        let filler_budget = broadband_amp - edge_amp;
        let lo = edge.value() / 1000.0;
        let per_tone = if n_tones > 1 {
            filler_budget / (n_tones - 1) as f64
        } else {
            0.0
        };
        for i in 0..n_tones.saturating_sub(1) {
            // Log-spaced grid with jitter so tones never align across devices.
            let frac = (i as f64 + rng.gen_range(0.1..0.9)) / n_tones as f64;
            let freq = lo * (edge.value() / lo).powf(frac);
            tones.push(Tone {
                freq,
                amp: per_tone * rng.gen_range(0.5..1.5),
                phase: rng.gen_range(0.0..2.0 * PI),
            });
        }
        // The edge tone pins the true band edge exactly, with a dominant
        // share of the budget (see docs above).
        tones.push(Tone {
            freq: edge.value(),
            amp: if n_tones > 1 { edge_amp } else { broadband_amp },
            phase: rng.gen_range(0.0..2.0 * PI),
        });
        SignalModel::new(mean, tones, None)
    }

    /// Synthesizes a signal whose tones are log-spaced across `[lo, hi]`
    /// with near-equal amplitudes — no diurnal component, no edge dominance.
    ///
    /// This is the model for *under-sampled* devices: when `lo` sits near a
    /// poller's folding frequency and `hi` above it, most tones alias and
    /// the folded spectrum fills the measurable band — the "probably already
    /// aliased" signature the §3.2 estimator flags.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi`, `amp >= 0` and `n_tones > 0`.
    pub fn broadband_between<R: Rng>(
        rng: &mut R,
        lo: Hertz,
        hi: Hertz,
        mean: f64,
        amp: f64,
        n_tones: usize,
    ) -> SignalModel {
        assert!(lo.value() > 0.0 && lo.value() < hi.value(), "need 0 < lo < hi");
        assert!(amp >= 0.0, "amplitude must be non-negative");
        assert!(n_tones > 0, "need at least one tone");
        let per_tone = amp / n_tones as f64;
        let mut tones: Vec<Tone> = (0..n_tones)
            .map(|i| {
                let frac = (i as f64 + rng.gen_range(0.1..0.9)) / n_tones as f64;
                let freq = lo.value() * (hi.value() / lo.value()).powf(frac);
                Tone {
                    freq,
                    amp: per_tone * rng.gen_range(0.7..1.3),
                    phase: rng.gen_range(0.0..2.0 * PI),
                }
            })
            .collect();
        // Pin the top tone to the requested band edge.
        if let Some(last) = tones.last_mut() {
            last.freq = hi.value();
        }
        SignalModel::new(mean, tones, None)
    }

    /// Adds a clip range (applied after tones and events).
    pub fn with_clip(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "clip range must be ordered");
        self.clip = Some((lo, hi));
        self
    }

    /// Adds transient events to the model.
    pub fn with_events(mut self, events: Vec<Event>) -> Self {
        self.events = events;
        self
    }

    /// A regime variant of this model: every tone frequency scaled by
    /// `factor`, amplitudes/phases/mean/events/clip untouched. This is how
    /// scenario incidents remap a device's signal — the band edge moves to
    /// `factor ×` its diurnal value, so a controller settled on the old
    /// regime is genuinely under- (or over-) sampling until it re-adapts.
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn with_scaled_frequencies(&self, factor: f64) -> SignalModel {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "frequency scale must be positive and finite, got {factor}"
        );
        let tones = self
            .tones
            .iter()
            .map(|t| Tone {
                freq: t.freq * factor,
                ..*t
            })
            .collect();
        SignalModel {
            mean: self.mean,
            tones,
            events: self.events.clone(),
            clip: self.clip,
        }
    }

    /// The DC level.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The tone set.
    pub fn tones(&self) -> &[Tone] {
        &self.tones
    }

    /// The configured events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Heap bytes the model holds (tone + event storage capacities) — the
    /// durable per-member memory the fleet engine accounts for.
    pub fn heap_bytes(&self) -> usize {
        self.tones.capacity() * std::mem::size_of::<Tone>()
            + self.events.capacity() * std::mem::size_of::<Event>()
    }

    /// The highest tone frequency — the true band edge of the *stationary*
    /// part of the signal. Zero if there are no tones.
    pub fn band_edge(&self) -> Hertz {
        Hertz(self.tones.iter().map(|t| t.freq).fold(0.0, f64::max))
    }

    /// The true Nyquist *sampling* rate: twice the band edge.
    pub fn nyquist_rate(&self) -> Hertz {
        self.band_edge().nyquist_rate()
    }

    /// Evaluates the signal at time `t` seconds.
    pub fn value_at(&self, t: f64) -> f64 {
        let mut v = self.mean;
        for tone in &self.tones {
            v += tone.value_at(t);
        }
        for e in &self.events {
            v += e.value_at(t);
        }
        if let Some((lo, hi)) = self.clip {
            v = v.clamp(lo, hi);
        }
        v
    }

    /// Samples the signal at `rate` for `duration`, starting at `start`.
    ///
    /// This is the direct per-sample [`SignalModel::value_at`] path — exact,
    /// but `O(tones)` `sin()` calls per sample. The synthesis hot loop uses
    /// [`SignalModel::sample_into`], which streams the same grid through a
    /// [`ToneBank`] an order of magnitude faster; this method is kept as the
    /// reference the oscillator bank is validated (and benchmarked) against.
    ///
    /// # Panics
    /// Panics if `rate` or `duration` is not positive.
    pub fn sample(&self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        assert!(rate.value() > 0.0, "rate must be positive");
        assert!(duration.value() > 0.0, "duration must be positive");
        let interval = rate.period();
        let n = (duration.value() * rate.value()).round().max(1.0) as usize;
        let values = (0..n)
            .map(|k| self.value_at(start.value() + k as f64 * interval.value()))
            .collect();
        RegularSeries::new(start, interval, values)
    }

    /// Streaming variant of [`SignalModel::sample`]: fills `out` with the
    /// same uniform grid via the [`ToneBank`] oscillator recurrence (one
    /// multiply-add per tone per sample; agreement with the direct path is
    /// pinned to 1e-9 by property tests). `bank` and `out` are reused across
    /// calls, so the steady-state cost is zero heap allocations.
    ///
    /// # Panics
    /// Panics if `rate` or `duration` is not positive.
    pub fn sample_into(
        &self,
        bank: &mut ToneBank,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        out: &mut Vec<f64>,
    ) {
        assert!(rate.value() > 0.0, "rate must be positive");
        assert!(duration.value() > 0.0, "duration must be positive");
        let interval = rate.period();
        let n = (duration.value() * rate.value()).round().max(1.0) as usize;
        out.clear();
        out.resize(n, self.mean);
        bank.load(&self.tones, start, interval);
        bank.accumulate(out);
        // Events are transient and sparse; evaluate only the grid slots a
        // given event actually covers instead of scanning every sample.
        for e in &self.events {
            let first = ((e.start - start.value()) / interval.value()).floor().max(0.0) as usize;
            let last = ((e.end() - start.value()) / interval.value()).ceil().max(0.0) as usize;
            let span = out.iter_mut().enumerate().take(last.saturating_add(1)).skip(first);
            for (k, v) in span {
                let t = start.value() + k as f64 * interval.value();
                *v += e.value_at(t);
            }
        }
        if let Some((lo, hi)) = self.clip {
            for v in out.iter_mut() {
                *v = v.clamp(lo, hi);
            }
        }
    }

    /// Total AC amplitude (sum of tone amplitudes) — an upper bound on the
    /// signal's deviation from its mean, ignoring events.
    pub fn total_amplitude(&self) -> f64 {
        self.tones.iter().map(|t| t.amp).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn band_edge_is_max_tone_freq() {
        let m = SignalModel::new(
            0.0,
            vec![
                Tone { freq: 0.1, amp: 1.0, phase: 0.0 },
                Tone { freq: 0.5, amp: 0.5, phase: 1.0 },
            ],
            None,
        );
        assert_eq!(m.band_edge(), Hertz(0.5));
        assert_eq!(m.nyquist_rate(), Hertz(1.0));
    }

    #[test]
    fn band_limited_pins_requested_edge() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 20);
        assert!((m.band_edge().value() - 0.01).abs() < 1e-15);
        assert!(m.tones().len() >= 20);
    }

    #[test]
    fn band_limited_respects_amplitude_budget() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.5, 25);
        // Jitter is ±50%, so total amplitude is within [0.5, 1.5]× budget
        // for the broadband part plus the exact diurnal share.
        let total = m.total_amplitude();
        assert!(total > 1.0 && total < 3.5, "total amplitude {total}");
    }

    #[test]
    fn band_limited_is_deterministic_per_seed() {
        let a = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 10);
        let b = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 10);
        assert_eq!(a, b);
        assert_eq!(a.value_at(1234.5), b.value_at(1234.5));
    }

    #[test]
    fn value_at_is_mean_plus_tones() {
        let m = SignalModel::new(
            5.0,
            vec![Tone { freq: 1.0, amp: 2.0, phase: 0.0 }],
            None,
        );
        assert!((m.value_at(0.0) - 5.0).abs() < 1e-12); // sin(0)=0
        assert!((m.value_at(0.25) - 7.0).abs() < 1e-12); // sin(π/2)=1
    }

    #[test]
    fn clip_applies() {
        let m = SignalModel::new(
            0.0,
            vec![Tone { freq: 1.0, amp: 10.0, phase: 0.0 }],
            Some((-1.0, 1.0)),
        );
        assert_eq!(m.value_at(0.25), 1.0);
        assert_eq!(m.value_at(0.75), -1.0);
    }

    #[test]
    fn sample_produces_expected_grid() {
        let m = SignalModel::new(1.0, vec![], None);
        let s = m.sample(Seconds(100.0), Hertz(2.0), Seconds(5.0));
        assert_eq!(s.len(), 10);
        assert_eq!(s.start(), Seconds(100.0));
        assert_eq!(s.interval(), Seconds(0.5));
        assert!(s.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sample_matches_value_at() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.05), 3.0, 1.0, 0.0, 5);
        let s = m.sample(Seconds(7.0), Hertz(0.5), Seconds(20.0));
        for (k, &v) in s.values().iter().enumerate() {
            let t = 7.0 + k as f64 * 2.0;
            assert_eq!(v, m.value_at(t));
        }
    }

    #[test]
    fn sample_into_matches_direct_sample() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(2e-3), 40.0, 8.0, 0.4, 24);
        let reference = m.sample(Seconds(13.0), Hertz(1.0 / 30.0), Seconds::from_days(1.0));
        let mut bank = ToneBank::new();
        let mut fast = Vec::new();
        m.sample_into(&mut bank, Seconds(13.0), Hertz(1.0 / 30.0), Seconds::from_days(1.0), &mut fast);
        assert_eq!(fast.len(), reference.len());
        let scale = 1.0 + m.total_amplitude();
        for (f, r) in fast.iter().zip(reference.values()) {
            assert!((f - r).abs() <= 1e-9 * scale, "oscillator drifted: {f} vs {r}");
        }
    }

    #[test]
    fn sample_into_applies_events_and_clip() {
        use crate::events::{Event, EventKind};
        let m = SignalModel::new(
            0.0,
            vec![Tone { freq: 1e-3, amp: 2.0, phase: 0.3 }],
            Some((-1.5, 1.5)),
        )
        .with_events(vec![Event::new(EventKind::LevelShift, 500.0, 200.0, 10.0)]);
        let reference = m.sample(Seconds::ZERO, Hertz(0.1), Seconds(1000.0));
        let mut bank = ToneBank::new();
        let mut fast = Vec::new();
        m.sample_into(&mut bank, Seconds::ZERO, Hertz(0.1), Seconds(1000.0), &mut fast);
        for (k, (f, r)) in fast.iter().zip(reference.values()).enumerate() {
            assert!((f - r).abs() <= 1e-9, "slot {k}: {f} vs {r}");
        }
        // The clip must actually bite inside the event window.
        assert!(fast.contains(&1.5));
    }

    #[test]
    fn sample_into_reuses_buffers() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(1e-3), 5.0, 1.0, 0.2, 8);
        let mut bank = ToneBank::new();
        let mut out = Vec::new();
        m.sample_into(&mut bank, Seconds::ZERO, Hertz(0.01), Seconds(10_000.0), &mut out);
        let ptr = out.as_ptr();
        let cap = out.capacity();
        m.sample_into(&mut bank, Seconds::ZERO, Hertz(0.01), Seconds(10_000.0), &mut out);
        assert_eq!(out.as_ptr(), ptr, "output buffer must be reused");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn tone_bank_renorm_interval_bounds_drift() {
        // A deliberately fast tone over a long grid: the worst case for the
        // recurrence. With re-seeding every RENORM_INTERVAL samples the
        // error stays far below 1e-9; this pins the interval's adequacy.
        let tone = Tone { freq: 0.025, amp: 1.0, phase: 1.234 };
        let mut bank = ToneBank::new();
        let dt = Seconds(20.0);
        bank.load(&[tone], Seconds::ZERO, dt);
        let mut out = vec![0.0; 4320]; // one day at 20 s
        bank.accumulate(&mut out);
        for (k, v) in out.iter().enumerate() {
            let exact = tone.value_at(k as f64 * dt.value());
            assert!((v - exact).abs() < 1e-10, "k={k}: {v} vs {exact}");
        }
    }

    #[test]
    fn diurnal_component_present_when_weighted() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 0.0, 1.0, 0.7, 10);
        let has_diurnal = m
            .tones()
            .iter()
            .any(|t| (t.freq - 1.0 / 86_400.0).abs() < 1e-12 && t.amp > 0.5);
        assert!(has_diurnal);
    }

    #[test]
    fn no_diurnal_when_zero_weight() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 0.0, 1.0, 0.0, 10);
        assert!(m
            .tones()
            .iter()
            .all(|t| (t.freq - 1.0 / 86_400.0).abs() > 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive frequency")]
    fn zero_freq_tone_panics() {
        SignalModel::new(0.0, vec![Tone { freq: 0.0, amp: 1.0, phase: 0.0 }], None);
    }
}
