//! Band-limited ground-truth signal models.
//!
//! A [`SignalModel`] is a deterministic function of continuous time: a mean
//! plus a sum of sinusoidal tones (and optional transient [`events`]). Being
//! a finite tone sum makes it **exactly band-limited** with a band edge known
//! by construction — the property every estimator test in the workspace
//! leans on — and evaluable at any `t`, which lets pollers sample it at any
//! rate.
//!
//! [`events`]: crate::events

use crate::events::Event;
use rand::Rng;
use std::f64::consts::PI;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// One sinusoidal component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub freq: f64,
    /// Amplitude in metric units.
    pub amp: f64,
    /// Phase in radians.
    pub phase: f64,
}

impl Tone {
    /// Value of the tone at time `t` seconds.
    #[inline]
    pub fn value_at(&self, t: f64) -> f64 {
        self.amp * (2.0 * PI * self.freq * t + self.phase).sin()
    }
}

/// A band-limited ground-truth signal: `mean + Σ tones + Σ events`, clipped
/// to a physical range if configured.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalModel {
    mean: f64,
    tones: Vec<Tone>,
    events: Vec<Event>,
    clip: Option<(f64, f64)>,
}

impl SignalModel {
    /// Builds a model from explicit parts.
    ///
    /// # Panics
    /// Panics if any tone has a non-positive frequency or negative amplitude,
    /// or the clip range is inverted.
    pub fn new(mean: f64, tones: Vec<Tone>, clip: Option<(f64, f64)>) -> Self {
        assert!(
            tones.iter().all(|t| t.freq > 0.0 && t.amp >= 0.0),
            "tones must have positive frequency and non-negative amplitude"
        );
        if let Some((lo, hi)) = clip {
            assert!(lo < hi, "clip range must be ordered");
        }
        SignalModel {
            mean,
            tones,
            events: Vec::new(),
            clip,
        }
    }

    /// Synthesizes a random band-limited signal.
    ///
    /// * `edge` — the highest tone frequency (the true band edge).
    /// * `mean`, `amp` — DC level and total AC amplitude budget.
    /// * `diurnal_weight` — fraction (`0..=1`) of the amplitude budget put
    ///   into a 24-hour component; the rest is spread over `n_tones` tones
    ///   log-spaced from `edge/1000` up to `edge` with ±50% amplitude jitter.
    ///
    /// The tone *at* the band edge receives 35% of the broadband budget, so
    /// the edge always carries a visible share of the energy: this is what
    /// makes the 99%-energy estimator land close to `edge`, and what keeps
    /// slow signals visible above measurement noise within short analysis
    /// windows.
    ///
    /// # Panics
    /// Panics if `edge` is not positive, `amp` is negative, or `n_tones == 0`.
    pub fn band_limited<R: Rng>(
        rng: &mut R,
        edge: Hertz,
        mean: f64,
        amp: f64,
        diurnal_weight: f64,
        n_tones: usize,
    ) -> SignalModel {
        assert!(edge.value() > 0.0, "band edge must be positive");
        assert!(amp >= 0.0, "amplitude must be non-negative");
        assert!(n_tones > 0, "need at least one tone");
        let diurnal_freq = 1.0 / 86_400.0;
        let mut tones = Vec::with_capacity(n_tones + 1);
        // The diurnal share of the budget only applies when a 24-hour tone
        // fits inside the band; otherwise the whole budget goes broadband
        // (deducting it anyway would silently shrink slow signals).
        let mut diurnal_amp = amp * diurnal_weight.clamp(0.0, 1.0);
        if diurnal_amp > 0.0 && diurnal_freq < edge.value() {
            tones.push(Tone {
                freq: diurnal_freq,
                amp: diurnal_amp,
                phase: rng.gen_range(0.0..2.0 * PI),
            });
        } else {
            diurnal_amp = 0.0;
        }
        let broadband_amp = amp - diurnal_amp;
        let edge_amp = broadband_amp * 0.35;
        let filler_budget = broadband_amp - edge_amp;
        let lo = edge.value() / 1000.0;
        let per_tone = if n_tones > 1 {
            filler_budget / (n_tones - 1) as f64
        } else {
            0.0
        };
        for i in 0..n_tones.saturating_sub(1) {
            // Log-spaced grid with jitter so tones never align across devices.
            let frac = (i as f64 + rng.gen_range(0.1..0.9)) / n_tones as f64;
            let freq = lo * (edge.value() / lo).powf(frac);
            tones.push(Tone {
                freq,
                amp: per_tone * rng.gen_range(0.5..1.5),
                phase: rng.gen_range(0.0..2.0 * PI),
            });
        }
        // The edge tone pins the true band edge exactly, with a dominant
        // share of the budget (see docs above).
        tones.push(Tone {
            freq: edge.value(),
            amp: if n_tones > 1 { edge_amp } else { broadband_amp },
            phase: rng.gen_range(0.0..2.0 * PI),
        });
        SignalModel::new(mean, tones, None)
    }

    /// Synthesizes a signal whose tones are log-spaced across `[lo, hi]`
    /// with near-equal amplitudes — no diurnal component, no edge dominance.
    ///
    /// This is the model for *under-sampled* devices: when `lo` sits near a
    /// poller's folding frequency and `hi` above it, most tones alias and
    /// the folded spectrum fills the measurable band — the "probably already
    /// aliased" signature the §3.2 estimator flags.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi`, `amp >= 0` and `n_tones > 0`.
    pub fn broadband_between<R: Rng>(
        rng: &mut R,
        lo: Hertz,
        hi: Hertz,
        mean: f64,
        amp: f64,
        n_tones: usize,
    ) -> SignalModel {
        assert!(lo.value() > 0.0 && lo.value() < hi.value(), "need 0 < lo < hi");
        assert!(amp >= 0.0, "amplitude must be non-negative");
        assert!(n_tones > 0, "need at least one tone");
        let per_tone = amp / n_tones as f64;
        let mut tones: Vec<Tone> = (0..n_tones)
            .map(|i| {
                let frac = (i as f64 + rng.gen_range(0.1..0.9)) / n_tones as f64;
                let freq = lo.value() * (hi.value() / lo.value()).powf(frac);
                Tone {
                    freq,
                    amp: per_tone * rng.gen_range(0.7..1.3),
                    phase: rng.gen_range(0.0..2.0 * PI),
                }
            })
            .collect();
        // Pin the top tone to the requested band edge.
        if let Some(last) = tones.last_mut() {
            last.freq = hi.value();
        }
        SignalModel::new(mean, tones, None)
    }

    /// Adds a clip range (applied after tones and events).
    pub fn with_clip(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "clip range must be ordered");
        self.clip = Some((lo, hi));
        self
    }

    /// Adds transient events to the model.
    pub fn with_events(mut self, events: Vec<Event>) -> Self {
        self.events = events;
        self
    }

    /// The DC level.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The tone set.
    pub fn tones(&self) -> &[Tone] {
        &self.tones
    }

    /// The configured events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The highest tone frequency — the true band edge of the *stationary*
    /// part of the signal. Zero if there are no tones.
    pub fn band_edge(&self) -> Hertz {
        Hertz(self.tones.iter().map(|t| t.freq).fold(0.0, f64::max))
    }

    /// The true Nyquist *sampling* rate: twice the band edge.
    pub fn nyquist_rate(&self) -> Hertz {
        self.band_edge().nyquist_rate()
    }

    /// Evaluates the signal at time `t` seconds.
    pub fn value_at(&self, t: f64) -> f64 {
        let mut v = self.mean;
        for tone in &self.tones {
            v += tone.value_at(t);
        }
        for e in &self.events {
            v += e.value_at(t);
        }
        if let Some((lo, hi)) = self.clip {
            v = v.clamp(lo, hi);
        }
        v
    }

    /// Samples the signal at `rate` for `duration`, starting at `start`.
    ///
    /// # Panics
    /// Panics if `rate` or `duration` is not positive.
    pub fn sample(&self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        assert!(rate.value() > 0.0, "rate must be positive");
        assert!(duration.value() > 0.0, "duration must be positive");
        let interval = rate.period();
        let n = (duration.value() * rate.value()).round().max(1.0) as usize;
        let values = (0..n)
            .map(|k| self.value_at(start.value() + k as f64 * interval.value()))
            .collect();
        RegularSeries::new(start, interval, values)
    }

    /// Total AC amplitude (sum of tone amplitudes) — an upper bound on the
    /// signal's deviation from its mean, ignoring events.
    pub fn total_amplitude(&self) -> f64 {
        self.tones.iter().map(|t| t.amp).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn band_edge_is_max_tone_freq() {
        let m = SignalModel::new(
            0.0,
            vec![
                Tone { freq: 0.1, amp: 1.0, phase: 0.0 },
                Tone { freq: 0.5, amp: 0.5, phase: 1.0 },
            ],
            None,
        );
        assert_eq!(m.band_edge(), Hertz(0.5));
        assert_eq!(m.nyquist_rate(), Hertz(1.0));
    }

    #[test]
    fn band_limited_pins_requested_edge() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 20);
        assert!((m.band_edge().value() - 0.01).abs() < 1e-15);
        assert!(m.tones().len() >= 20);
    }

    #[test]
    fn band_limited_respects_amplitude_budget() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.5, 25);
        // Jitter is ±50%, so total amplitude is within [0.5, 1.5]× budget
        // for the broadband part plus the exact diurnal share.
        let total = m.total_amplitude();
        assert!(total > 1.0 && total < 3.5, "total amplitude {total}");
    }

    #[test]
    fn band_limited_is_deterministic_per_seed() {
        let a = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 10);
        let b = SignalModel::band_limited(&mut rng(), Hertz(0.01), 10.0, 2.0, 0.3, 10);
        assert_eq!(a, b);
        assert_eq!(a.value_at(1234.5), b.value_at(1234.5));
    }

    #[test]
    fn value_at_is_mean_plus_tones() {
        let m = SignalModel::new(
            5.0,
            vec![Tone { freq: 1.0, amp: 2.0, phase: 0.0 }],
            None,
        );
        assert!((m.value_at(0.0) - 5.0).abs() < 1e-12); // sin(0)=0
        assert!((m.value_at(0.25) - 7.0).abs() < 1e-12); // sin(π/2)=1
    }

    #[test]
    fn clip_applies() {
        let m = SignalModel::new(
            0.0,
            vec![Tone { freq: 1.0, amp: 10.0, phase: 0.0 }],
            Some((-1.0, 1.0)),
        );
        assert_eq!(m.value_at(0.25), 1.0);
        assert_eq!(m.value_at(0.75), -1.0);
    }

    #[test]
    fn sample_produces_expected_grid() {
        let m = SignalModel::new(1.0, vec![], None);
        let s = m.sample(Seconds(100.0), Hertz(2.0), Seconds(5.0));
        assert_eq!(s.len(), 10);
        assert_eq!(s.start(), Seconds(100.0));
        assert_eq!(s.interval(), Seconds(0.5));
        assert!(s.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sample_matches_value_at() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.05), 3.0, 1.0, 0.0, 5);
        let s = m.sample(Seconds(7.0), Hertz(0.5), Seconds(20.0));
        for (k, &v) in s.values().iter().enumerate() {
            let t = 7.0 + k as f64 * 2.0;
            assert_eq!(v, m.value_at(t));
        }
    }

    #[test]
    fn diurnal_component_present_when_weighted() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 0.0, 1.0, 0.7, 10);
        let has_diurnal = m
            .tones()
            .iter()
            .any(|t| (t.freq - 1.0 / 86_400.0).abs() < 1e-12 && t.amp > 0.5);
        assert!(has_diurnal);
    }

    #[test]
    fn no_diurnal_when_zero_weight() {
        let m = SignalModel::band_limited(&mut rng(), Hertz(0.01), 0.0, 1.0, 0.0, 10);
        assert!(m
            .tones()
            .iter()
            .all(|t| (t.freq - 1.0 / 86_400.0).abs() > 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive frequency")]
    fn zero_freq_tone_panics() {
        SignalModel::new(0.0, vec![Tone { freq: 0.0, amp: 1.0, phase: 0.0 }], None);
    }
}
