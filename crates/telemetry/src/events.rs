//! Transient events: the non-stationarities of §4.2.
//!
//! The paper's adaptive sampler must cope with "sudden changes and phase
//! shifts" — link flaps, fail-stops, one-off spikes. Events are deterministic
//! additive components of the ground-truth signal so experiments can ask
//! *exactly when* the spectral content changed and check how fast the
//! controller reacted.

use serde::{Deserialize, Serialize};

/// What kind of transient happens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A short additive spike (half-sine envelope over the duration).
    Spike,
    /// A persistent step: the value jumps by `magnitude` at `start` and stays
    /// there for the duration.
    LevelShift,
    /// A link flap: a square-ish oscillation at `flap_freq` Hz for the
    /// duration — this is the event that *raises the local Nyquist rate*.
    LinkFlap {
        /// Oscillation frequency of the flapping (Hz).
        flap_freq: f64,
    },
    /// Fail-stop: the signal's contribution is replaced by `−magnitude`
    /// (e.g. a counter collapsing to zero) for the duration.
    FailStop,
}

/// A transient event active on `[start, start + duration)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Start time (seconds).
    pub start: f64,
    /// Duration (seconds).
    pub duration: f64,
    /// Magnitude in metric units.
    pub magnitude: f64,
}

impl Event {
    /// Creates an event.
    ///
    /// # Panics
    /// Panics if `duration` is not positive or `start`/`magnitude` are not
    /// finite.
    pub fn new(kind: EventKind, start: f64, duration: f64, magnitude: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        assert!(start.is_finite() && magnitude.is_finite(), "parameters must be finite");
        Event {
            kind,
            start,
            duration,
            magnitude,
        }
    }

    /// Whether the event is active at time `t`.
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start && t < self.start + self.duration
    }

    /// End time (`start + duration`).
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Additive contribution of the event at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        if !self.is_active(t) {
            return 0.0;
        }
        let phase = (t - self.start) / self.duration; // 0..1
        match self.kind {
            EventKind::Spike => self.magnitude * (std::f64::consts::PI * phase).sin(),
            EventKind::LevelShift => self.magnitude,
            EventKind::LinkFlap { flap_freq } => {
                let cycle = (t - self.start) * flap_freq;
                // Square-ish oscillation, softened to bound bandwidth:
                // fundamental + 1/3 of the 3rd harmonic.
                let w = 2.0 * std::f64::consts::PI * cycle;
                self.magnitude * (w.sin() + (3.0 * w).sin() / 3.0) * 0.75
            }
            EventKind::FailStop => -self.magnitude,
        }
    }

    /// The highest significant frequency the event injects (Hz) — what the
    /// local Nyquist rate rises to while the event is active.
    ///
    /// Spikes and steps are broadband in theory, but their energy
    /// concentrates below `~1/duration`; flaps concentrate at the (softened)
    /// third harmonic of the flap frequency.
    pub fn peak_frequency(&self) -> f64 {
        match self.kind {
            EventKind::Spike => 1.0 / self.duration,
            EventKind::LevelShift | EventKind::FailStop => 1.0 / self.duration,
            EventKind::LinkFlap { flap_freq } => 3.0 * flap_freq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_outside_window() {
        let e = Event::new(EventKind::LevelShift, 10.0, 5.0, 2.0);
        assert_eq!(e.value_at(9.99), 0.0);
        assert_eq!(e.value_at(15.0), 0.0);
        assert!(e.is_active(10.0));
        assert!(!e.is_active(15.0));
        assert_eq!(e.end(), 15.0);
    }

    #[test]
    fn level_shift_is_constant_inside() {
        let e = Event::new(EventKind::LevelShift, 0.0, 10.0, 3.0);
        assert_eq!(e.value_at(0.0), 3.0);
        assert_eq!(e.value_at(9.9), 3.0);
    }

    #[test]
    fn spike_peaks_mid_window() {
        let e = Event::new(EventKind::Spike, 0.0, 10.0, 4.0);
        assert!(e.value_at(0.0).abs() < 1e-12);
        assert!((e.value_at(5.0) - 4.0).abs() < 1e-12);
        assert!(e.value_at(5.0) > e.value_at(1.0));
    }

    #[test]
    fn fail_stop_is_negative_magnitude() {
        let e = Event::new(EventKind::FailStop, 0.0, 5.0, 7.0);
        assert_eq!(e.value_at(2.0), -7.0);
    }

    #[test]
    fn link_flap_oscillates() {
        let e = Event::new(EventKind::LinkFlap { flap_freq: 1.0 }, 0.0, 10.0, 1.0);
        // Quarter cycle: sin(π/2) + sin(3π/2)/3 = 1 − 1/3 = 2/3, ×0.75 = 0.5.
        assert!((e.value_at(0.25) - 0.5).abs() < 1e-12);
        // Antisymmetric half cycle later.
        assert!((e.value_at(0.75) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn peak_frequencies() {
        let flap = Event::new(EventKind::LinkFlap { flap_freq: 0.2 }, 0.0, 10.0, 1.0);
        assert!((flap.peak_frequency() - 0.6).abs() < 1e-12);
        let spike = Event::new(EventKind::Spike, 0.0, 4.0, 1.0);
        assert!((spike.peak_frequency() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_panics() {
        Event::new(EventKind::Spike, 0.0, 0.0, 1.0);
    }
}
