//! The 14 metric kinds of the paper's §3.2 case study (Figure 5's x-axis).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monitored metric kind.
///
/// The variants are exactly the metrics the paper's production study covers
/// (Figures 1, 4 and 5): interface counters, resource gauges, probe-derived
/// path quality and environmental sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// 5th-percentile CPU utilization (%).
    CpuUtil5pct,
    /// Frame-check-sequence error count per poll.
    FcsErrors,
    /// In-bound packet discards per poll.
    InboundDiscards,
    /// Out-bound packet discards per poll.
    OutboundDiscards,
    /// Link utilization (fraction of capacity).
    LinkUtil,
    /// Number of lossy paths seen by the prober.
    LossyPaths,
    /// Memory usage (GB).
    MemoryUsage,
    /// Multicast bytes per poll.
    MulticastBytes,
    /// Multicast drops per poll.
    MulticastDrops,
    /// Peak egress bandwidth (Mbps).
    PeakEgressBw,
    /// Peak ingress bandwidth (Mbps).
    PeakIngressBw,
    /// Device temperature (°C).
    Temperature,
    /// Unicast bytes per poll.
    UnicastBytes,
    /// Unicast drops per poll.
    UnicastDrops,
}

impl MetricKind {
    /// All 14 metric kinds, in a stable order.
    pub const ALL: [MetricKind; 14] = [
        MetricKind::CpuUtil5pct,
        MetricKind::FcsErrors,
        MetricKind::InboundDiscards,
        MetricKind::OutboundDiscards,
        MetricKind::LinkUtil,
        MetricKind::LossyPaths,
        MetricKind::MemoryUsage,
        MetricKind::MulticastBytes,
        MetricKind::MulticastDrops,
        MetricKind::PeakEgressBw,
        MetricKind::PeakIngressBw,
        MetricKind::Temperature,
        MetricKind::UnicastBytes,
        MetricKind::UnicastDrops,
    ];

    /// Short human-readable name (matches the paper's figure labels).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::CpuUtil5pct => "5-pct CPU util",
            MetricKind::FcsErrors => "FCS errors",
            MetricKind::InboundDiscards => "In-bound discards",
            MetricKind::OutboundDiscards => "Out-bound discards",
            MetricKind::LinkUtil => "Link util",
            MetricKind::LossyPaths => "Lossy paths",
            MetricKind::MemoryUsage => "Memory usage",
            MetricKind::MulticastBytes => "Multicast bytes",
            MetricKind::MulticastDrops => "Multicast drops",
            MetricKind::PeakEgressBw => "Peak egress BW",
            MetricKind::PeakIngressBw => "Peak ingress BW",
            MetricKind::Temperature => "Temperature",
            MetricKind::UnicastBytes => "Unicast bytes",
            MetricKind::UnicastDrops => "Unicast drops",
        }
    }

    /// Lowercase hyphenated identifier (the [`MetricKind::name`] with every
    /// non-alphanumeric character mapped to `-`). Static, so building device
    /// names does not re-derive the slug per device; `slug_matches_name`
    /// pins the correspondence.
    pub fn slug(self) -> &'static str {
        match self {
            MetricKind::CpuUtil5pct => "5-pct-cpu-util",
            MetricKind::FcsErrors => "fcs-errors",
            MetricKind::InboundDiscards => "in-bound-discards",
            MetricKind::OutboundDiscards => "out-bound-discards",
            MetricKind::LinkUtil => "link-util",
            MetricKind::LossyPaths => "lossy-paths",
            MetricKind::MemoryUsage => "memory-usage",
            MetricKind::MulticastBytes => "multicast-bytes",
            MetricKind::MulticastDrops => "multicast-drops",
            MetricKind::PeakEgressBw => "peak-egress-bw",
            MetricKind::PeakIngressBw => "peak-ingress-bw",
            MetricKind::Temperature => "temperature",
            MetricKind::UnicastBytes => "unicast-bytes",
            MetricKind::UnicastDrops => "unicast-drops",
        }
    }

    /// Measurement unit, for display.
    pub fn unit(self) -> &'static str {
        match self {
            MetricKind::CpuUtil5pct => "%",
            MetricKind::FcsErrors
            | MetricKind::InboundDiscards
            | MetricKind::OutboundDiscards
            | MetricKind::MulticastDrops
            | MetricKind::UnicastDrops => "count",
            MetricKind::LinkUtil => "fraction",
            MetricKind::LossyPaths => "paths",
            MetricKind::MemoryUsage => "GB",
            MetricKind::MulticastBytes | MetricKind::UnicastBytes => "bytes",
            MetricKind::PeakEgressBw | MetricKind::PeakIngressBw => "Mbps",
            MetricKind::Temperature => "°C",
        }
    }

    /// Stable index into [`MetricKind::ALL`].
    pub fn index(self) -> usize {
        MetricKind::ALL
            .iter()
            .position(|&m| m == self)
            .expect("all variants are in ALL")
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fourteen_distinct_metrics() {
        assert_eq!(MetricKind::ALL.len(), 14);
        let names: HashSet<&str> = MetricKind::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn index_roundtrip() {
        for (i, m) in MetricKind::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(MetricKind::Temperature.to_string(), "Temperature");
        assert_eq!(MetricKind::CpuUtil5pct.to_string(), "5-pct CPU util");
    }

    #[test]
    fn slug_matches_name() {
        for m in MetricKind::ALL {
            let derived: String = m
                .name()
                .to_ascii_lowercase()
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect();
            assert_eq!(m.slug(), derived, "{m}");
        }
    }

    #[test]
    fn every_metric_has_a_unit() {
        for m in MetricKind::ALL {
            assert!(!m.unit().is_empty());
        }
    }
}
