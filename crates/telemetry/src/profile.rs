//! Per-metric spectral and operational profiles.
//!
//! Each [`MetricProfile`] pins down (a) how operators poll the metric today —
//! the "ad-hoc" production rate the paper critiques — and (b) the band of
//! true spectral edges devices of this metric draw from. The numbers are
//! chosen so the synthetic fleet reproduces the *shapes* of the paper's
//! Figures 1/4/5: Nyquist rates spread over several decades within each
//! metric, most pairs over-sampled (89% in the paper), a minority aliased
//! (11%), and ~20% of pairs reducible by ≥1000×.

use crate::metric::MetricKind;
use serde::{Deserialize, Serialize};
use sweetspot_timeseries::{Hertz, Seconds};

/// Operational + spectral profile of one metric kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricProfile {
    /// Which metric this profile describes.
    pub kind: MetricKind,
    /// Production polling interval (operator-chosen, ad hoc).
    pub poll_interval: Seconds,
    /// Lowest true band edge a device of this metric may have (Hz).
    pub edge_lo: Hertz,
    /// Highest *well-sampled* band edge (Hz); kept below half the production
    /// rate so non-aliased devices are genuinely recoverable.
    pub edge_hi: Hertz,
    /// Fraction of devices whose band edge exceeds the production folding
    /// frequency — i.e. devices that are *under-sampled today* (paper: ~11%
    /// overall).
    pub undersampled_fraction: f64,
    /// Quantization step of the measurement readout (§4.3).
    pub quant_step: f64,
    /// Typical value range `(lo, hi)` across the fleet.
    pub base_range: (f64, f64),
    /// Relative weight of the diurnal (24 h) component in the signal's AC
    /// energy, `0..=1`. Temperature and traffic metrics are strongly diurnal.
    pub diurnal_weight: f64,
    /// White measurement-noise standard deviation, as a fraction of the
    /// signal's AC amplitude. Zero for counter metrics — counts are exact;
    /// their only readout distortion is quantization.
    pub relative_noise: f64,
    /// Fraction of devices whose signal is *quiescent*: error/drop counters
    /// sit at zero essentially all day in production. Quiet traces quantize
    /// to a constant, the estimator floors them at one FFT bin, and they
    /// produce the huge (≥1000×) reduction ratios of the paper's Figure 4
    /// tails.
    pub quiet_fraction: f64,
}

impl MetricProfile {
    /// The built-in profile for a metric kind (table in module docs).
    pub fn for_kind(kind: MetricKind) -> MetricProfile {
        use MetricKind::*;
        // Columns: poll_s, edge_lo, edge_hi, undersampled, quant, range,
        //          diurnal, noise, quiet
        let (poll_s, edge_lo, edge_hi, uf, q, range, diurnal, noise, quiet) = match kind {
            Temperature => (300.0, 4e-7, 1.5e-3, 0.05, 0.5, (25.0, 75.0), 0.6, 0.010, 0.0),
            CpuUtil5pct => (60.0, 1e-6, 2e-3, 0.14, 1.0, (5.0, 95.0), 0.5, 0.010, 0.0),
            FcsErrors => (30.0, 2e-6, 4e-3, 0.25, 1.0, (0.0, 400.0), 0.0, 0.0, 0.60),
            InboundDiscards => (30.0, 2e-6, 2e-3, 0.22, 1.0, (0.0, 800.0), 0.1, 0.0, 0.55),
            OutboundDiscards => (30.0, 2e-6, 2e-3, 0.22, 1.0, (0.0, 800.0), 0.1, 0.0, 0.55),
            LinkUtil => (30.0, 2e-6, 3e-3, 0.14, 1e-3, (0.05, 0.95), 0.6, 0.008, 0.0),
            LossyPaths => (60.0, 1e-6, 1e-3, 0.10, 1.0, (0.0, 80.0), 0.2, 0.0, 0.30),
            MemoryUsage => (300.0, 4e-7, 5e-4, 0.05, 0.01, (4.0, 60.0), 0.3, 0.005, 0.0),
            MulticastBytes => (30.0, 2e-6, 2e-3, 0.12, 1.0, (0.0, 1e6), 0.4, 0.0, 0.25),
            MulticastDrops => (30.0, 2e-6, 2e-3, 0.25, 1.0, (0.0, 500.0), 0.1, 0.0, 0.60),
            PeakEgressBw => (60.0, 1e-6, 1.5e-3, 0.12, 1.0, (100.0, 9000.0), 0.6, 0.010, 0.0),
            PeakIngressBw => (60.0, 1e-6, 1.5e-3, 0.12, 1.0, (100.0, 9000.0), 0.6, 0.010, 0.0),
            UnicastBytes => (30.0, 2e-6, 2e-3, 0.10, 1.0, (0.0, 1e7), 0.5, 0.0, 0.10),
            UnicastDrops => (30.0, 2e-6, 2e-3, 0.22, 1.0, (0.0, 600.0), 0.1, 0.0, 0.50),
        };
        MetricProfile {
            kind,
            poll_interval: Seconds(poll_s),
            edge_lo: Hertz(edge_lo),
            edge_hi: Hertz(edge_hi),
            undersampled_fraction: uf,
            quant_step: q,
            base_range: range,
            diurnal_weight: diurnal,
            relative_noise: noise,
            quiet_fraction: quiet,
        }
    }

    /// Profiles for all 14 metrics.
    pub fn all() -> Vec<MetricProfile> {
        MetricKind::ALL.iter().map(|&k| Self::for_kind(k)).collect()
    }

    /// The production sampling rate (`1 / poll_interval`).
    pub fn production_rate(&self) -> Hertz {
        self.poll_interval.as_rate()
    }

    /// The production folding frequency (`production_rate / 2`): band edges
    /// above this alias under today's polling.
    pub fn folding_frequency(&self) -> Hertz {
        self.production_rate().folding_frequency()
    }

    /// Mid-point of the metric's value range.
    pub fn mid_value(&self) -> f64 {
        (self.base_range.0 + self.base_range.1) / 2.0
    }

    /// Half-width of the metric's value range.
    pub fn half_range(&self) -> f64 {
        (self.base_range.1 - self.base_range.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_exist_for_all_metrics() {
        let all = MetricProfile::all();
        assert_eq!(all.len(), 14);
        for p in &all {
            assert_eq!(p, &MetricProfile::for_kind(p.kind));
        }
    }

    #[test]
    fn profile_invariants() {
        for p in MetricProfile::all() {
            assert!(p.poll_interval.value() > 0.0, "{}", p.kind);
            assert!(p.edge_lo.value() > 0.0, "{}", p.kind);
            assert!(p.edge_lo.value() < p.edge_hi.value(), "{}", p.kind);
            assert!(
                (0.0..1.0).contains(&p.undersampled_fraction),
                "{}",
                p.kind
            );
            assert!(p.quant_step > 0.0, "{}", p.kind);
            assert!(p.base_range.0 < p.base_range.1, "{}", p.kind);
            assert!((0.0..=1.0).contains(&p.diurnal_weight), "{}", p.kind);
            assert!(p.relative_noise >= 0.0, "{}", p.kind);
            assert!((0.0..1.0).contains(&p.quiet_fraction), "{}", p.kind);
        }
    }

    #[test]
    fn counters_are_noise_free_and_quiet_prone() {
        use MetricKind::*;
        for kind in [FcsErrors, InboundDiscards, MulticastDrops, UnicastDrops] {
            let p = MetricProfile::for_kind(kind);
            assert_eq!(p.relative_noise, 0.0, "{kind}: counts are exact");
            assert!(p.quiet_fraction >= 0.5, "{kind}: drop counters are mostly silent");
        }
        // Gauges are never fully quiet.
        for kind in [Temperature, CpuUtil5pct, LinkUtil, MemoryUsage] {
            assert_eq!(MetricProfile::for_kind(kind).quiet_fraction, 0.0, "{kind}");
        }
    }

    #[test]
    fn well_sampled_edges_are_recoverable_at_production_rate() {
        // The non-aliased edge band must sit strictly below the production
        // folding frequency, otherwise "well-sampled" devices would alias.
        for p in MetricProfile::all() {
            assert!(
                p.edge_hi.value() < p.folding_frequency().value(),
                "{}: edge_hi {} >= folding {}",
                p.kind,
                p.edge_hi,
                p.folding_frequency()
            );
        }
    }

    #[test]
    fn oversampling_ratios_span_three_decades() {
        // The paper's Figure 4 shows reduction ratios from ~1× to >1000×.
        let mut max_ratio: f64 = 0.0;
        for p in MetricProfile::all() {
            let ratio = p.production_rate().value() / (2.0 * p.edge_lo.value());
            max_ratio = max_ratio.max(ratio);
        }
        assert!(max_ratio > 1000.0, "max possible ratio {max_ratio}");
    }

    #[test]
    fn fleet_average_undersampling_near_eleven_percent() {
        // Quiet devices are never under-sampled (their signal is flat), so
        // the effective fleet-wide fraction is uf·(1−quiet), averaged.
        let profiles = MetricProfile::all();
        let mean: f64 = profiles
            .iter()
            .map(|p| p.undersampled_fraction * (1.0 - p.quiet_fraction))
            .sum::<f64>()
            / profiles.len() as f64;
        assert!((0.07..0.14).contains(&mean), "mean undersampled {mean}");
    }

    #[test]
    fn temperature_matches_paper_band() {
        // Paper §3.2: temperature Nyquist rates range 7.99e-7 … 0.003 Hz.
        let p = MetricProfile::for_kind(MetricKind::Temperature);
        assert!((2.0 * p.edge_lo.value() - 8e-7).abs() < 2e-7);
        assert!((2.0 * p.edge_hi.value() - 3e-3).abs() < 2e-4);
    }
}
