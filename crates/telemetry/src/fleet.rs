//! Fleet assembly: the paper's 1613 metric-device pairs.
//!
//! §3.2: *"In total, we studied 1613 metric and device pairs (14 distinct
//! metrics)."* [`Fleet::paper_scale`] reproduces that population exactly;
//! [`FleetConfig`] lets tests build smaller fleets.

use crate::generator::DeviceTrace;
use crate::metric::MetricKind;
use crate::profile::MetricProfile;
use sweetspot_timeseries::Seconds;

/// The paper's total number of metric-device pairs.
pub const PAPER_PAIR_COUNT: usize = 1613;

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Devices per metric (all 14 metrics get this many).
    pub devices_per_metric: usize,
    /// Duration each production trace covers when analyzed ("each datapoint
    /// is one day's worth of data", §3.2).
    pub trace_duration: Seconds,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0xC0FFEE,
            devices_per_metric: 8,
            trace_duration: Seconds::from_days(1.0),
        }
    }
}

impl FleetConfig {
    /// The fleet's work list — `(profile, device_idx)` pairs in
    /// [`Fleet::build`] order (all devices of metric 0, then metric 1, …).
    /// Engines that synthesize devices inside their workers iterate this
    /// instead of materializing the whole [`Fleet`].
    pub fn work_list(&self) -> Vec<(MetricProfile, usize)> {
        standard_work(self.devices_per_metric)
    }
}

/// `(profile, device_idx)` pairs for `devices_per_metric` devices of each of
/// the 14 metrics, in [`Fleet::build`] order.
fn standard_work(devices_per_metric: usize) -> Vec<(MetricProfile, usize)> {
    MetricProfile::all()
        .into_iter()
        .flat_map(|profile| (0..devices_per_metric).map(move |d| (profile, d)))
        .collect()
}

/// The paper's §3.2 population in [`Fleet::paper_scale`] order: 115 devices
/// for each of the 14 metrics, plus one extra device for the first three
/// metrics appended at the end (`14 × 115 + 3 = 1613`).
pub fn paper_scale_work() -> Vec<(MetricProfile, usize)> {
    let mut work = standard_work(115);
    for (i, profile) in MetricProfile::all().into_iter().enumerate().take(3) {
        work.push((profile, 115 + i));
    }
    debug_assert_eq!(work.len(), PAPER_PAIR_COUNT);
    work
}

/// A deterministic work list of exactly `pairs` metric-device pairs, for
/// fleets beyond the paper's 1613: the 14-metric population is tiled
/// round-robin (pair `i` is metric `i % 14` at device index `i / 14`), so
///
/// * any prefix stays metric-balanced — `scaled_work(n)` is a prefix of
///   `scaled_work(m)` for `n ≤ m`, and growing a fleet never re-labels
///   existing devices;
/// * every pair draws a distinct per-device seed downstream
///   ([`DeviceTrace::synthesize`] mixes the device index into its RNG), so a
///   10⁵-pair fleet holds 10⁵ *different* devices, not copies.
///
/// At `pairs == 1613` this is the same population as [`paper_scale_work`]
/// up to ordering and the three extras' device indices.
pub fn scaled_work(pairs: usize) -> Vec<(MetricProfile, usize)> {
    let profiles = MetricProfile::all();
    let metrics = profiles.len();
    (0..pairs)
        .map(|i| (profiles[i % metrics], i / metrics))
        .collect()
}

/// A population of synthetic `(metric, device)` traces.
#[derive(Debug, Clone)]
pub struct Fleet {
    traces: Vec<DeviceTrace>,
    config: FleetConfig,
}

impl Fleet {
    /// Builds a fleet with `config.devices_per_metric` devices for each of
    /// the 14 metrics.
    pub fn build(config: FleetConfig) -> Fleet {
        let mut traces = Vec::with_capacity(14 * config.devices_per_metric);
        for profile in MetricProfile::all() {
            for device_idx in 0..config.devices_per_metric {
                traces.push(DeviceTrace::synthesize(profile, device_idx, config.seed));
            }
        }
        Fleet { traces, config }
    }

    /// Builds the paper-scale fleet: exactly [`PAPER_PAIR_COUNT`] pairs
    /// (115 devices per metric, plus one extra device for the first three
    /// metrics: `14 × 115 + 3 = 1613`).
    pub fn paper_scale(seed: u64) -> Fleet {
        let config = FleetConfig {
            seed,
            devices_per_metric: 115,
            trace_duration: Seconds::from_days(1.0),
        };
        let mut fleet = Fleet::build(config);
        for (i, profile) in MetricProfile::all().iter().enumerate().take(3) {
            fleet
                .traces
                .push(DeviceTrace::synthesize(*profile, 115 + i, seed));
        }
        debug_assert_eq!(fleet.traces.len(), PAPER_PAIR_COUNT);
        fleet
    }

    /// All traces.
    pub fn traces(&self) -> &[DeviceTrace] {
        &self.traces
    }

    /// Traces of one metric kind.
    pub fn traces_for(&self, kind: MetricKind) -> impl Iterator<Item = &DeviceTrace> {
        self.traces
            .iter()
            .filter(move |t| t.profile().kind == kind)
    }

    /// Number of metric-device pairs.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` if the fleet holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The construction parameters.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Fraction of pairs that are under-sampled at production rates (ground
    /// truth, not estimated). The paper measures ~11%.
    pub fn true_undersampled_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces
            .iter()
            .filter(|t| t.is_undersampled_at_production_rate())
            .count() as f64
            / self.traces.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_respects_config() {
        let fleet = Fleet::build(FleetConfig {
            seed: 1,
            devices_per_metric: 3,
            trace_duration: Seconds::from_hours(6.0),
        });
        assert_eq!(fleet.len(), 14 * 3);
        for kind in MetricKind::ALL {
            assert_eq!(fleet.traces_for(kind).count(), 3);
        }
    }

    #[test]
    fn paper_scale_is_1613_pairs() {
        let fleet = Fleet::paper_scale(0xFEED);
        assert_eq!(fleet.len(), PAPER_PAIR_COUNT);
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = Fleet::build(FleetConfig::default());
        let b = Fleet::build(FleetConfig::default());
        for (x, y) in a.traces().iter().zip(b.traces()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_fleets() {
        let a = Fleet::build(FleetConfig {
            seed: 1,
            ..FleetConfig::default()
        });
        let b = Fleet::build(FleetConfig {
            seed: 2,
            ..FleetConfig::default()
        });
        assert!(a
            .traces()
            .iter()
            .zip(b.traces())
            .any(|(x, y)| x.model() != y.model()));
    }

    #[test]
    fn device_names_unique_across_fleet() {
        let fleet = Fleet::build(FleetConfig {
            seed: 3,
            devices_per_metric: 5,
            trace_duration: Seconds::from_days(1.0),
        });
        let mut names: Vec<String> = fleet
            .traces()
            .iter()
            .map(|t| t.meta().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), fleet.len());
    }

    #[test]
    fn work_lists_mirror_fleet_construction() {
        let config = FleetConfig {
            seed: 17,
            devices_per_metric: 4,
            trace_duration: Seconds::from_days(1.0),
        };
        let fleet = Fleet::build(config);
        let work = config.work_list();
        assert_eq!(work.len(), fleet.len());
        for (&(profile, idx), trace) in work.iter().zip(fleet.traces()) {
            assert_eq!(
                &DeviceTrace::synthesize(profile, idx, config.seed),
                trace,
                "work list diverges from Fleet::build at {profile:?}/{idx}"
            );
        }
        assert_eq!(paper_scale_work().len(), PAPER_PAIR_COUNT);
    }

    #[test]
    fn scaled_work_is_balanced_and_prefix_stable() {
        let work = scaled_work(100);
        assert_eq!(work.len(), 100);
        // Balanced: each of the 14 metrics appears ⌊100/14⌋ or ⌈100/14⌉ times.
        for kind in MetricKind::ALL {
            let count = work.iter().filter(|(p, _)| p.kind == kind).count();
            assert!((7..=8).contains(&count), "{kind:?}: {count}");
        }
        // Prefix stability: growing the fleet never re-labels a device.
        let bigger = scaled_work(250);
        assert_eq!(&bigger[..100], &work[..]);
        // Device indices are distinct per metric (distinct seeds downstream).
        let mut seen: Vec<(usize, usize)> = work
            .iter()
            .map(|(p, d)| (p.kind.index(), *d))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), work.len());
    }

    #[test]
    fn scaled_work_at_paper_count_matches_paper_population() {
        let scaled = scaled_work(PAPER_PAIR_COUNT);
        assert_eq!(scaled.len(), PAPER_PAIR_COUNT);
        for kind in MetricKind::ALL {
            let scaled_count = scaled.iter().filter(|(p, _)| p.kind == kind).count();
            let paper_count = paper_scale_work()
                .iter()
                .filter(|(p, _)| p.kind == kind)
                .count();
            assert_eq!(scaled_count, paper_count, "{kind:?}");
        }
    }

    #[test]
    fn undersampled_fraction_near_profile_average() {
        // Large enough fleet for the binomial to concentrate.
        let fleet = Fleet::build(FleetConfig {
            seed: 11,
            devices_per_metric: 60,
            trace_duration: Seconds::from_days(1.0),
        });
        let frac = fleet.true_undersampled_fraction();
        assert!((0.06..0.18).contains(&frac), "undersampled fraction {frac}");
    }
}
