//! Simulated devices: the boundary between ground truth and measurement.
//!
//! A [`SimDevice`] owns a synthetic [`DeviceTrace`] and exposes two views of
//! it: the *measured* view a poller sees (through the impairment chain) and
//! the *ground-truth* view quality evaluation compares against. It also
//! adapts the device to the [`SignalSource`] trait so the §4.2 adaptive
//! controller can drive it directly.

use sweetspot_core::source::SignalSource;
use sweetspot_telemetry::{DeviceTrace, ToneBank};
use sweetspot_timeseries::clean::{clean_slices_into, CleanConfig, CleanScratch};
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, IrregularSeries, RegularSeries, Seconds};

/// Reusable working storage for the polling chain: the oscillator bank, the
/// ground-truth grid, the measured `(time, value)` buffers, and the cleaning
/// scratch. One per *worker* (see `poller::EpochScratch`) — the bank and
/// every buffer are pure scratch, so lending the same instance to each
/// member in turn is sample-for-sample identical to per-member copies, and
/// steady-state polling — synthesis, impairments, pre-cleaning — stays
/// allocation-free.
#[derive(Debug, Default)]
pub struct PollScratch {
    /// Oscillator-bank scratch for ground-truth synthesis.
    bank: ToneBank,
    /// Ground-truth sample grid (oscillator-bank output).
    truth: Vec<f64>,
    /// Measured timestamps surviving the impairment chain.
    times: Vec<Seconds>,
    /// Measured values (parallel to `times`).
    values: Vec<f64>,
    /// Re-gridding scratch; also holds the lent output buffer.
    clean: CleanScratch,
}

impl PollScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands a spare value buffer to the next [`SimDevice::poll_clean_into`]
    /// call, which moves it into the returned series' storage.
    pub fn lend(&mut self, buf: Vec<f64>) {
        self.clean.lend(buf);
    }

    /// Heap bytes currently resident in this scratch (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.bank.resident_bytes()
            + self.truth.capacity() * std::mem::size_of::<f64>()
            + self.times.capacity() * std::mem::size_of::<Seconds>()
            + self.values.capacity() * std::mem::size_of::<f64>()
            + self.clean.resident_bytes()
    }
}

/// A device under monitoring.
///
/// Holds only durable state — the synthetic trace and the RNG stream
/// counter. All working storage lives in a caller-provided [`PollScratch`]
/// so a fleet of 10⁵ devices shares a handful of worker scratches instead
/// of carrying 10⁵ oscillator grids.
#[derive(Debug, Clone)]
pub struct SimDevice {
    trace: DeviceTrace,
    /// Stream counter so successive polls see fresh measurement noise.
    next_stream: u64,
}

impl SimDevice {
    /// Wraps a synthetic device trace.
    pub fn new(trace: DeviceTrace) -> Self {
        SimDevice {
            trace,
            next_stream: 1,
        }
    }

    /// Device identity.
    pub fn meta(&self) -> &TraceMeta {
        self.trace.meta()
    }

    /// The underlying synthetic trace (profiles, ground truth, impairments).
    pub fn trace(&self) -> &DeviceTrace {
        &self.trace
    }

    /// Simulates a device reboot: the RNG stream counter rewinds to its
    /// initial value, so the device replays its post-boot measurement-noise
    /// sequence — fresh state, deterministically. The trace (identity, model,
    /// impairments) survives; only volatile state resets.
    pub fn reboot(&mut self) {
        self.next_stream = 1;
    }

    /// Exchanges the ground-truth model with `alt` in place (regime switch;
    /// see [`DeviceTrace::swap_model`]).
    pub fn swap_model(&mut self, alt: &mut sweetspot_telemetry::SignalModel) {
        self.trace.swap_model(alt);
    }

    /// Durable heap bytes owned by this device (the trace's identity strings
    /// and signal model — no working buffers).
    pub fn heap_bytes(&self) -> usize {
        self.trace.heap_bytes()
    }

    /// Polls the device over `[start, start+duration)` at `rate` through the
    /// measurement chain; returns what the collector would record.
    pub fn poll(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> IrregularSeries {
        let mut scratch = PollScratch::new();
        self.poll_into(start, rate, duration, &mut scratch);
        IrregularSeries::from_recycled(scratch.times, scratch.values)
    }

    /// [`SimDevice::poll`] into recycled buffers: the measured samples land
    /// in `scratch.times`/`scratch.values` (cleared, then filled). Identical
    /// samples and RNG stream; zero steady-state heap allocations.
    pub fn poll_into(
        &mut self,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        scratch: &mut PollScratch,
    ) {
        let stream = self.next_stream;
        self.next_stream += 1;
        // Ground truth over the requested window, streamed through the
        // oscillator bank (which handles arbitrary window starts).
        let PollScratch {
            bank,
            truth,
            times,
            values,
            ..
        } = scratch;
        self.trace
            .model()
            .sample_into(bank, start, rate, duration, truth);
        let mut rng = stream_rng(&self.trace, stream);
        self.trace
            .impairments()
            .apply_grid_into(&mut rng, start, rate.period(), truth, times, values);
    }

    /// Polls and pre-cleans (the §3.2 pipeline): re-grids onto the nominal
    /// interval. Returns `None` if too few samples survived.
    pub fn poll_clean(
        &mut self,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
    ) -> Option<RegularSeries> {
        self.poll_clean_into(start, rate, duration, &mut PollScratch::new())
    }

    /// [`SimDevice::poll_clean`] through caller-owned scratch: the returned
    /// series' value buffer comes from the scratch's lent storage (hand a
    /// spare back with [`PollScratch::lend`]), so the steady-state
    /// poll-and-clean loop performs no heap allocations.
    pub fn poll_clean_into(
        &mut self,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        scratch: &mut PollScratch,
    ) -> Option<RegularSeries> {
        self.poll_into(start, rate, duration, scratch);
        let PollScratch {
            times,
            values,
            clean,
            ..
        } = scratch;
        clean_slices_into(
            times,
            values,
            CleanConfig {
                interval: Some(rate.period()),
                outlier_mads: None,
            },
            clean,
        )
        .ok()
    }

    /// Pristine ground truth over a window (for quality evaluation only —
    /// not available to any poller).
    pub fn ground_truth(&self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        let mut bank = ToneBank::new();
        let mut values = Vec::new();
        self.trace
            .model()
            .sample_into(&mut bank, start, rate, duration, &mut values);
        RegularSeries::new(start, rate.period(), values)
    }

    /// [`SimDevice::ground_truth`] into a recycled value buffer through a
    /// caller-owned oscillator bank (the bank is pure scratch — output is
    /// identical to [`SimDevice::ground_truth`]). The cold fallback of the
    /// zero-allocation polling path.
    pub fn ground_truth_recycled(
        &self,
        bank: &mut ToneBank,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        mut buf: Vec<f64>,
    ) -> RegularSeries {
        self.trace
            .model()
            .sample_into(bank, start, rate, duration, &mut buf);
        RegularSeries::new(start, rate.period(), buf)
    }
}

fn stream_rng(trace: &DeviceTrace, stream: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // Derive a per-poll seed from the device identity and stream counter.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in trace.meta().device.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
}

/// [`SignalSource`] adapter: lets the §4.2 adaptive controller poll a
/// [`SimDevice`] through the full measurement chain, with pre-cleaning.
pub struct DeviceSource<'a>(pub &'a mut SimDevice);

impl SignalSource for DeviceSource<'_> {
    fn sample(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        match self.0.poll_clean(start, rate, duration) {
            Some(series) => series,
            // Degenerate window (everything dropped): fall back to ground
            // truth re-polled once more; in practice drop probability is
            // 0.2% so this path is cold.
            None => self.0.ground_truth(start, rate, duration),
        }
    }
}

/// [`DeviceSource`] with per-member scratch: the zero-allocation polling
/// path a [`FleetMember`](crate::poller::FleetMember) runs its lockstep
/// epochs through. Output is identical to [`DeviceSource`] sample for
/// sample — only the storage strategy differs.
pub struct ScratchSource<'a> {
    /// The device being polled.
    pub device: &'a mut SimDevice,
    /// The member's persistent polling scratch.
    pub scratch: &'a mut PollScratch,
}

impl SignalSource for ScratchSource<'_> {
    fn sample(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        self.sample_recycled(start, rate, duration, Vec::new())
    }

    fn sample_recycled(
        &mut self,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        recycled: Vec<f64>,
    ) -> RegularSeries {
        self.scratch.lend(recycled);
        match self.device.poll_clean_into(start, rate, duration, self.scratch) {
            Some(series) => series,
            // Same cold fallback as `DeviceSource`, reusing the lent buffer.
            None => {
                let buf = self.scratch.clean.take_lent();
                self.device
                    .ground_truth_recycled(&mut self.scratch.bank, start, rate, duration, buf)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::{MetricKind, MetricProfile};

    fn device() -> SimDevice {
        SimDevice::new(DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            0,
            42,
        ))
    }

    #[test]
    fn poll_returns_measured_samples() {
        let mut d = device();
        let out = d.poll(Seconds(1000.0), Hertz(1.0 / 300.0), Seconds::from_hours(4.0));
        assert!(out.len() >= 45 && out.len() <= 48, "{}", out.len());
        // Quantized to the temperature sensor's 0.5-unit step.
        for &v in out.values() {
            assert!((v * 2.0 - (v * 2.0).round()).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn successive_polls_have_fresh_noise() {
        let mut d = device();
        let a = d.poll(Seconds::ZERO, Hertz(1.0 / 300.0), Seconds::from_hours(2.0));
        let b = d.poll(Seconds::ZERO, Hertz(1.0 / 300.0), Seconds::from_hours(2.0));
        assert_ne!(a, b, "stream counter must decorrelate polls");
    }

    #[test]
    fn ground_truth_is_deterministic_and_clean() {
        let d = device();
        let a = d.ground_truth(Seconds(500.0), Hertz(0.01), Seconds(1000.0));
        let b = d.ground_truth(Seconds(500.0), Hertz(0.01), Seconds(1000.0));
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.start(), Seconds(500.0));
    }

    #[test]
    fn poll_clean_regrids_to_nominal_interval() {
        let mut d = device();
        let out = d
            .poll_clean(Seconds::ZERO, Hertz(1.0 / 300.0), Seconds::from_days(1.0))
            .expect("plenty of samples");
        assert_eq!(out.interval(), Seconds(300.0));
        // Re-gridding fills dropped samples: full day = 288 + 1 fence-post.
        assert!(out.len() >= 287, "{}", out.len());
    }

    #[test]
    fn device_source_implements_signal_source() {
        let mut d = device();
        let mut src = DeviceSource(&mut d);
        let s = src.sample(Seconds::ZERO, Hertz(1.0 / 60.0), Seconds::from_hours(1.0));
        assert!(s.len() >= 59);
        assert_eq!(s.interval(), Seconds(60.0));
    }

    #[test]
    fn window_offsets_respected() {
        let d = device();
        let early = d.ground_truth(Seconds::ZERO, Hertz(0.01), Seconds(200.0));
        let late = d.ground_truth(Seconds(100_000.0), Hertz(0.01), Seconds(200.0));
        assert_ne!(early.values(), late.values());
    }
}
