//! The quality model: what did the monitoring system preserve?
//!
//! Two complementary views:
//!
//! * **Reconstruction fidelity** — rebuild the signal from the stored
//!   samples (Whittaker–Shannon interpolation, the grid-free equivalent of
//!   the paper's FFT low-pass) and compare against ground truth on a fine
//!   reference grid (NRMSE).
//! * **Event visibility** — for every injected transient, did at least one
//!   stored sample land inside the event window, and how long after onset?
//!   This is the "operators fear missing important insights" axis (§1).

use crate::device::SimDevice;
use serde::{Deserialize, Serialize};
use sweetspot_dsp::interp::Interp;
use sweetspot_dsp::stats;
use sweetspot_timeseries::clean::{clean, CleanConfig};
use sweetspot_timeseries::{Hertz, IrregularSeries, Seconds};

/// Quality of one device's stored record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// RMSE of the reconstruction against ground truth, normalized by the
    /// larger of (a) the ground-truth value range over the window and (b)
    /// ten sensor quanta. The floor keeps flat, heavily-quantized traces
    /// from reading as "bad quality" when the error is just the sensor's own
    /// resolution — a flat signal genuinely needs almost no samples, which
    /// is the paper's point.
    pub nrmse: f64,
    /// Raw RMSE (metric units).
    pub rmse: f64,
    /// Largest pointwise reconstruction error.
    pub max_abs: f64,
    /// Number of injected events in the evaluation window.
    pub events_total: usize,
    /// Events with at least one stored sample inside their window.
    pub events_covered: usize,
    /// Mean delay from event onset to the first covering sample.
    pub mean_detection_latency: Option<Seconds>,
}

impl QualityReport {
    /// Fraction of events covered (1.0 when there were no events).
    pub fn event_recall(&self) -> f64 {
        if self.events_total == 0 {
            1.0
        } else {
            self.events_covered as f64 / self.events_total as f64
        }
    }
}

/// Quality-evaluation settings.
#[derive(Debug, Clone, Copy)]
pub struct QualityConfig {
    /// Reference grid rate as a multiple of the device's production rate.
    pub reference_multiplier: f64,
    /// Sinc-kernel half-width for reconstruction (samples).
    pub sinc_half_width: usize,
    /// Fractional margin at each end of the window excluded from error
    /// metrics (reconstruction near the boundary has one-sided support).
    pub edge_margin: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            reference_multiplier: 4.0,
            sinc_half_width: 64,
            edge_margin: 0.05,
        }
    }
}

/// Evaluates the stored record of `device` over `[0, duration)`.
///
/// Returns `None` when the stored record is too sparse to reconstruct from
/// (fewer than 4 samples).
pub fn evaluate(
    device: &SimDevice,
    stored: &IrregularSeries,
    duration: Seconds,
    cfg: QualityConfig,
) -> Option<QualityReport> {
    if stored.len() < 4 {
        return None;
    }
    // Re-grid the stored record (§3.2 pre-cleaning) for interpolation.
    let cleaned = clean(
        stored,
        CleanConfig {
            interval: None,
            outlier_mads: None,
        },
    )
    .ok()?;
    let stored_rate = cleaned.sample_rate();
    let stored_start = cleaned.start().value();

    // Fine reference grid from ground truth.
    let prod_rate = device.trace().profile().production_rate();
    let ref_rate = Hertz(prod_rate.value() * cfg.reference_multiplier);
    let truth = device.ground_truth(Seconds::ZERO, ref_rate, duration);

    // Interior evaluation range.
    let n = truth.len();
    let margin = ((n as f64) * cfg.edge_margin) as usize;
    let interp = Interp::Sinc {
        half_width: Some(cfg.sinc_half_width),
    };
    let mut truth_vals = Vec::with_capacity(n - 2 * margin);
    let mut recon_vals = Vec::with_capacity(n - 2 * margin);
    for k in margin..n - margin {
        let t = truth.time_of(k).value();
        truth_vals.push(truth.values()[k]);
        recon_vals.push(interp.at(
            cleaned.values(),
            stored_rate.value(),
            t - stored_start,
        ));
    }

    // Event coverage.
    let events = device.trace().model().events();
    let in_window: Vec<_> = events
        .iter()
        .filter(|e| e.start < duration.value() && e.end() > 0.0)
        .collect();
    let mut covered = 0usize;
    let mut latencies = Vec::new();
    for e in &in_window {
        let first_hit = stored
            .times()
            .iter()
            .find(|t| t.value() >= e.start && t.value() < e.end());
        if let Some(t) = first_hit {
            covered += 1;
            latencies.push(t.value() - e.start);
        }
    }
    let mean_latency = if latencies.is_empty() {
        None
    } else {
        Some(Seconds(
            latencies.iter().sum::<f64>() / latencies.len() as f64,
        ))
    };

    let rmse = stats::rmse(&truth_vals, &recon_vals);
    let (lo, hi) = stats::min_max(&truth_vals);
    let quant = device.trace().profile().quant_step;
    let scale = (hi - lo).max(10.0 * quant);

    Some(QualityReport {
        nrmse: rmse / scale,
        rmse,
        max_abs: stats::max_abs_error(&truth_vals, &recon_vals),
        events_total: in_window.len(),
        events_covered: covered,
        mean_detection_latency: mean_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::events::{Event, EventKind};
    use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};

    fn device() -> SimDevice {
        SimDevice::new(DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            2,
            99,
        ))
    }

    fn stored_at(device: &mut SimDevice, rate: Hertz, duration: Seconds) -> IrregularSeries {
        device.poll(Seconds::ZERO, rate, duration)
    }

    #[test]
    fn dense_sampling_reconstructs_well() {
        let mut d = device();
        let duration = Seconds::from_days(2.0);
        let stored = stored_at(&mut d, Hertz(1.0 / 300.0), duration);
        let q = evaluate(&d, &stored, duration, QualityConfig::default()).unwrap();
        assert!(q.nrmse < 0.1, "dense NRMSE {}", q.nrmse);
        assert_eq!(q.event_recall(), 1.0); // no events injected
    }

    #[test]
    fn sparser_sampling_degrades_quality_monotonically() {
        let mut d = device();
        let duration = Seconds::from_days(4.0);
        let dense = stored_at(&mut d, Hertz(1.0 / 300.0), duration);
        let sparse = stored_at(&mut d, Hertz(1.0 / 43_200.0), duration); // 12 h polls
        let qd = evaluate(&d, &dense, duration, QualityConfig::default()).unwrap();
        let qs = evaluate(&d, &sparse, duration, QualityConfig::default()).unwrap();
        assert!(
            qs.nrmse > qd.nrmse,
            "sparse ({}) must be worse than dense ({})",
            qs.nrmse,
            qd.nrmse
        );
    }

    #[test]
    fn too_sparse_returns_none() {
        let mut d = device();
        let duration = Seconds::from_hours(2.0);
        let stored = stored_at(&mut d, Hertz(1.0 / 7200.0), duration); // 1 sample
        assert!(evaluate(&d, &stored, duration, QualityConfig::default()).is_none());
    }

    #[test]
    fn event_coverage_depends_on_rate() {
        // Inject a 10-minute spike; 5-minute polling covers it, 2-hour
        // polling almost certainly misses it.
        let trace = DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            3,
            123,
        )
        .with_events(vec![Event::new(EventKind::Spike, 30_000.0, 600.0, 15.0)]);
        let duration = Seconds::from_days(1.0);
        let mut d = SimDevice::new(trace);

        let dense = d.poll(Seconds::ZERO, Hertz(1.0 / 300.0), duration);
        let qd = evaluate(&d, &dense, duration, QualityConfig::default()).unwrap();
        assert_eq!(qd.events_total, 1);
        assert_eq!(qd.events_covered, 1, "5-min polls cover a 10-min event");
        let latency = qd.mean_detection_latency.unwrap();
        assert!(latency.value() <= 300.0, "latency {latency}");

        let sparse = d.poll(Seconds::ZERO, Hertz(1.0 / 7200.0), duration);
        let qs = evaluate(&d, &sparse, duration, QualityConfig::default()).unwrap();
        assert_eq!(qs.events_total, 1);
        assert_eq!(qs.events_covered, 0, "2-hour polls miss a 10-min event");
        assert_eq!(qs.event_recall(), 0.0);
    }

    #[test]
    fn recall_is_one_without_events() {
        let q = QualityReport {
            nrmse: 0.0,
            rmse: 0.0,
            max_abs: 0.0,
            events_total: 0,
            events_covered: 0,
            mean_detection_latency: None,
        };
        assert_eq!(q.event_recall(), 1.0);
    }
}
