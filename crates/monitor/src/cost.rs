//! The resource-cost model.
//!
//! §1 of the paper: *"Every aspect of the task of monitoring — collection,
//! transmission, analysis, and storage — all consume resources that, when
//! considering the scale of modern data centers, represent a non-negligible
//! overhead."* [`CostModel`] prices each aspect per sample/byte;
//! [`CostReport`] aggregates a run.

use serde::{Deserialize, Serialize};
use sweetspot_timeseries::{Hertz, Seconds};

/// Per-unit prices of the four cost aspects. Units are abstract "cost units"
/// — only ratios matter for the sweet-spot analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Wire+record size of one sample (bytes): timestamp + value + tags.
    pub bytes_per_sample: f64,
    /// Collection cost per poll (device CPU, lock contention — the
    /// PrivateEye/Pingmesh overheads the paper cites).
    pub collection_per_sample: f64,
    /// Network transmission cost per byte.
    pub network_per_byte: f64,
    /// Storage cost per byte·day of retention.
    pub storage_per_byte_day: f64,
    /// Analysis cost per stored sample (queries, dashboards, ML).
    pub analysis_per_sample: f64,
    /// Retention period in days (how long stored bytes accrue cost).
    pub retention_days: f64,
}

impl CostModel {
    /// Marginal cost of one sample that is collected, shipped, stored for
    /// the full retention period, and analyzed — the unit price a fleet
    /// scheduler converts its shared budget with.
    pub fn cost_per_sample(&self) -> f64 {
        self.collection_per_sample
            + self.bytes_per_sample * self.network_per_byte
            + self.bytes_per_sample * self.retention_days * self.storage_per_byte_day
            + self.analysis_per_sample
    }

    /// Cost units of polling one stream at `rate` over `window` (collect +
    /// ship + store + analyze every sample). Fractional on purpose: the
    /// scheduler prices *rates*; the ledger later records the integral
    /// sample counts actually taken.
    pub fn rate_cost(&self, rate: Hertz, window: Seconds) -> f64 {
        rate.value() * window.value() * self.cost_per_sample()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bytes_per_sample: 32.0,
            collection_per_sample: 1.0,
            network_per_byte: 0.01,
            storage_per_byte_day: 0.001,
            analysis_per_sample: 0.1,
            retention_days: 90.0,
        }
    }
}

/// Aggregated cost of a monitoring run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Samples acquired from devices (collection side).
    pub samples_collected: usize,
    /// Samples retained in storage (may be fewer: a-posteriori policies
    /// collect fast but store at the Nyquist rate).
    pub samples_stored: usize,
    /// Bytes shipped over the network.
    pub network_bytes: f64,
    /// Byte·days accrued in storage.
    pub storage_byte_days: f64,
    /// Collection cost units.
    pub collection_cost: f64,
    /// Network cost units.
    pub network_cost: f64,
    /// Storage cost units.
    pub storage_cost: f64,
    /// Analysis cost units.
    pub analysis_cost: f64,
}

impl CostReport {
    /// Builds a report from sample counts under a cost model.
    pub fn from_counts(model: &CostModel, collected: usize, stored: usize) -> CostReport {
        let network_bytes = collected as f64 * model.bytes_per_sample;
        let storage_byte_days =
            stored as f64 * model.bytes_per_sample * model.retention_days;
        CostReport {
            samples_collected: collected,
            samples_stored: stored,
            network_bytes,
            storage_byte_days,
            collection_cost: collected as f64 * model.collection_per_sample,
            network_cost: network_bytes * model.network_per_byte,
            storage_cost: storage_byte_days * model.storage_per_byte_day,
            analysis_cost: stored as f64 * model.analysis_per_sample,
        }
    }

    /// Total cost units.
    pub fn total(&self) -> f64 {
        self.collection_cost + self.network_cost + self.storage_cost + self.analysis_cost
    }

    /// Element-wise accumulation (for fleet aggregation).
    pub fn accumulate(&mut self, other: &CostReport) {
        self.samples_collected += other.samples_collected;
        self.samples_stored += other.samples_stored;
        self.network_bytes += other.network_bytes;
        self.storage_byte_days += other.storage_byte_days;
        self.collection_cost += other.collection_cost;
        self.network_cost += other.network_cost;
        self.storage_cost += other.storage_cost;
        self.analysis_cost += other.analysis_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_prices_each_aspect() {
        let m = CostModel::default();
        let r = CostReport::from_counts(&m, 1000, 100);
        assert_eq!(r.samples_collected, 1000);
        assert_eq!(r.samples_stored, 100);
        assert_eq!(r.network_bytes, 32_000.0);
        assert_eq!(r.collection_cost, 1000.0);
        assert!((r.network_cost - 320.0).abs() < 1e-9);
        assert!((r.storage_cost - 100.0 * 32.0 * 90.0 * 0.001).abs() < 1e-9);
        assert!((r.analysis_cost - 10.0).abs() < 1e-9);
        assert!(r.total() > 0.0);
    }

    #[test]
    fn cost_scales_linearly_with_samples() {
        let m = CostModel::default();
        let a = CostReport::from_counts(&m, 100, 100);
        let b = CostReport::from_counts(&m, 1000, 1000);
        assert!((b.total() / a.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn storing_less_cuts_storage_and_analysis_only() {
        let m = CostModel::default();
        let full = CostReport::from_counts(&m, 1000, 1000);
        let thin = CostReport::from_counts(&m, 1000, 10);
        assert_eq!(full.collection_cost, thin.collection_cost);
        assert_eq!(full.network_cost, thin.network_cost);
        assert!(thin.storage_cost < full.storage_cost / 50.0);
        assert!(thin.analysis_cost < full.analysis_cost / 50.0);
    }

    #[test]
    fn cost_per_sample_sums_all_four_aspects() {
        let m = CostModel::default();
        // 1 collection + 32 B × 0.01 network + 32 B × 90 d × 0.001 storage
        // + 0.1 analysis.
        let expected = 1.0 + 0.32 + 2.88 + 0.1;
        assert!((m.cost_per_sample() - expected).abs() < 1e-12);
        // Consistency with the report path: N samples collected and stored.
        let r = CostReport::from_counts(&m, 500, 500);
        assert!((r.total() - 500.0 * m.cost_per_sample()).abs() < 1e-9);
    }

    #[test]
    fn rate_cost_scales_with_rate_and_window() {
        let m = CostModel::default();
        let base = m.rate_cost(Hertz(0.01), Seconds(3600.0));
        assert!((base - 36.0 * m.cost_per_sample()).abs() < 1e-9);
        assert!((m.rate_cost(Hertz(0.02), Seconds(3600.0)) - 2.0 * base).abs() < 1e-9);
        assert!((m.rate_cost(Hertz(0.01), Seconds(7200.0)) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums() {
        let m = CostModel::default();
        let mut acc = CostReport::default();
        acc.accumulate(&CostReport::from_counts(&m, 10, 10));
        acc.accumulate(&CostReport::from_counts(&m, 20, 5));
        assert_eq!(acc.samples_collected, 30);
        assert_eq!(acc.samples_stored, 15);
        let direct = CostReport::from_counts(&m, 30, 15);
        assert!((acc.total() - direct.total()).abs() < 1e-9);
    }
}
