//! The central collector: runs pollers, ingests samples, accounts cost.

use crate::cost::{CostModel, CostReport};
use crate::poller::PolicyRun;
use crate::storage::SampleStore;
use sweetspot_timeseries::ingest::TraceMeta;

/// Collects policy runs into storage with cost accounting.
#[derive(Debug)]
pub struct Collector {
    store: SampleStore,
    cost_model: CostModel,
    total_cost: CostReport,
}

impl Collector {
    /// Creates a collector under the given cost model.
    pub fn new(cost_model: CostModel) -> Self {
        Collector {
            store: SampleStore::new(cost_model.bytes_per_sample),
            cost_model,
            total_cost: CostReport::default(),
        }
    }

    /// Ingests one device's policy run; returns the cost charged for it.
    pub fn ingest(&mut self, meta: &TraceMeta, run: &PolicyRun) -> CostReport {
        self.store.ingest(meta, run.stored.iter().copied());
        let cost = CostReport::from_counts(&self.cost_model, run.collected, run.stored.len());
        self.total_cost.accumulate(&cost);
        cost
    }

    /// The sample store.
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Aggregate cost over everything ingested so far.
    pub fn total_cost(&self) -> &CostReport {
        &self.total_cost
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_timeseries::Seconds;

    fn meta(d: &str) -> TraceMeta {
        TraceMeta {
            metric: "m".into(),
            device: d.into(),
        }
    }

    fn run(collected: usize, stored: usize) -> PolicyRun {
        PolicyRun {
            stored: (0..stored).map(|i| (Seconds(i as f64), i as f64)).collect(),
            collected,
            epochs: None,
        }
    }

    #[test]
    fn ingest_accumulates_cost_and_samples() {
        let mut c = Collector::new(CostModel::default());
        let r1 = c.ingest(&meta("a"), &run(100, 100));
        let r2 = c.ingest(&meta("b"), &run(100, 10));
        assert_eq!(c.store().total_samples(), 110);
        assert_eq!(c.total_cost().samples_collected, 200);
        assert_eq!(c.total_cost().samples_stored, 110);
        assert!((c.total_cost().total() - r1.total() - r2.total()).abs() < 1e-9);
    }

    #[test]
    fn per_trace_isolation() {
        let mut c = Collector::new(CostModel::default());
        c.ingest(&meta("a"), &run(10, 10));
        c.ingest(&meta("b"), &run(20, 20));
        assert_eq!(c.store().sample_count(&meta("a")), 10);
        assert_eq!(c.store().sample_count(&meta("b")), 20);
    }
}
