//! The central collector: runs pollers, ingests samples, accounts cost —
//! per device ([`Collector`]) and per fleet epoch ([`EpochLedger`]).

use crate::cost::{CostModel, CostReport};
use crate::poller::PolicyRun;
use crate::storage::SampleStore;
use sweetspot_timeseries::ingest::TraceMeta;

/// Collects policy runs into storage with cost accounting.
#[derive(Debug)]
pub struct Collector {
    store: SampleStore,
    cost_model: CostModel,
    total_cost: CostReport,
}

impl Collector {
    /// Creates a collector under the given cost model.
    pub fn new(cost_model: CostModel) -> Self {
        Collector {
            store: SampleStore::new(cost_model.bytes_per_sample),
            cost_model,
            total_cost: CostReport::default(),
        }
    }

    /// Ingests one device's policy run; returns the cost charged for it.
    pub fn ingest(&mut self, meta: &TraceMeta, run: &PolicyRun) -> CostReport {
        self.store.ingest(meta, run.stored.iter().copied());
        let cost = CostReport::from_counts(&self.cost_model, run.collected, run.stored.len());
        self.total_cost.accumulate(&cost);
        cost
    }

    /// The sample store.
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Aggregate cost over everything ingested so far.
    pub fn total_cost(&self) -> &CostReport {
        &self.total_cost
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }
}

/// One fleet epoch's shared-budget accounting: what the controllers asked
/// for, what the scheduler granted, and what was actually spent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochAccount {
    /// Epoch number (0-based, lockstep across the fleet).
    pub epoch: usize,
    /// Budget available this epoch, in cost units (`f64::INFINITY` when
    /// uncapped).
    pub budget: f64,
    /// Cost of every controller's *requested* rate (primary streams).
    pub demanded: f64,
    /// Cost of the *granted* rates after scheduling.
    pub granted: f64,
    /// Samples actually collected across the fleet this epoch (primary +
    /// verification streams).
    pub samples: usize,
    /// Cost units actually spent (integral samples × unit price).
    pub spent: f64,
    /// Devices whose grant was below their request.
    pub throttled_devices: usize,
}

/// Per-epoch fleet ledger: an [`EpochAccount`] per lockstep epoch, plus
/// fleet-lifetime totals. The fleet simulation appends one account per
/// epoch; totals are exact sums in epoch order (deterministic).
#[derive(Debug, Clone, Default)]
pub struct EpochLedger {
    accounts: Vec<EpochAccount>,
}

impl EpochLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty ledger with room for `epochs` accounts, so a simulation of
    /// known length records every epoch without reallocating.
    pub fn with_capacity(epochs: usize) -> Self {
        EpochLedger {
            accounts: Vec::with_capacity(epochs),
        }
    }

    /// Appends one epoch's account.
    ///
    /// # Panics
    /// Panics if `account.epoch` is not the next epoch index — the ledger is
    /// strictly sequential so totals stay reproducible.
    pub fn record(&mut self, account: EpochAccount) {
        assert_eq!(
            account.epoch,
            self.accounts.len(),
            "ledger epochs must be recorded in order"
        );
        self.accounts.push(account);
    }

    /// All epoch accounts, in order.
    pub fn accounts(&self) -> &[EpochAccount] {
        &self.accounts
    }

    /// Number of epochs recorded.
    pub fn epochs(&self) -> usize {
        self.accounts.len()
    }

    /// Total cost units actually spent.
    pub fn total_spent(&self) -> f64 {
        self.accounts.iter().map(|a| a.spent).sum()
    }

    /// Total cost units demanded (requested rates priced out).
    pub fn total_demanded(&self) -> f64 {
        self.accounts.iter().map(|a| a.demanded).sum()
    }

    /// Total samples collected.
    pub fn total_samples(&self) -> usize {
        self.accounts.iter().map(|a| a.samples).sum()
    }

    /// Fraction of device-epochs that were throttled, given the fleet size.
    pub fn throttled_fraction(&self, devices: usize) -> f64 {
        let device_epochs = devices * self.accounts.len();
        if device_epochs == 0 {
            return 0.0;
        }
        self.accounts
            .iter()
            .map(|a| a.throttled_devices)
            .sum::<usize>() as f64
            / device_epochs as f64
    }

    /// Mean spent cost per epoch (0 for an empty ledger).
    pub fn mean_spent_per_epoch(&self) -> f64 {
        if self.accounts.is_empty() {
            0.0
        } else {
            self.total_spent() / self.accounts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_timeseries::Seconds;

    fn meta(d: &str) -> TraceMeta {
        TraceMeta {
            metric: "m".into(),
            device: d.into(),
        }
    }

    fn run(collected: usize, stored: usize) -> PolicyRun {
        PolicyRun {
            stored: (0..stored).map(|i| (Seconds(i as f64), i as f64)).collect(),
            collected,
            epochs: None,
        }
    }

    #[test]
    fn ingest_accumulates_cost_and_samples() {
        let mut c = Collector::new(CostModel::default());
        let r1 = c.ingest(&meta("a"), &run(100, 100));
        let r2 = c.ingest(&meta("b"), &run(100, 10));
        assert_eq!(c.store().total_samples(), 110);
        assert_eq!(c.total_cost().samples_collected, 200);
        assert_eq!(c.total_cost().samples_stored, 110);
        assert!((c.total_cost().total() - r1.total() - r2.total()).abs() < 1e-9);
    }

    #[test]
    fn per_trace_isolation() {
        let mut c = Collector::new(CostModel::default());
        c.ingest(&meta("a"), &run(10, 10));
        c.ingest(&meta("b"), &run(20, 20));
        assert_eq!(c.store().sample_count(&meta("a")), 10);
        assert_eq!(c.store().sample_count(&meta("b")), 20);
    }

    #[test]
    fn epoch_ledger_totals_sum_in_order() {
        let mut ledger = EpochLedger::new();
        for (i, spent) in [10.0, 20.0, 5.0].iter().enumerate() {
            ledger.record(EpochAccount {
                epoch: i,
                budget: 25.0,
                demanded: 30.0,
                granted: 25.0,
                samples: 100 * (i + 1),
                spent: *spent,
                throttled_devices: i,
            });
        }
        assert_eq!(ledger.epochs(), 3);
        assert!((ledger.total_spent() - 35.0).abs() < 1e-12);
        assert!((ledger.total_demanded() - 90.0).abs() < 1e-12);
        assert_eq!(ledger.total_samples(), 600);
        assert!((ledger.mean_spent_per_epoch() - 35.0 / 3.0).abs() < 1e-12);
        // 0 + 1 + 2 throttled device-epochs over a 2-device fleet × 3 epochs.
        assert!((ledger.throttled_fraction(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn epoch_ledger_rejects_out_of_order_epochs() {
        let mut ledger = EpochLedger::new();
        ledger.record(EpochAccount {
            epoch: 1,
            ..EpochAccount::default()
        });
    }

    #[test]
    fn empty_ledger_is_all_zero() {
        let ledger = EpochLedger::new();
        assert_eq!(ledger.epochs(), 0);
        assert_eq!(ledger.total_spent(), 0.0);
        assert_eq!(ledger.throttled_fraction(10), 0.0);
        assert_eq!(ledger.mean_spent_per_epoch(), 0.0);
    }
}
