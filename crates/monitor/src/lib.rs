//! # sweetspot-monitor
//!
//! A monitoring-system simulator: the substrate that lets the paper's
//! cost-vs-quality argument be *measured* instead of asserted.
//!
//! The pieces mirror a production telemetry pipeline:
//!
//! * [`device`] — simulated devices exposing ground-truth signals through
//!   the measurement chain (noise, quantization, jitter, loss);
//! * [`poller`] — sampling policies: today's fixed-rate operator defaults,
//!   the paper's §4.2 adaptive controller, and the a-posteriori
//!   "measure fast, store at Nyquist" variant from §4;
//! * [`collector`] + [`storage`] — sample collection and retention with
//!   byte-level accounting;
//! * [`cost`] — the resource model (collection CPU, network bytes, storage,
//!   analysis) the paper's §1 motivates;
//! * [`quality`] — the fidelity model: reconstruction error against ground
//!   truth, event coverage/recall and detection latency;
//! * [`system`] — one call to run a policy over a fleet and get
//!   [`cost::CostReport`] + [`quality::QualityReport`] back;
//! * [`sweep`] — rate sweeps producing the cost-vs-quality frontier and its
//!   knee (the "sweet spot" of the title).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collector;
pub mod cost;
pub mod device;
pub mod poller;
pub mod quality;
pub mod storage;
pub mod sweep;
pub mod system;

pub use collector::{EpochAccount, EpochLedger};
pub use cost::{CostModel, CostReport};
pub use poller::FleetMember;
pub use quality::QualityReport;
pub use system::{MonitoringSystem, Policy, RunOutcome};

/// Shared helpers for this crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use crate::device::SimDevice;
    use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};

    /// A device the posteriori policy can thin ≥2×: well-sampled, band edge
    /// well below the folding frequency, signal-dominated spectrum. (A
    /// near-static device legitimately reads as noise/aliased under §3.2 and
    /// is stored in full — valid behavior, but not what thinning tests
    /// probe.)
    pub(crate) fn thinnable_device(seed: u64) -> SimDevice {
        let profile = MetricProfile::for_kind(MetricKind::Temperature);
        let dev = (0..50)
            .map(|i| DeviceTrace::synthesize(profile, i, seed))
            .find(|d| {
                !d.is_undersampled_at_production_rate()
                    && (2e-5..3e-4).contains(&d.true_band_edge().value())
                    && d.model().total_amplitude() > 10.0
            })
            .expect("a thinnable temperature device in 50 draws");
        SimDevice::new(dev)
    }
}
