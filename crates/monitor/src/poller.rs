//! Sampling policies.
//!
//! Three families, mirroring §3–§4 of the paper:
//!
//! * [`FixedRatePlan`] — today's systems: poll at an operator-chosen rate,
//!   store everything. The §3.1 baseline ("the degree of sampling … is
//!   entirely arbitrary").
//! * [`PosterioriPlan`] — §4's first variant: *"measure at a high rate,
//!   compute the nyquist rate over the measurements and store or present for
//!   later analysis only the measurements that are re-sampled at the lower
//!   nyquist rate"*. Collection cost stays high; storage and analysis costs
//!   drop.
//! * [`AdaptivePlan`] — §4.2's dynamic sampler: acquisition itself runs at
//!   the adapted rate (plus the §4.1 verification stream).
//!
//! [`FleetMember`] packages the adaptive controller with its device for
//! *lockstep* fleet simulation: an external scheduler grants each member a
//! rate per shared epoch (see `analysis::fleetsim`).

use crate::device::{DeviceSource, PollScratch, ScratchSource, SimDevice};
use sweetspot_core::adaptive::{AdaptiveConfig, AdaptiveSampler, EpochReport, SamplerScratch};
use sweetspot_telemetry::{DeviceTrace, MetricKind};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::reconstruct::{decimation_factor, downsample};
use sweetspot_timeseries::{Hertz, Seconds};

/// What one policy run produced for one device.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Samples that land in storage.
    pub stored: Vec<(Seconds, f64)>,
    /// Samples acquired from the device (collection cost basis).
    pub collected: usize,
    /// Per-epoch adaptation reports (adaptive policy only).
    pub epochs: Option<Vec<EpochReport>>,
}

/// Fixed-rate polling (the production baseline).
#[derive(Debug, Clone, Copy)]
pub struct FixedRatePlan {
    /// The polling rate.
    pub rate: Hertz,
}

impl FixedRatePlan {
    /// Polls `device` for `duration`, storing every sample.
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let raw = device.poll(Seconds::ZERO, self.rate, duration);
        let stored: Vec<(Seconds, f64)> = raw.iter().collect();
        PolicyRun {
            collected: stored.len(),
            stored,
            epochs: None,
        }
    }
}

/// Measure fast, estimate the Nyquist rate a posteriori, store downsampled.
#[derive(Debug, Clone, Copy)]
pub struct PosterioriPlan {
    /// Acquisition rate (typically the production default).
    pub acquisition_rate: Hertz,
    /// Estimator settings.
    pub estimator: NyquistConfig,
    /// Store at `headroom × estimated Nyquist rate`.
    pub headroom: f64,
}

impl PosterioriPlan {
    /// Polls fast, stores at the estimated Nyquist rate.
    ///
    /// When the estimator reports "aliased", everything collected is stored
    /// (there is no safe rate to thin to).
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let cleaned = device
            .poll_clean(Seconds::ZERO, self.acquisition_rate, duration)
            .expect("acquisition rate should produce enough samples");
        let collected = cleaned.len();
        let mut estimator = NyquistEstimator::new(self.estimator);
        let stored_series = match estimator.estimate_series(&cleaned).rate() {
            Some(nyq) => {
                let target = Hertz(nyq.value() * self.headroom.max(1.0));
                let factor = decimation_factor(cleaned.sample_rate(), target);
                downsample(&cleaned, factor)
            }
            // Aliased: there is no safe rate to thin to, so everything
            // collected moves straight into storage.
            None => cleaned,
        };
        PolicyRun {
            collected,
            stored: stored_series.iter().collect(),
            epochs: None,
        }
    }
}

/// The §4.2 adaptive sampler as a policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePlan {
    /// Controller configuration.
    pub config: AdaptiveConfig,
}

impl AdaptivePlan {
    /// Runs the controller against the device; the primary stream is stored.
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let mut sampler = AdaptiveSampler::new(self.config);
        let reports = {
            let mut source = DeviceSource(device);
            sampler.run(&mut source, duration)
        };
        let collected = sweetspot_core::adaptive::total_samples(&reports);
        // Replay each epoch's primary stream into storage. (The controller
        // already acquired these samples; the replay regenerates the values
        // without double-counting cost.)
        let mut stored = Vec::new();
        for r in &reports {
            if let Some(series) = device.poll_clean(r.start, r.primary_rate, r.duration) {
                stored.extend(series.iter());
            }
        }
        PolicyRun {
            collected,
            stored,
            epochs: Some(reports),
        }
    }
}

/// Per-worker working set for lockstep fleet epochs: the polling chain's
/// buffers plus the sampler's detection/estimation scratch. Every buffer in
/// here is pure scratch — cleared or overwritten before use — so one
/// instance lent to each member of a shard in turn produces byte-identical
/// output to per-member copies, at 1/N-members the resident footprint.
/// This is the fleet memory wall: at 10⁵ devices the per-member working
/// sets alone were tens of gigabytes; hoisted per worker they are a few
/// hundred kilobytes total.
#[derive(Debug, Default)]
pub struct EpochScratch {
    /// Polling-chain scratch (oscillator bank, truth grid, measured
    /// buffers, cleaning scratch).
    pub poll: PollScratch,
    /// Controller scratch (detector, estimator, recycled series storage).
    pub sampler: SamplerScratch,
}

impl EpochScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently resident in this scratch (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.poll.resident_bytes() + self.sampler.resident_bytes()
    }
}

/// One device of a budget-scheduled fleet: the §4.2 controller paired with
/// its simulated device plus per-device accounting, stepped one shared
/// epoch at a time by an external scheduler.
///
/// The member's controller *requests* a rate
/// ([`FleetMember::requested_rate`]); the scheduler decides the grant and
/// calls [`FleetMember::step_epoch`] with a per-worker [`EpochScratch`].
/// Everything a member does is a pure function of its trace, its config and
/// the grant sequence — the scratch never carries state between members —
/// so a sharded fleet simulation stays byte-identical for any thread count.
///
/// A member holds only *durable* control state (trace, controller mode and
/// rate, accounting); all working buffers live in the scratch.
pub struct FleetMember {
    device: SimDevice,
    sampler: AdaptiveSampler,
    /// Fleet-unique index (position in the fleet work list).
    index: usize,
}

impl FleetMember {
    /// Wraps `trace` with a fresh controller.
    pub fn new(index: usize, trace: DeviceTrace, config: AdaptiveConfig) -> Self {
        FleetMember {
            device: SimDevice::new(trace),
            sampler: AdaptiveSampler::new(config),
            index,
        }
    }

    /// [`FleetMember::new`] with a caller-supplied FFT planner. Fleet
    /// engines pass each member a clone of one per-worker planner, so 10⁵
    /// members on a shard share one table cache instead of holding ~10⁵
    /// copies of identical twiddle/chirp/window tables — at large-fleet
    /// scale this is the difference between gigabytes and megabytes. Plan
    /// tables never influence results.
    pub fn with_planner(
        index: usize,
        trace: DeviceTrace,
        config: AdaptiveConfig,
        planner: sweetspot_dsp::fft::FftPlanner,
    ) -> Self {
        FleetMember {
            device: SimDevice::new(trace),
            sampler: AdaptiveSampler::with_planner(config, planner),
            index,
        }
    }

    /// Position in the fleet work list.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The metric this member reports.
    pub fn kind(&self) -> MetricKind {
        self.device.trace().profile().kind
    }

    /// Rate the controller wants for the next epoch.
    pub fn requested_rate(&self) -> Hertz {
        self.sampler.requested_rate()
    }

    /// True Nyquist sampling rate of the underlying signal (ground truth,
    /// for quality scoring only — no controller ever sees it).
    pub fn true_nyquist_rate(&self) -> Hertz {
        self.device.trace().true_nyquist_rate()
    }

    /// The controller (deferral counters, mode, memory).
    pub fn sampler(&self) -> &AdaptiveSampler {
        &self.sampler
    }

    /// The simulated device.
    pub fn device(&self) -> &SimDevice {
        &self.device
    }

    /// Plan-request counts of this member's FFT planner handle — per-member
    /// and simulation-determined, so a fleet can sum them in device order
    /// into a thread-count-invariant metrics snapshot (see
    /// [`sweetspot_dsp::fft::FftHandleStats`]).
    pub fn fft_handle_stats(&self) -> sweetspot_dsp::fft::FftHandleStats {
        self.sampler.fft_handle_stats()
    }

    /// Durable heap bytes this member retains between epochs (trace identity
    /// and signal model, plus any working buffers parked in the sampler —
    /// zero when epochs run through a worker's [`EpochScratch`]).
    pub fn heap_bytes(&self) -> usize {
        self.device.heap_bytes() + self.sampler.owned_scratch_bytes()
    }

    /// Runs one lockstep epoch at the scheduler's `granted` rate, through a
    /// worker-owned scratch.
    pub fn step_epoch(
        &mut self,
        scratch: &mut EpochScratch,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        let mut source = ScratchSource {
            device: &mut self.device,
            scratch: &mut scratch.poll,
        };
        self.sampler
            .step_granted_scratch(&mut scratch.sampler, &mut source, start, granted, window)
    }

    /// One lockstep epoch whose report never arrived (dropped in flight or
    /// the device was absent): no samples are taken, and the controller
    /// applies its hold-and-decay missing-epoch semantics
    /// ([`AdaptiveSampler::note_missed_epoch`]).
    pub fn note_missed_epoch(
        &mut self,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        self.sampler.note_missed_epoch(start, granted, window)
    }

    /// One lockstep epoch whose report reaches the controller too late to
    /// adapt on: the primary stream is sampled (and billed), adaptation is
    /// frozen for the epoch ([`AdaptiveSampler::step_delayed_scratch`]).
    pub fn step_epoch_delayed(
        &mut self,
        scratch: &mut EpochScratch,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        let mut source = ScratchSource {
            device: &mut self.device,
            scratch: &mut scratch.poll,
        };
        self.sampler
            .step_delayed_scratch(&mut scratch.sampler, &mut source, start, granted, window)
    }

    /// The rate a watchdog-forced re-probe would request — a read-only peek
    /// ([`AdaptiveSampler::reprobe_rate`]) so a fleet watchdog can price the
    /// re-probe against its recovery pool before committing to it.
    pub fn reprobe_rate(&self) -> Hertz {
        self.sampler.reprobe_rate()
    }

    /// Forces the controller into a watchdog-scheduled re-probe above its
    /// remembered maximum ([`AdaptiveSampler::begin_reprobe`]); returns the
    /// rate the re-probe will request.
    pub fn begin_reprobe(&mut self) -> Hertz {
        self.sampler.begin_reprobe()
    }

    /// Records a scheduled sleep epoch (duty cycle / battery conservation):
    /// nothing is deferred and the request does not decay, but the next
    /// awake epoch is forced to verify
    /// ([`AdaptiveSampler::note_dormant_epoch`]).
    pub fn note_dormant_epoch(&mut self) {
        self.sampler.note_dormant_epoch();
    }

    /// Reboots the member mid-study: the device rewinds its noise stream and
    /// the controller restarts in probe mode from its initial rate — but
    /// keeps its remembered maximum, so the re-ramp is bounded (§4.2's
    /// memory belongs to the monitoring service, not the device).
    pub fn reboot(&mut self) {
        self.device.reboot();
        self.sampler.reboot();
    }

    /// Exchanges the device's ground-truth model with `alt` in place (regime
    /// switch; see [`SimDevice::swap_model`]). The controller is *not*
    /// informed — discovering the new regime through its own sampling is the
    /// point of the scenario.
    pub fn swap_model(&mut self, alt: &mut sweetspot_telemetry::SignalModel) {
        self.device.swap_model(alt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::MetricProfile;

    fn device() -> SimDevice {
        SimDevice::new(DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            1,
            7,
        ))
    }


    #[test]
    fn fixed_rate_stores_everything_it_collects() {
        let mut d = device();
        let run = FixedRatePlan {
            rate: Hertz(1.0 / 300.0),
        }
        .run(&mut d, Seconds::from_days(1.0));
        assert_eq!(run.collected, run.stored.len());
        assert!(run.collected >= 280, "{}", run.collected);
        assert!(run.epochs.is_none());
    }

    #[test]
    fn posteriori_stores_fewer_than_it_collects() {
        let mut d = crate::testutil::thinnable_device(7);
        let run = PosterioriPlan {
            acquisition_rate: Hertz(1.0 / 300.0),
            estimator: NyquistConfig::default(),
            headroom: 1.25,
        }
        .run(&mut d, Seconds::from_days(2.0));
        assert!(
            run.stored.len() * 2 <= run.collected,
            "expected ≥2× thinning, stored {} of {}",
            run.stored.len(),
            run.collected
        );
    }

    #[test]
    fn adaptive_produces_epoch_reports() {
        let mut d = device();
        let run = AdaptivePlan {
            config: AdaptiveConfig {
                initial_rate: Hertz(1.0 / 300.0),
                min_rate: Hertz(1e-6),
                max_rate: Hertz(1.0),
                epoch: Seconds::from_hours(12.0),
                ..AdaptiveConfig::default()
            },
        }
        .run(&mut d, Seconds::from_days(4.0));
        let epochs = run.epochs.expect("adaptive yields epochs");
        assert!(!epochs.is_empty());
        assert!(run.collected > 0);
        assert!(!run.stored.is_empty());
        // Stored samples must be time-ordered enough to form a series later.
        let collected_sum: usize = epochs.iter().map(|e| e.samples_taken).sum();
        assert_eq!(run.collected, collected_sum);
    }

    #[test]
    fn fleet_member_full_grants_reproduce_adaptive_plan() {
        // A member granted exactly what it requests, over windows at least
        // as long as the classic controller would pick, must walk the same
        // rate trajectory as AdaptivePlan's standalone sampler.
        let config = AdaptiveConfig {
            initial_rate: Hertz(1.0 / 300.0),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(1.0),
            epoch: Seconds::from_hours(12.0),
            ..AdaptiveConfig::default()
        };
        let trace = || {
            DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::Temperature), 1, 7)
        };
        let reference = AdaptivePlan { config }
            .run(&mut SimDevice::new(trace()), Seconds::from_days(4.0));
        let mut member = FleetMember::new(0, trace(), config);
        let mut scratch = EpochScratch::new();
        let mut t = Seconds::ZERO;
        let mut epochs = Vec::new();
        while t.value() < Seconds::from_days(4.0).value() {
            let ref_epoch = &reference.epochs.as_ref().unwrap()[epochs.len()];
            let r = member.step_epoch(&mut scratch, t, member.requested_rate(), ref_epoch.duration);
            t = t + r.duration;
            epochs.push(r);
        }
        assert_eq!(reference.epochs.as_ref().unwrap(), &epochs);
        assert_eq!(member.sampler().deferred_epochs(), 0);
    }

    #[test]
    fn fleet_member_records_deferrals_under_cuts() {
        let config = AdaptiveConfig {
            initial_rate: Hertz(1.0 / 300.0),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(1.0),
            epoch: Seconds::from_hours(12.0),
            ..AdaptiveConfig::default()
        };
        let trace =
            DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::Temperature), 1, 7);
        let nyquist = trace.true_nyquist_rate();
        let mut member = FleetMember::new(3, trace, config);
        assert_eq!(member.index(), 3);
        assert_eq!(member.true_nyquist_rate(), nyquist);
        let window = Seconds::from_hours(12.0);
        let grant = Hertz(member.requested_rate().value() / 4.0);
        let mut scratch = EpochScratch::new();
        let r = member.step_epoch(&mut scratch, Seconds::ZERO, grant, window);
        assert!(r.throttled);
        assert_eq!(member.sampler().deferred_epochs(), 1);
        assert!(
            member.requested_rate().value() >= r.requested_rate.value() * (1.0 - 1e-9),
            "request must survive the cut"
        );
    }
}
