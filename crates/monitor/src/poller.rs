//! Sampling policies.
//!
//! Three families, mirroring §3–§4 of the paper:
//!
//! * [`FixedRatePlan`] — today's systems: poll at an operator-chosen rate,
//!   store everything. The §3.1 baseline ("the degree of sampling … is
//!   entirely arbitrary").
//! * [`PosterioriPlan`] — §4's first variant: *"measure at a high rate,
//!   compute the nyquist rate over the measurements and store or present for
//!   later analysis only the measurements that are re-sampled at the lower
//!   nyquist rate"*. Collection cost stays high; storage and analysis costs
//!   drop.
//! * [`AdaptivePlan`] — §4.2's dynamic sampler: acquisition itself runs at
//!   the adapted rate (plus the §4.1 verification stream).

use crate::device::{DeviceSource, SimDevice};
use sweetspot_core::adaptive::{AdaptiveConfig, AdaptiveSampler, EpochReport};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::reconstruct::{decimation_factor, downsample};
use sweetspot_timeseries::{Hertz, Seconds};

/// What one policy run produced for one device.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Samples that land in storage.
    pub stored: Vec<(Seconds, f64)>,
    /// Samples acquired from the device (collection cost basis).
    pub collected: usize,
    /// Per-epoch adaptation reports (adaptive policy only).
    pub epochs: Option<Vec<EpochReport>>,
}

/// Fixed-rate polling (the production baseline).
#[derive(Debug, Clone, Copy)]
pub struct FixedRatePlan {
    /// The polling rate.
    pub rate: Hertz,
}

impl FixedRatePlan {
    /// Polls `device` for `duration`, storing every sample.
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let raw = device.poll(Seconds::ZERO, self.rate, duration);
        let stored: Vec<(Seconds, f64)> = raw.iter().collect();
        PolicyRun {
            collected: stored.len(),
            stored,
            epochs: None,
        }
    }
}

/// Measure fast, estimate the Nyquist rate a posteriori, store downsampled.
#[derive(Debug, Clone, Copy)]
pub struct PosterioriPlan {
    /// Acquisition rate (typically the production default).
    pub acquisition_rate: Hertz,
    /// Estimator settings.
    pub estimator: NyquistConfig,
    /// Store at `headroom × estimated Nyquist rate`.
    pub headroom: f64,
}

impl PosterioriPlan {
    /// Polls fast, stores at the estimated Nyquist rate.
    ///
    /// When the estimator reports "aliased", everything collected is stored
    /// (there is no safe rate to thin to).
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let cleaned = device
            .poll_clean(Seconds::ZERO, self.acquisition_rate, duration)
            .expect("acquisition rate should produce enough samples");
        let collected = cleaned.len();
        let mut estimator = NyquistEstimator::new(self.estimator);
        let stored_series = match estimator.estimate_series(&cleaned).rate() {
            Some(nyq) => {
                let target = Hertz(nyq.value() * self.headroom.max(1.0));
                let factor = decimation_factor(cleaned.sample_rate(), target);
                downsample(&cleaned, factor)
            }
            None => cleaned.clone(),
        };
        PolicyRun {
            collected,
            stored: stored_series.iter().collect(),
            epochs: None,
        }
    }
}

/// The §4.2 adaptive sampler as a policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePlan {
    /// Controller configuration.
    pub config: AdaptiveConfig,
}

impl AdaptivePlan {
    /// Runs the controller against the device; the primary stream is stored.
    pub fn run(&self, device: &mut SimDevice, duration: Seconds) -> PolicyRun {
        let mut sampler = AdaptiveSampler::new(self.config);
        let reports = {
            let mut source = DeviceSource(device);
            sampler.run(&mut source, duration)
        };
        let collected = sweetspot_core::adaptive::total_samples(&reports);
        // Replay each epoch's primary stream into storage. (The controller
        // already acquired these samples; the replay regenerates the values
        // without double-counting cost.)
        let mut stored = Vec::new();
        for r in &reports {
            if let Some(series) = device.poll_clean(r.start, r.primary_rate, r.duration) {
                stored.extend(series.iter());
            }
        }
        PolicyRun {
            collected,
            stored,
            epochs: Some(reports),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};

    fn device() -> SimDevice {
        SimDevice::new(DeviceTrace::synthesize(
            MetricProfile::for_kind(MetricKind::Temperature),
            1,
            7,
        ))
    }


    #[test]
    fn fixed_rate_stores_everything_it_collects() {
        let mut d = device();
        let run = FixedRatePlan {
            rate: Hertz(1.0 / 300.0),
        }
        .run(&mut d, Seconds::from_days(1.0));
        assert_eq!(run.collected, run.stored.len());
        assert!(run.collected >= 280, "{}", run.collected);
        assert!(run.epochs.is_none());
    }

    #[test]
    fn posteriori_stores_fewer_than_it_collects() {
        let mut d = crate::testutil::thinnable_device(7);
        let run = PosterioriPlan {
            acquisition_rate: Hertz(1.0 / 300.0),
            estimator: NyquistConfig::default(),
            headroom: 1.25,
        }
        .run(&mut d, Seconds::from_days(2.0));
        assert!(
            run.stored.len() * 2 <= run.collected,
            "expected ≥2× thinning, stored {} of {}",
            run.stored.len(),
            run.collected
        );
    }

    #[test]
    fn adaptive_produces_epoch_reports() {
        let mut d = device();
        let run = AdaptivePlan {
            config: AdaptiveConfig {
                initial_rate: Hertz(1.0 / 300.0),
                min_rate: Hertz(1e-6),
                max_rate: Hertz(1.0),
                epoch: Seconds::from_hours(12.0),
                ..AdaptiveConfig::default()
            },
        }
        .run(&mut d, Seconds::from_days(4.0));
        let epochs = run.epochs.expect("adaptive yields epochs");
        assert!(!epochs.is_empty());
        assert!(run.collected > 0);
        assert!(!run.stored.is_empty());
        // Stored samples must be time-ordered enough to form a series later.
        let collected_sum: usize = epochs.iter().map(|e| e.samples_taken).sum();
        assert_eq!(run.collected, collected_sum);
    }
}
