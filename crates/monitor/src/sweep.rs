//! Rate sweeps: the cost-vs-quality frontier and its knee (the title's
//! "sweet spot").
//!
//! Sweep a fleet across sampling-rate multipliers, record (cost, NRMSE,
//! recall) per point, and locate the knee — the point closest to the utopia
//! corner (minimum cost, minimum error) in normalized log-cost × error
//! space.

use crate::device::SimDevice;
use crate::system::{MonitoringSystem, Policy};
use serde::{Deserialize, Serialize};
use sweetspot_timeseries::Seconds;

/// One point on the cost-vs-quality curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Rate multiplier relative to production defaults.
    pub rate_multiplier: f64,
    /// Total cost units.
    pub cost: f64,
    /// Samples collected per device-day.
    pub samples_per_day: f64,
    /// Mean reconstruction NRMSE over the fleet.
    pub nrmse: f64,
    /// Mean event recall over the fleet.
    pub event_recall: f64,
}

/// Sweeps fixed-rate policies at each multiplier of the production rate.
///
/// # Panics
/// Panics if `multipliers` is empty or non-positive values are present.
pub fn rate_sweep(
    system: &MonitoringSystem,
    devices: &mut [SimDevice],
    multipliers: &[f64],
    duration: Seconds,
) -> Vec<SweepPoint> {
    assert!(!multipliers.is_empty(), "need at least one multiplier");
    assert!(
        multipliers.iter().all(|&m| m > 0.0),
        "multipliers must be positive"
    );
    multipliers
        .iter()
        .map(|&m| {
            let outcome = system.run_fleet(devices, &Policy::ProductionScaled(m), duration);
            let days = duration.value() / 86_400.0;
            SweepPoint {
                rate_multiplier: m,
                cost: outcome.cost.total(),
                samples_per_day: outcome.cost.samples_collected as f64
                    / (devices.len() as f64 * days),
                nrmse: outcome.mean_nrmse,
                event_recall: outcome.mean_event_recall,
            }
        })
        .collect()
}

/// Finds the knee of a sweep: the point minimizing the normalized distance
/// to the utopia corner `(min log-cost, min error)`.
///
/// Returns `None` for empty input or when no point has finite error.
pub fn knee_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    let finite: Vec<&SweepPoint> = points.iter().filter(|p| p.nrmse.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    let (min_c, max_c) = finite.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.cost.ln()), hi.max(p.cost.ln()))
    });
    let (min_e, max_e) = finite.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.nrmse), hi.max(p.nrmse))
    });
    let c_span = (max_c - min_c).max(1e-12);
    let e_span = (max_e - min_e).max(1e-12);
    finite
        .into_iter()
        .min_by(|a, b| {
            let da = dist(a, min_c, c_span, min_e, e_span);
            let db = dist(b, min_c, c_span, min_e, e_span);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
}

fn dist(p: &SweepPoint, min_c: f64, c_span: f64, min_e: f64, e_span: f64) -> f64 {
    let c = (p.cost.ln() - min_c) / c_span;
    let e = (p.nrmse - min_e) / e_span;
    (c * c + e * e).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};

    fn devices(n: usize) -> Vec<SimDevice> {
        (0..n)
            .map(|i| {
                SimDevice::new(DeviceTrace::synthesize(
                    MetricProfile::for_kind(MetricKind::Temperature),
                    i,
                    21,
                ))
            })
            .collect()
    }

    #[test]
    fn sweep_cost_increases_with_rate() {
        let system = MonitoringSystem::default();
        let mut devs = devices(2);
        let points = rate_sweep(
            &system,
            &mut devs,
            &[0.1, 1.0, 4.0],
            Seconds::from_days(2.0),
        );
        assert_eq!(points.len(), 3);
        assert!(points[0].cost < points[1].cost && points[1].cost < points[2].cost);
        assert!(points[0].samples_per_day < points[2].samples_per_day);
    }

    #[test]
    fn sweep_quality_improves_with_rate() {
        let system = MonitoringSystem::default();
        let mut devs = devices(2);
        let points = rate_sweep(
            &system,
            &mut devs,
            &[0.02, 1.0],
            Seconds::from_days(4.0),
        );
        assert!(
            points[1].nrmse < points[0].nrmse,
            "faster polling must reconstruct better: {points:?}"
        );
    }

    #[test]
    fn knee_prefers_low_cost_low_error() {
        let mk = |m: f64, cost: f64, nrmse: f64| SweepPoint {
            rate_multiplier: m,
            cost,
            samples_per_day: cost,
            nrmse,
            event_recall: 1.0,
        };
        let points = vec![
            mk(0.01, 10.0, 0.9),   // cheap but terrible
            mk(0.1, 100.0, 0.05),  // the knee
            mk(1.0, 1000.0, 0.04), // 10× cost for 1% better
            mk(10.0, 10_000.0, 0.039),
        ];
        let knee = knee_point(&points).unwrap();
        assert_eq!(knee.rate_multiplier, 0.1, "knee at {knee:?}");
    }

    #[test]
    fn knee_of_empty_is_none() {
        assert!(knee_point(&[]).is_none());
        let bad = [SweepPoint {
            rate_multiplier: 1.0,
            cost: 1.0,
            samples_per_day: 1.0,
            nrmse: f64::INFINITY,
            event_recall: 0.0,
        }];
        assert!(knee_point(&bad).is_none());
    }
}
