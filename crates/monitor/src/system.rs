//! The monitoring-system façade: one call from policy to cost + quality.

use crate::cost::{CostModel, CostReport};
use crate::device::SimDevice;
use crate::poller::{AdaptivePlan, FixedRatePlan, PolicyRun, PosterioriPlan};
use crate::quality::{evaluate, QualityConfig, QualityReport};
use sweetspot_core::adaptive::AdaptiveConfig;
use sweetspot_core::estimator::NyquistConfig;
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, IrregularSeries, Seconds};

/// A sampling policy the system can run.
#[derive(Debug, Clone, Copy)]
pub enum Policy {
    /// Poll at each metric's production default rate (today's baseline).
    ProductionDefault,
    /// Poll every device at one fixed rate.
    FixedRate(Hertz),
    /// Poll at a multiple of each device's production rate (for sweeps).
    ProductionScaled(f64),
    /// §4's a-posteriori thinning: collect at the production rate, store at
    /// the estimated Nyquist rate.
    PosterioriNyquist {
        /// Store at `headroom × estimate`.
        headroom: f64,
    },
    /// §4.2's dynamic sampler.
    Adaptive(AdaptiveConfig),
}

/// Outcome of running a policy on one device.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Device identity.
    pub meta: TraceMeta,
    /// Cost charged.
    pub cost: CostReport,
    /// Quality achieved (`None` if the record was too sparse to evaluate).
    pub quality: Option<QualityReport>,
    /// Samples stored per day of simulation.
    pub stored_per_day: f64,
}

/// Fleet-level aggregate.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-device outcomes.
    pub devices: Vec<RunOutcome>,
    /// Total cost.
    pub cost: CostReport,
    /// Mean NRMSE over evaluable devices.
    pub mean_nrmse: f64,
    /// Mean event recall over evaluable devices.
    pub mean_event_recall: f64,
}

/// The system under study: a cost model plus quality settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitoringSystem {
    /// Resource prices.
    pub cost_model: CostModel,
    /// Quality evaluation settings.
    pub quality: QualityConfig,
}

impl MonitoringSystem {
    /// Runs `policy` on one device for `duration`.
    pub fn run_device(
        &self,
        device: &mut SimDevice,
        policy: &Policy,
        duration: Seconds,
    ) -> RunOutcome {
        let production = device.trace().profile().production_rate();
        let run: PolicyRun = match policy {
            Policy::ProductionDefault => FixedRatePlan { rate: production }.run(device, duration),
            Policy::FixedRate(rate) => FixedRatePlan { rate: *rate }.run(device, duration),
            Policy::ProductionScaled(mult) => FixedRatePlan {
                rate: Hertz(production.value() * mult),
            }
            .run(device, duration),
            Policy::PosterioriNyquist { headroom } => PosterioriPlan {
                acquisition_rate: production,
                estimator: NyquistConfig::default(),
                headroom: *headroom,
            }
            .run(device, duration),
            Policy::Adaptive(config) => AdaptivePlan { config: *config }.run(device, duration),
        };
        let cost = CostReport::from_counts(&self.cost_model, run.collected, run.stored.len());
        let stored_series = IrregularSeries::from_pairs(run.stored.clone());
        let quality = evaluate(device, &stored_series, duration, self.quality);
        RunOutcome {
            meta: device.meta().clone(),
            cost,
            quality,
            stored_per_day: run.stored.len() as f64 / (duration.value() / 86_400.0),
        }
    }

    /// Runs `policy` over a whole fleet, aggregating cost and quality.
    pub fn run_fleet(
        &self,
        devices: &mut [SimDevice],
        policy: &Policy,
        duration: Seconds,
    ) -> FleetOutcome {
        let mut outcomes = Vec::with_capacity(devices.len());
        for device in devices.iter_mut() {
            outcomes.push(self.run_device(device, policy, duration));
        }
        let mut cost = CostReport::default();
        for o in &outcomes {
            cost.accumulate(&o.cost);
        }
        let evaluable: Vec<&QualityReport> =
            outcomes.iter().filter_map(|o| o.quality.as_ref()).collect();
        let mean_nrmse = if evaluable.is_empty() {
            f64::INFINITY
        } else {
            evaluable.iter().map(|q| q.nrmse).sum::<f64>() / evaluable.len() as f64
        };
        let mean_event_recall = if evaluable.is_empty() {
            0.0
        } else {
            evaluable.iter().map(|q| q.event_recall()).sum::<f64>() / evaluable.len() as f64
        };
        FleetOutcome {
            devices: outcomes,
            cost,
            mean_nrmse,
            mean_event_recall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};

    fn devices(n: usize) -> Vec<SimDevice> {
        (0..n)
            .map(|i| {
                SimDevice::new(DeviceTrace::synthesize(
                    MetricProfile::for_kind(MetricKind::Temperature),
                    i,
                    5,
                ))
            })
            .collect()
    }

    #[test]
    fn production_default_runs_and_evaluates() {
        let system = MonitoringSystem::default();
        let mut devs = devices(1);
        let out = system.run_device(&mut devs[0], &Policy::ProductionDefault, Seconds::from_days(2.0));
        assert!(out.cost.samples_collected >= 560);
        let q = out.quality.expect("dense record evaluates");
        assert!(q.nrmse < 0.2, "NRMSE {}", q.nrmse);
    }

    #[test]
    fn posteriori_cuts_storage_not_collection() {
        let system = MonitoringSystem::default();
        let duration = Seconds::from_days(2.0);
        let mut base_dev = crate::testutil::thinnable_device(5);
        let mut post_dev = crate::testutil::thinnable_device(5);
        let base = system.run_device(&mut base_dev, &Policy::ProductionDefault, duration);
        let post = system.run_device(
            &mut post_dev,
            &Policy::PosterioriNyquist { headroom: 1.25 },
            duration,
        );
        // Same acquisition rate; the posteriori path re-grids lost samples,
        // so counts differ by at most the ~0.2% drop rate plus a fence-post.
        let diff = base.cost.samples_collected.abs_diff(post.cost.samples_collected);
        assert!(
            diff <= base.cost.samples_collected / 50 + 1,
            "acquisition counts should nearly match: {} vs {}",
            base.cost.samples_collected,
            post.cost.samples_collected
        );
        assert!(
            post.cost.samples_stored * 2 <= base.cost.samples_stored,
            "posteriori should store ≥2× less: {} vs {}",
            post.cost.samples_stored,
            base.cost.samples_stored
        );
        assert!(post.cost.total() < base.cost.total());
    }

    #[test]
    fn scaled_policy_scales_cost() {
        let system = MonitoringSystem::default();
        let duration = Seconds::from_days(1.0);
        let mut devs = devices(2);
        let full = system.run_device(&mut devs[0], &Policy::ProductionScaled(1.0), duration);
        let tenth = system.run_device(&mut devs[1], &Policy::ProductionScaled(0.1), duration);
        let ratio = full.cost.samples_collected as f64 / tenth.cost.samples_collected as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fleet_aggregation() {
        let system = MonitoringSystem::default();
        let mut devs = devices(3);
        let fleet = system.run_fleet(&mut devs, &Policy::ProductionDefault, Seconds::from_days(1.0));
        assert_eq!(fleet.devices.len(), 3);
        let sum: usize = fleet.devices.iter().map(|d| d.cost.samples_collected).sum();
        assert_eq!(fleet.cost.samples_collected, sum);
        assert!(fleet.mean_nrmse.is_finite());
        assert!(fleet.mean_event_recall >= 0.0 && fleet.mean_event_recall <= 1.0);
    }
}
