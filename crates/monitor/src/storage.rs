//! The collector's sample store.
//!
//! A deliberately small time-series store: per-trace append-only sample
//! logs with byte accounting and retention trimming. [`std::sync::RwLock`]
//! guards the map so fleet runs can ingest from worker threads.

use std::sync::RwLock;
use std::collections::HashMap;
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{IrregularSeries, Seconds};

/// Append-only sample store keyed by trace identity.
#[derive(Debug, Default)]
pub struct SampleStore {
    inner: RwLock<HashMap<TraceMeta, Vec<(Seconds, f64)>>>,
    bytes_per_sample: f64,
}

impl SampleStore {
    /// Creates a store accounting `bytes_per_sample` per retained sample.
    pub fn new(bytes_per_sample: f64) -> Self {
        SampleStore {
            inner: RwLock::new(HashMap::new()),
            bytes_per_sample,
        }
    }

    /// Appends samples for a trace.
    pub fn ingest(&self, meta: &TraceMeta, samples: impl IntoIterator<Item = (Seconds, f64)>) {
        let mut map = self.inner.write().expect("store lock poisoned");
        map.entry(meta.clone()).or_default().extend(samples);
    }

    /// Number of samples retained for one trace.
    pub fn sample_count(&self, meta: &TraceMeta) -> usize {
        self.inner.read().expect("store lock poisoned").get(meta).map_or(0, |v| v.len())
    }

    /// Total samples retained.
    pub fn total_samples(&self) -> usize {
        self.inner.read().expect("store lock poisoned").values().map(|v| v.len()).sum()
    }

    /// Total bytes retained.
    pub fn total_bytes(&self) -> f64 {
        self.total_samples() as f64 * self.bytes_per_sample
    }

    /// Number of distinct traces.
    pub fn trace_count(&self) -> usize {
        self.inner.read().expect("store lock poisoned").len()
    }

    /// Reads one trace back as an irregular series (sorted by time).
    pub fn read(&self, meta: &TraceMeta) -> Option<IrregularSeries> {
        let map = self.inner.read().expect("store lock poisoned");
        let samples = map.get(meta)?;
        if samples.is_empty() {
            return None;
        }
        Some(IrregularSeries::from_pairs(samples.clone()))
    }

    /// Drops samples older than `horizon` (retention trimming). Returns the
    /// number of samples dropped.
    pub fn trim_before(&self, horizon: Seconds) -> usize {
        let mut map = self.inner.write().expect("store lock poisoned");
        let mut dropped = 0;
        for samples in map.values_mut() {
            let before = samples.len();
            samples.retain(|(t, _)| t.value() >= horizon.value());
            dropped += before - samples.len();
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> TraceMeta {
        TraceMeta {
            metric: "m".into(),
            device: name.into(),
        }
    }

    #[test]
    fn ingest_and_count() {
        let store = SampleStore::new(32.0);
        store.ingest(&meta("a"), vec![(Seconds(0.0), 1.0), (Seconds(1.0), 2.0)]);
        store.ingest(&meta("b"), vec![(Seconds(0.0), 3.0)]);
        assert_eq!(store.sample_count(&meta("a")), 2);
        assert_eq!(store.total_samples(), 3);
        assert_eq!(store.trace_count(), 2);
        assert_eq!(store.total_bytes(), 96.0);
    }

    #[test]
    fn ingest_appends() {
        let store = SampleStore::new(32.0);
        store.ingest(&meta("a"), vec![(Seconds(0.0), 1.0)]);
        store.ingest(&meta("a"), vec![(Seconds(1.0), 2.0)]);
        assert_eq!(store.sample_count(&meta("a")), 2);
    }

    #[test]
    fn read_returns_sorted_series() {
        let store = SampleStore::new(32.0);
        store.ingest(
            &meta("a"),
            vec![(Seconds(5.0), 2.0), (Seconds(1.0), 1.0), (Seconds(9.0), 3.0)],
        );
        let s = store.read(&meta("a")).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert!(store.read(&meta("missing")).is_none());
    }

    #[test]
    fn trim_drops_old_samples() {
        let store = SampleStore::new(32.0);
        store.ingest(
            &meta("a"),
            (0..10).map(|i| (Seconds(i as f64), i as f64)).collect::<Vec<_>>(),
        );
        let dropped = store.trim_before(Seconds(5.0));
        assert_eq!(dropped, 5);
        assert_eq!(store.sample_count(&meta("a")), 5);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        let store = Arc::new(SampleStore::new(32.0));
        let mut handles = Vec::new();
        for d in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.ingest(
                        &meta(&format!("dev{d}")),
                        vec![(Seconds(i as f64), i as f64)],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.total_samples(), 400);
    }
}
