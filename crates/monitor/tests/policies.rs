//! Integration tests of the monitoring simulator's policy space.

use sweetspot_core::adaptive::AdaptiveConfig;
use sweetspot_monitor::device::SimDevice;
use sweetspot_monitor::storage::SampleStore;
use sweetspot_monitor::system::{MonitoringSystem, Policy};
use sweetspot_telemetry::events::{Event, EventKind};
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::ingest::TraceMeta;
use sweetspot_timeseries::{Hertz, Seconds};

#[test]
fn all_policies_run_on_a_mixed_fleet() {
    let system = MonitoringSystem::default();
    let duration = Seconds::from_days(2.0);
    let policies = [
        Policy::ProductionDefault,
        Policy::ProductionScaled(0.5),
        Policy::PosterioriNyquist { headroom: 1.25 },
        Policy::Adaptive(AdaptiveConfig {
            initial_rate: Hertz(1.0 / 300.0),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(1.0 / 30.0),
            epoch: Seconds::from_hours(12.0),
            ..AdaptiveConfig::default()
        }),
    ];
    for policy in &policies {
        let mut devices: Vec<SimDevice> = [MetricKind::Temperature, MetricKind::LinkUtil]
            .iter()
            .flat_map(|&kind| {
                (0..2).map(move |i| {
                    SimDevice::new(DeviceTrace::synthesize(
                        MetricProfile::for_kind(kind),
                        i,
                        0x90D5,
                    ))
                })
            })
            .collect();
        let outcome = system.run_fleet(&mut devices, policy, duration);
        assert_eq!(outcome.devices.len(), 4);
        assert!(outcome.cost.total() > 0.0, "{policy:?}");
        assert!(
            outcome.devices.iter().filter(|d| d.quality.is_some()).count() >= 3,
            "{policy:?}: most devices must be evaluable"
        );
    }
}

#[test]
fn event_detection_latency_scales_with_polling_interval() {
    // A 1-hour level shift: 5-minute polls catch it within minutes, hourly
    // polls within the hour.
    let mk = |idx: usize| {
        let profile = MetricProfile::for_kind(MetricKind::Temperature);
        let trace = DeviceTrace::synthesize(profile, idx, 0x1A7E)
            .with_events(vec![Event::new(
                EventKind::LevelShift,
                40_000.0,
                3600.0,
                20.0,
            )]);
        SimDevice::new(trace)
    };
    let system = MonitoringSystem::default();
    let duration = Seconds::from_days(1.0);

    let fast = system.run_device(&mut mk(0), &Policy::FixedRate(Hertz(1.0 / 300.0)), duration);
    let slow = system.run_device(&mut mk(0), &Policy::FixedRate(Hertz(1.0 / 3000.0)), duration);
    let qf = fast.quality.unwrap();
    let qs = slow.quality.unwrap();
    assert_eq!(qf.events_covered, 1);
    assert_eq!(qs.events_covered, 1, "an hour-long event is still visible");
    let lf = qf.mean_detection_latency.unwrap();
    let ls = qs.mean_detection_latency.unwrap();
    assert!(
        lf.value() <= ls.value() + 1e-9,
        "fast polling must not detect later: {lf} vs {ls}"
    );
    assert!(lf.value() <= 300.0);
}

#[test]
fn storage_retention_trims_and_accounts() {
    let store = SampleStore::new(32.0);
    let meta = TraceMeta {
        metric: "m".into(),
        device: "d".into(),
    };
    store.ingest(
        &meta,
        (0..1000).map(|i| (Seconds(i as f64 * 60.0), i as f64)),
    );
    assert_eq!(store.total_samples(), 1000);
    let before_bytes = store.total_bytes();
    // Retain only the last ~500 minutes.
    let dropped = store.trim_before(Seconds(500.0 * 60.0));
    assert_eq!(dropped, 500);
    assert_eq!(store.total_samples(), 500);
    assert!(store.total_bytes() < before_bytes);
    // The retained series is intact and sorted.
    let series = store.read(&meta).unwrap();
    assert_eq!(series.len(), 500);
    assert_eq!(series.values()[0], 500.0);
}

#[test]
fn adaptive_policy_raises_rate_for_undersampled_devices() {
    // Find an undersampled link-util device: production polling misses its
    // band. The adaptive controller must end up sampling FASTER than
    // production (quality first), not slower.
    let profile = MetricProfile::for_kind(MetricKind::LinkUtil);
    let trace = (0..100)
        .map(|i| DeviceTrace::synthesize(profile, i, 0xFA57))
        .find(|d| d.is_undersampled_at_production_rate())
        .expect("undersampled device");
    let production = profile.production_rate();
    let mut device = SimDevice::new(trace);
    let mut controller = sweetspot_core::adaptive::AdaptiveSampler::new(AdaptiveConfig {
        initial_rate: production,
        min_rate: Hertz(1e-6),
        max_rate: Hertz(10.0),
        epoch: Seconds::from_hours(2.0),
        ..AdaptiveConfig::default()
    });
    let reports = {
        let mut source = sweetspot_monitor::device::DeviceSource(&mut device);
        controller.run(&mut source, Seconds::from_days(1.0))
    };
    let last = reports.last().unwrap();
    assert!(
        last.primary_rate.value() > production.value(),
        "controller must escalate above production for an aliased device: {} vs {}",
        last.primary_rate,
        production
    );
}

#[test]
fn quiet_devices_cost_almost_nothing_under_posteriori() {
    // A quiescent FCS counter: the posteriori policy should store a tiny
    // fraction of what it collects.
    let profile = MetricProfile::for_kind(MetricKind::FcsErrors);
    let trace = (0..50)
        .map(|i| DeviceTrace::synthesize(profile, i, 0x9135))
        .find(|d| d.is_quiet())
        .expect("quiet device");
    let mut device = SimDevice::new(trace);
    let system = MonitoringSystem::default();
    let outcome = system.run_device(
        &mut device,
        &Policy::PosterioriNyquist { headroom: 1.25 },
        Seconds::from_days(1.0),
    );
    let kept = outcome.cost.samples_stored as f64 / outcome.cost.samples_collected as f64;
    assert!(
        kept < 0.01,
        "a flat counter should keep <1% of samples, kept {:.3}",
        kept
    );
}
