//! **A1** — the 99% energy-cutoff ablation (§3.2's discussion of 99.99%):
//! tighter cutoffs raise the estimated rate but barely improve
//! reconstruction, because the extra captured energy is mostly noise.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::ablation;

fn print_figure() {
    println!("A1: energy-cutoff ablation (temperature devices)");
    println!("cutoff    mean est. rate (Hz)   mean interior NRMSE");
    for row in ablation::cutoff(0xAB1E, 8, &[0.99, 0.999, 0.9999]) {
        println!(
            "{:<8}  {:<20.4e}  {:.5}",
            row.cutoff, row.mean_rate, row.mean_nrmse
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    c.bench_function("ablation/cutoff_3_levels_4_devices", |b| {
        b.iter(|| black_box(ablation::cutoff(0xAB1E, 4, &[0.99, 0.999, 0.9999])))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
