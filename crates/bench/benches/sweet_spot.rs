//! **E9 / the title experiment** — the cost-vs-quality frontier, its knee,
//! and the §4 policies placed on the same axes.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::sweetspot;

fn print_figure() {
    println!(
        "{}",
        sweetspot::run(0x54EE7, 4, 3.0, &[0.01, 0.03, 0.1, 0.3, 1.0, 3.0]).render()
    );
}

fn bench(c: &mut Criterion) {
    c.bench_function("sweet_spot/2dev_2day_3rates", |b| {
        b.iter(|| black_box(sweetspot::run(0x54EE7, 1, 2.0, &[0.1, 1.0, 3.0])))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
