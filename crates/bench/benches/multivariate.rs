//! **A6 / §6 "Multivariate signals"** — per-signal Nyquist sampling
//! preserves cross-correlations; under-sampling destroys them.

use criterion::{criterion_group, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::multivariate::{correlation_preservation, estimate_joint};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

fn correlated_pair(n: usize) -> (RegularSeries, RegularSeries) {
    let make = |own_f: f64, own_phase: f64| {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (2.0 * PI * 0.05 * t).sin() + 0.25 * (2.0 * PI * own_f * t + own_phase).sin()
            })
            .collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0), values)
    };
    (make(0.003, 0.5), make(0.0017, 2.0))
}

fn print_figure() {
    let mut planner = FftPlanner::new();
    let mut est = NyquistEstimator::new(NyquistConfig::default());
    let (a, b) = correlated_pair(8192);
    let joint = estimate_joint(&mut est, &[a.clone(), b.clone()]);
    println!("A6: multivariate signals (shared 0.05 Hz tone + idiosyncratic low tones)");
    println!(
        "  per-signal estimates: {:?}",
        joint
            .per_signal
            .iter()
            .map(|e| e.rate().map(|r| r.value()))
            .collect::<Vec<_>>()
    );
    println!("  joint (max) rate: {:?}", joint.joint.rate().map(|r| r.value()));
    for rate in [0.13, 0.013] {
        let r = correlation_preservation(&mut planner, &a, &b, Hertz(rate));
        println!(
            "  resample at {rate} Hz: corr {:.3} → {:.3}  (Δ {:.3})",
            r.original, r.reconstructed, r.delta
        );
    }
    println!("  → above the joint Nyquist rate the correlation survives; below, it dies\n");
}

fn bench(c: &mut Criterion) {
    let (a, b) = correlated_pair(4096);
    c.bench_function("multivariate/correlation_roundtrip_4096", |bch| {
        let mut planner = FftPlanner::new();
        bch.iter(|| black_box(correlation_preservation(&mut planner, &a, &b, Hertz(0.13))))
    });
    c.bench_function("multivariate/joint_estimate_4096x2", |bch| {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        bch.iter(|| black_box(estimate_joint(&mut est, &[a.clone(), b.clone()])))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
