//! **A3** — §4.2 adaptation memory: probe epochs needed to clear aliasing
//! when a high-frequency episode recurs, with and without remembering past
//! maxima.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::ablation;

fn print_figure() {
    let m = ablation::adaptive_memory();
    println!("A3: re-ramp cost on a recurring flap episode");
    println!(
        "  probe (aliased) epochs during the second episode: \
         with memory = {}, without = {}\n",
        m.with_memory, m.without_memory
    );
}

fn bench(c: &mut Criterion) {
    c.bench_function("ablation/adaptive_two_flap_run", |b| {
        b.iter(|| black_box(ablation::adaptive_memory()))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
