//! **E6 / Figure 6** — temperature downsample-to-Nyquist → reconstruct;
//! the L2 ≈ 0 demonstration.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig6;

fn print_figure() {
    println!("{}", fig6::run(0xF16, 7.0).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig6/week_of_5min_polls", |b| {
        b.iter(|| black_box(fig6::run(0xF16, 7.0)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
