//! **E4 / Figure 4** — CDFs of the possible reduction ratio per metric.
//! Prints three representative ASCII panels and all panel quantiles.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig4;
use sweetspot_analysis::study::{FleetStudy, StudyConfig};
use sweetspot_telemetry::{FleetConfig, MetricKind};
use sweetspot_timeseries::Seconds;

fn study_config(devices: usize) -> StudyConfig {
    StudyConfig {
        fleet: FleetConfig {
            seed: 0xF1_6004,
            devices_per_metric: devices,
            trace_duration: Seconds::from_days(1.0),
        },
        ..StudyConfig::default()
    }
}

fn print_figure() {
    let fig = fig4::run(study_config(40));
    println!("Figure 4 panel quantiles (40 devices/metric):");
    for p in &fig.panels {
        if p.cdf.is_empty() {
            continue;
        }
        println!(
            "  [{:<18}] n={:<3} median={:>7.1}x  p90={:>7.1}x  max={:>7.1}x",
            p.kind.name(),
            p.cdf.len(),
            p.cdf.quantile(0.5),
            p.cdf.quantile(0.9),
            p.cdf.quantile(1.0)
        );
    }
    println!();
    for kind in [MetricKind::Temperature, MetricKind::FcsErrors] {
        if let Some(panel) = fig.panels.iter().find(|p| p.kind == kind) {
            println!(
                "{}",
                sweetspot_analysis::report::cdf_ascii(
                    &format!("[{}]", kind),
                    &panel.cdf,
                    0..4
                )
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let study = FleetStudy::run(study_config(8));
    c.bench_function("fig4/cdfs_from_study", |b| {
        b.iter(|| black_box(fig4::from_study(&study)))
    });
    c.bench_function("fig4/study_8_devices_per_metric", |b| {
        b.iter(|| black_box(FleetStudy::run(study_config(8))))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
