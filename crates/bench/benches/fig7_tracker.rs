//! **E7 / Figure 7** — the inferred Nyquist rate over time (6-hour moving
//! window stepping every 5 minutes).

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig7;

fn print_figure() {
    println!("{}", fig7::run(0xF16, 7.0).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig7/track_week_6h_windows", |b| {
        b.iter(|| black_box(fig7::run(0xF16, 7.0)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
