//! **E3 / Figure 3** — the 400+440 Hz two-tone at 890/800/600 Hz: spectra
//! and reconstruction quality per variant.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig3;

fn print_figure() {
    println!("{}", fig3::run(2.0).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig3/two_tone_2s", |b| b.iter(|| black_box(fig3::run(2.0))));
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
