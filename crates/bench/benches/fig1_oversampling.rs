//! **E1 / Figure 1** — fraction of devices sampling above the Nyquist rate,
//! per metric. Prints the bar chart at fleet scale, then times the study.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig1;
use sweetspot_analysis::study::StudyConfig;
use sweetspot_telemetry::FleetConfig;
use sweetspot_timeseries::Seconds;

fn study_config(devices: usize) -> StudyConfig {
    StudyConfig {
        fleet: FleetConfig {
            seed: 0xF1_6001,
            devices_per_metric: devices,
            trace_duration: Seconds::from_days(1.0),
        },
        ..StudyConfig::default()
    }
}

fn print_figure() {
    println!("{}", fig1::run(study_config(40)).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig1/study_4_devices_per_metric", |b| {
        b.iter(|| black_box(fig1::run(study_config(4))))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
