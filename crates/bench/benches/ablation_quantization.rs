//! **A4** — quantization ablation (§4.3): coarser sensor quanta vs the
//! estimator's stability and reconstruction fidelity.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::ablation;

fn print_figure() {
    println!("A4: quantization-step sweep on a temperature device");
    println!("step     est. Nyquist rate (Hz)  interior NRMSE (requantized)");
    for row in ablation::quantization(0xAB4E, &[0.01, 0.1, 0.5, 1.0, 2.0]) {
        println!(
            "{:<7}  {:<22.4e}  {:.5}",
            row.step, row.estimated_rate, row.interior_nrmse
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    c.bench_function("ablation/quantization_3_steps", |b| {
        b.iter(|| black_box(ablation::quantization(0xAB4E, &[0.01, 0.5, 2.0])))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
