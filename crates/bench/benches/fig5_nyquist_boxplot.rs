//! **E5 / Figure 5** — box plot of estimated Nyquist rates per metric.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig5;
use sweetspot_analysis::study::{FleetStudy, StudyConfig};
use sweetspot_telemetry::FleetConfig;
use sweetspot_timeseries::Seconds;

fn study_config(devices: usize) -> StudyConfig {
    StudyConfig {
        fleet: FleetConfig {
            seed: 0xF1_6005,
            devices_per_metric: devices,
            trace_duration: Seconds::from_days(1.0),
        },
        ..StudyConfig::default()
    }
}

fn print_figure() {
    println!("{}", fig5::run(study_config(40)).render());
}

fn bench(c: &mut Criterion) {
    let study = FleetStudy::run(study_config(8));
    c.bench_function("fig5/boxplot_from_study", |b| {
        b.iter(|| black_box(fig5::from_study(&study)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
