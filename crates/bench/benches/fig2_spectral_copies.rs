//! **E2 / Figure 2** — spectral copies under different sampling rates.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::fig2;

fn print_figure() {
    println!("{}", fig2::run(100.0, &[400.0, 250.0, 150.0, 90.0], 4.0).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig2/four_rates_4s", |b| {
        b.iter(|| black_box(fig2::run(100.0, &[400.0, 250.0, 150.0, 90.0], 4.0)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
