//! Fleet-level adaptive simulation benchmarks: what one shared-budget
//! scheduling run costs, per policy, on a small fleet — plus the
//! large-fleet rows this engine is scaled by.
//!
//! Two rows bracket the engine: the uncapped baseline (pure controller
//! stepping, no arbitration) and weighted water-filling under a binding
//! budget (scheduling + deferral bookkeeping on top). Both run single
//! threaded so the numbers track engine work, not thread scaling. The
//! `waterfill_20k_2ep` row exercises the scaled 2×10⁴-pair fleet end to
//! end (its `_metrics` twin re-runs it with the full `--metrics-out`
//! recorder attached, and its `_watchdog` twin with the recovery slice
//! armed — each pair pins a ≤2% overhead budget), and the `sched_100k_*`
//! rows isolate the scheduler at 10⁵
//! requests:
//! incremental order maintenance (steady fleet, ~1% churn) against the
//! from-scratch re-sort reference.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::fleetsim::{
    self, scenario::ScenarioSpec, scheduler, scheduler::SchedulerPolicy, FleetSimConfig,
};
use sweetspot_telemetry::FleetConfig;
use sweetspot_timeseries::Seconds;

fn config() -> FleetSimConfig {
    FleetSimConfig {
        fleet: FleetConfig {
            seed: 0xBE7C4,
            devices_per_metric: 2,
            trace_duration: Seconds::from_days(1.0),
        },
        days: 3.0,
        threads: 1,
        ..FleetSimConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let cfg = config();

    // Print the headline once so the bench doubles as a reproduction run.
    let uncapped = fleetsim::run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
    let steady = uncapped.ledger.accounts().last().map_or(0.0, |a| a.spent);
    println!(
        "fleet_adaptive: {} devices x {} epochs, uncapped coverage {:.4}, steady demand {:.0}/ep",
        uncapped.devices, uncapped.epochs, uncapped.quality.mean_coverage, steady
    );

    c.bench_function("fleet_adaptive/uncapped_28dev_3ep", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
            black_box(out.quality.mean_coverage)
        })
    });

    let budget = steady * 0.25;
    c.bench_function("fleet_adaptive/waterfill_28dev_3ep_quarter_budget", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&cfg, SchedulerPolicy::WaterFill, budget);
            black_box(out.quality.mean_coverage)
        })
    });

    // Large-fleet variant: a 2×10⁴-pair round-robin fleet, two lockstep
    // epochs under a binding budget — the zero-allocation epoch loop and the
    // incremental scheduler together, at scale.
    let large = FleetSimConfig {
        devices: Some(20_000),
        days: 2.0,
        threads: 1,
        ..FleetSimConfig::default()
    };
    c.bench_function("fleet_adaptive/waterfill_20k_2ep", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&large, SchedulerPolicy::WaterFill, 200_000.0);
            black_box(out.quality.mean_coverage)
        })
    });

    // The metrics-on twin of the row above: full recorder attached (journal,
    // grant histogram, JSONL emission into a pre-grown in-memory buffer).
    // The pair pins the observability overhead — the delta between these
    // two rows is the whole cost of `--metrics-out`, and it must stay ≤2%.
    c.bench_function("fleet_adaptive/waterfill_20k_2ep_metrics", |b| {
        b.iter(|| {
            let mut rec = fleetsim::metrics::MetricsRecorder::in_memory();
            rec.reserve(1 << 20);
            let out = fleetsim::run_policy_recorded(
                &large,
                SchedulerPolicy::WaterFill,
                200_000.0,
                Some(&mut rec),
            );
            black_box((out.quality.mean_coverage, rec.buffer().len()))
        })
    });

    // Same fleet with the scenario engine dealt in (churn preset): what the
    // per-epoch event pass plus lifecycle bookkeeping costs on top of the
    // healthy waterfill row above.
    let churned = FleetSimConfig {
        scenario: ScenarioSpec::churn(),
        ..large
    };
    c.bench_function("fleet_adaptive/scenario_churn_20k", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&churned, SchedulerPolicy::WaterFill, 200_000.0);
            black_box(out.quality.mean_coverage)
        })
    });

    // The watchdog twin of the healthy 20k row: recovery slice armed at 10%
    // of capacity. On a healthy fleet the watchdog pass degenerates to a
    // serial health-census sweep (no suspects, no re-probes), so the delta
    // between this row and `waterfill_20k_2ep` is the pure per-epoch cost of
    // arming `--recovery-budget-frac` — and it must stay ≤2%.
    let watched = FleetSimConfig {
        recovery_budget_frac: 0.1,
        ..large
    };
    c.bench_function("fleet_adaptive/waterfill_20k_2ep_watchdog", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&watched, SchedulerPolicy::WaterFill, 200_000.0);
            black_box(out.quality.mean_coverage)
        })
    });

    // Scheduler isolation at 10⁵ requests: steady-fleet churn (~1% of
    // requests move per epoch) through the persistent incremental scheduler
    // vs. the stateless from-scratch reference (full re-sort per epoch).
    // Both rows churn from the same post-base RNG state, so per-iteration
    // workloads are identical and the comparison is apples to apples.
    let n = 100_000usize;
    let weights = vec![1.0f64; n];
    let production = vec![1.0f64; n];
    let mut state = 0x5EEDu64;
    let base: Vec<f64> = (0..n)
        .map(|_| (xorshift(&mut state) % 10_000) as f64 / 700.0)
        .collect();
    let churn_start = state;
    let capacity = base.iter().sum::<f64>() * 0.5;
    let churn = |requests: &mut Vec<f64>, state: &mut u64| {
        for _ in 0..n / 100 {
            let i = (xorshift(state) as usize) % n;
            requests[i] = (xorshift(state) % 10_000) as f64 / 700.0;
        }
    };

    c.bench_function("fleet_adaptive/sched_100k_incremental", |b| {
        let mut sched = SchedulerPolicy::WaterFill.scheduler(&weights, &production);
        let mut requests = base.clone();
        let mut grants = Vec::with_capacity(n);
        let mut state = churn_start;
        // Prime the persistent order once; iterations then model epochs.
        sched.allocate(&requests, capacity, &mut grants);
        b.iter(|| {
            churn(&mut requests, &mut state);
            sched.allocate(&requests, capacity, &mut grants);
            black_box(grants.len())
        })
    });

    c.bench_function("fleet_adaptive/sched_100k_fullsort", |b| {
        let mut requests = base.clone();
        let mut grants = Vec::with_capacity(n);
        let mut state = churn_start;
        b.iter(|| {
            churn(&mut requests, &mut state);
            scheduler::allocate(
                SchedulerPolicy::WaterFill,
                &requests,
                &weights,
                &production,
                capacity,
                &mut grants,
            );
            black_box(grants.len())
        })
    });
}

/// Deterministic xorshift64 for request-churn sequences (no rand dep in the
/// bench crate).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
