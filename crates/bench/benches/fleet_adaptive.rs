//! Fleet-level adaptive simulation benchmarks: what one shared-budget
//! scheduling run costs, per policy, on a small fleet.
//!
//! Two rows bracket the engine: the uncapped baseline (pure controller
//! stepping, no arbitration) and weighted water-filling under a binding
//! budget (scheduling + deferral bookkeeping on top). Both run single
//! threaded so the numbers track engine work, not thread scaling.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::fleetsim::{self, scheduler::SchedulerPolicy, FleetSimConfig};
use sweetspot_telemetry::FleetConfig;
use sweetspot_timeseries::Seconds;

fn config() -> FleetSimConfig {
    FleetSimConfig {
        fleet: FleetConfig {
            seed: 0xBE7C4,
            devices_per_metric: 2,
            trace_duration: Seconds::from_days(1.0),
        },
        days: 3.0,
        threads: 1,
        ..FleetSimConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let cfg = config();

    // Print the headline once so the bench doubles as a reproduction run.
    let uncapped = fleetsim::run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
    let steady = uncapped.ledger.accounts().last().map_or(0.0, |a| a.spent);
    println!(
        "fleet_adaptive: {} devices x {} epochs, uncapped coverage {:.4}, steady demand {:.0}/ep",
        uncapped.devices, uncapped.epochs, uncapped.quality.mean_coverage, steady
    );

    c.bench_function("fleet_adaptive/uncapped_28dev_3ep", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&cfg, SchedulerPolicy::Uncapped, f64::INFINITY);
            black_box(out.quality.mean_coverage)
        })
    });

    let budget = steady * 0.25;
    c.bench_function("fleet_adaptive/waterfill_28dev_3ep_quarter_budget", |b| {
        b.iter(|| {
            let out = fleetsim::run_policy(&cfg, SchedulerPolicy::WaterFill, budget);
            black_box(out.quality.mean_coverage)
        })
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
