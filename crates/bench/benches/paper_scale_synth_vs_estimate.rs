//! Paper-scale phase split: what the 1613-pair §3.2 study spends on trace
//! *synthesis* versus Nyquist *estimation*.
//!
//! PR 2 made estimation ~5× faster, leaving synthesis dominant; these rows
//! track whether the streaming generator holds its ≥2× win over the direct
//! `value_at` reference (run in-process, so the factor is load-independent)
//! and how the two phases compare after the rework.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_telemetry::{Fleet, TraceSynth};
use sweetspot_timeseries::clean::{clean_into, CleanConfig, CleanScratch};
use sweetspot_timeseries::{IrregularSeries, Seconds};

const SEED: u64 = 0x5EED_CAFE;

fn bench(c: &mut Criterion) {
    let fleet = Fleet::paper_scale(SEED);
    let day = Seconds::from_days(1.0);

    // Synthesis phase, streaming generator: all 1613 measured day-traces
    // through recycled buffers (exactly the study workers' synthesis load).
    c.bench_function("paper_scale/synthesize_1613_tonebank", |b| {
        let mut synth = TraceSynth::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        b.iter(|| {
            for trace in fleet.traces() {
                trace.production_trace_into(&mut synth, day, &mut times, &mut values);
            }
            black_box(values.last().copied())
        })
    });

    // Synthesis phase, pre-rework reference: per-sample `value_at` ground
    // truth and fresh buffers per trace.
    c.bench_function("paper_scale/synthesize_1613_direct", |b| {
        b.iter(|| {
            let mut last = None;
            for trace in fleet.traces() {
                let rate = trace.profile().production_rate();
                let truth = trace.model().sample(Seconds::ZERO, rate, day);
                let mut rng = StdRng::seed_from_u64(0xDA7A);
                last = trace.impairments().apply(&mut rng, &truth).values().last().copied();
            }
            black_box(last)
        })
    });

    // Estimation phase: pre-synthesized and pre-cleaned traces, so the row
    // times exactly the estimator's share of the study loop.
    c.bench_function("paper_scale/estimate_1613", |b| {
        let mut synth = TraceSynth::new();
        let mut scratch = CleanScratch::new();
        let cleaned: Vec<_> = fleet
            .traces()
            .iter()
            .filter_map(|trace| {
                let rate = trace.profile().production_rate();
                let mut times = Vec::new();
                let mut values = Vec::new();
                trace.production_trace_into(&mut synth, day, &mut times, &mut values);
                let raw = IrregularSeries::from_recycled(times, values);
                clean_into(
                    &raw,
                    CleanConfig { interval: Some(rate.period()), outlier_mads: Some(8.0) },
                    &mut scratch,
                )
                .ok()
                .filter(|s| s.len() >= 4)
            })
            .collect();
        let mut estimator = NyquistEstimator::new(NyquistConfig::default());
        b.iter(|| {
            let mut aliased = 0usize;
            for series in &cleaned {
                aliased += estimator.estimate_series(series).is_aliased() as usize;
            }
            black_box(aliased)
        })
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
