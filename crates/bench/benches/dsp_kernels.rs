//! DSP kernel microbenchmarks: the primitives every experiment sits on.
//!
//! Covers both FFT paths (radix-2 and Bluestein), PSD estimation, Goertzel,
//! Fourier resampling and the end-to-end Nyquist estimator.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::goertzel::goertzel_power;
use sweetspot_dsp::psd::{periodogram, welch, PsdConfig, WelchConfig};
use sweetspot_dsp::resample::resample_fft;
use sweetspot_dsp::Complex64;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.002 * t).sin() + 0.5 * (0.04 * t).sin() + 0.1 * (0.3 * t).cos()
        })
        .collect()
}

/// The pre-rework periodogram, kept as an in-run reference so every bench
/// run reports the real-input fast path's speedup under identical load:
/// promote the signal to complex, run the full-length FFT, fold one-sided.
fn periodogram_promote_reference(planner: &mut FftPlanner, samples: &[f64]) -> Vec<f64> {
    use sweetspot_dsp::window::Window;
    let n = samples.len();
    let seg: Vec<f64> = samples.to_vec();
    let mut buf: Vec<Complex64> = seg.iter().map(|&x| Complex64::from_real(x)).collect();
    planner.fft_in_place(&mut buf);
    let bins = n / 2 + 1;
    let mut power = Vec::with_capacity(bins);
    for (k, c) in buf.iter().take(bins).enumerate() {
        let mut p = c.norm_sqr();
        if k != 0 && k != n / 2 {
            p *= 2.0;
        }
        power.push(p);
    }
    let norm = (n as f64) * (n as f64) * Window::Rectangular.energy_gain(n);
    for p in &mut power {
        *p /= norm;
    }
    power
}

/// The pre-rework Welch loop: a fresh promote-to-complex periodogram per
/// segment, window coefficients re-evaluated (trig per sample) and the
/// energy gain recomputed for every segment — the per-segment costs the
/// cached-table pipeline eliminates.
fn welch_promote_reference(planner: &mut FftPlanner, samples: &[f64], seg_len: usize) -> Vec<f64> {
    use sweetspot_dsp::window::Window;
    let hop = seg_len / 2;
    let bins = seg_len / 2 + 1;
    let mut acc = vec![0.0; bins];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + seg_len <= samples.len() {
        let mut seg: Vec<f64> = samples[start..start + seg_len].to_vec();
        let mean = seg.iter().sum::<f64>() / seg_len as f64;
        for s in &mut seg {
            *s -= mean;
        }
        Window::Hann.apply(&mut seg);
        let mut buf: Vec<Complex64> = seg.iter().map(|&x| Complex64::from_real(x)).collect();
        planner.fft_in_place(&mut buf);
        let norm = (seg_len as f64) * (seg_len as f64) * Window::Hann.energy_gain(seg_len);
        for (k, c) in buf.iter().take(bins).enumerate() {
            let mut p = c.norm_sqr();
            if k != 0 && k != seg_len / 2 {
                p *= 2.0;
            }
            acc[k] += p / norm;
        }
        segments += 1;
        start += hop;
    }
    for a in &mut acc {
        *a /= segments.max(1) as f64;
    }
    acc
}

fn bench(c: &mut Criterion) {
    // FFT: power-of-two (radix-2) vs arbitrary length (Bluestein).
    for n in [1024usize, 1000, 4096, 2880] {
        let sig = signal(n);
        let label = if n.is_power_of_two() { "radix2" } else { "bluestein" };
        c.bench_function(&format!("fft/{label}_{n}"), |b| {
            let mut planner = FftPlanner::new();
            let buf: Vec<Complex64> = sig.iter().map(|&x| Complex64::from_real(x)).collect();
            b.iter(|| {
                let mut work = buf.clone();
                planner.fft_in_place(&mut work);
                black_box(work)
            })
        });
    }

    // PSD estimation. 2880 is one day at 30 s (Bluestein); 4096/8192 are the
    // power-of-two lengths the real-input fast path is judged on. The
    // `periodogram_promote_*` rows time the pre-rework full-complex path in
    // the same run, so the rfft speedup factor is load-independent.
    let sig = signal(2880);
    for n in [2880usize, 4096, 8192] {
        let s = signal(n);
        c.bench_function(&format!("psd/periodogram_promote_{n}"), |b| {
            let mut planner = FftPlanner::new();
            b.iter(|| black_box(periodogram_promote_reference(&mut planner, &s)))
        });
        c.bench_function(&format!("psd/periodogram_{n}"), |b| {
            let mut planner = FftPlanner::new();
            b.iter(|| black_box(periodogram(&mut planner, &s, 1.0, PsdConfig::default())))
        });
        c.bench_function(&format!("psd/welch_promote_{n}_seg256"), |b| {
            let mut planner = FftPlanner::new();
            b.iter(|| black_box(welch_promote_reference(&mut planner, &s, 256)))
        });
        c.bench_function(&format!("psd/welch_{n}_seg256"), |b| {
            let mut planner = FftPlanner::new();
            b.iter(|| black_box(welch(&mut planner, &s, 1.0, WelchConfig::default())))
        });
    }
    // Hann-windowed periodogram: stresses the window-coefficient path too.
    c.bench_function("psd/periodogram_hann_4096", |b| {
        let mut planner = FftPlanner::new();
        let s = signal(4096);
        let cfg = PsdConfig { window: sweetspot_dsp::window::Window::Hann, detrend: true };
        b.iter(|| black_box(periodogram(&mut planner, &s, 1.0, cfg)))
    });

    // Goertzel single-bin evaluation.
    c.bench_function("goertzel/2880_one_bin", |b| {
        b.iter(|| black_box(goertzel_power(&sig, 1.0, 0.01)))
    });

    // Fourier resampling (the §4.3 reconstruction workhorse).
    c.bench_function("resample/up_288_to_2880", |b| {
        let mut planner = FftPlanner::new();
        let coarse = signal(288);
        b.iter(|| black_box(resample_fft(&mut planner, &coarse, 2880)))
    });

    // End-to-end §3.2 estimation of a day-long trace.
    c.bench_function("estimator/day_trace_2880", |b| {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let series = RegularSeries::new(Seconds::ZERO, Seconds(30.0), sig.clone());
        b.iter(|| black_box(est.estimate_series(&series)))
    });
    let _ = Hertz(1.0); // keep the import used in all cfgs
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::kernel_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
