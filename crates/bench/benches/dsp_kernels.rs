//! DSP kernel microbenchmarks: the primitives every experiment sits on.
//!
//! Covers both FFT paths (radix-2 and Bluestein), PSD estimation, Goertzel,
//! Fourier resampling and the end-to-end Nyquist estimator.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::goertzel::goertzel_power;
use sweetspot_dsp::psd::{periodogram, welch, PsdConfig, WelchConfig};
use sweetspot_dsp::resample::resample_fft;
use sweetspot_dsp::Complex64;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.002 * t).sin() + 0.5 * (0.04 * t).sin() + 0.1 * (0.3 * t).cos()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // FFT: power-of-two (radix-2) vs arbitrary length (Bluestein).
    for n in [1024usize, 1000, 4096, 2880] {
        let sig = signal(n);
        let label = if n.is_power_of_two() { "radix2" } else { "bluestein" };
        c.bench_function(&format!("fft/{label}_{n}"), |b| {
            let mut planner = FftPlanner::new();
            let buf: Vec<Complex64> = sig.iter().map(|&x| Complex64::from_real(x)).collect();
            b.iter(|| {
                let mut work = buf.clone();
                planner.fft_in_place(&mut work);
                black_box(work)
            })
        });
    }

    // PSD estimation.
    let sig = signal(2880); // one day at 30 s
    c.bench_function("psd/periodogram_2880", |b| {
        let mut planner = FftPlanner::new();
        b.iter(|| black_box(periodogram(&mut planner, &sig, 1.0, PsdConfig::default())))
    });
    c.bench_function("psd/welch_2880_seg256", |b| {
        let mut planner = FftPlanner::new();
        b.iter(|| black_box(welch(&mut planner, &sig, 1.0, WelchConfig::default())))
    });

    // Goertzel single-bin evaluation.
    c.bench_function("goertzel/2880_one_bin", |b| {
        b.iter(|| black_box(goertzel_power(&sig, 1.0, 0.01)))
    });

    // Fourier resampling (the §4.3 reconstruction workhorse).
    c.bench_function("resample/up_288_to_2880", |b| {
        let mut planner = FftPlanner::new();
        let coarse = signal(288);
        b.iter(|| black_box(resample_fft(&mut planner, &coarse, 2880)))
    });

    // End-to-end §3.2 estimation of a day-long trace.
    c.bench_function("estimator/day_trace_2880", |b| {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let series = RegularSeries::new(Seconds::ZERO, Seconds(30.0), sig.clone());
        b.iter(|| black_box(est.estimate_series(&series)))
    });
    let _ = Hertz(1.0); // keep the import used in all cfgs
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::kernel_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
