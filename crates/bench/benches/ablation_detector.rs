//! **A2** — dual-rate detector accuracy (§4.1): TPR/FPR over tones
//! straddling the secondary stream's folding frequency, with measurement
//! noise.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::ablation;

fn print_figure() {
    let acc = ablation::detector_accuracy(16);
    println!("A2: dual-rate aliasing detector accuracy (16 cases per side)");
    println!(
        "  TP={} FN={} TN={} FP={}  →  TPR={:.2}  FPR={:.2}\n",
        acc.true_positives,
        acc.false_negatives,
        acc.true_negatives,
        acc.false_positives,
        acc.tpr(),
        acc.fpr()
    );
}

fn bench(c: &mut Criterion) {
    c.bench_function("ablation/detector_8_cases_per_side", |b| {
        b.iter(|| black_box(ablation::detector_accuracy(8)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
