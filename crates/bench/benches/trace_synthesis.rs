//! Trace-synthesis microbenchmarks: the streaming oscillator-bank generator
//! against the direct per-sample `value_at` path.
//!
//! The `*_direct_*` rows re-run the pre-rework reference (one `sin()` per
//! tone per sample, fresh buffers per trace) in the same process, so the
//! generator's speedup factor is load-independent — the same in-run
//! comparison convention as `dsp_kernels`' `*_promote_*` rows.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile, TraceSynth};
use sweetspot_timeseries::Seconds;

fn bench(c: &mut Criterion) {
    // LinkUtil: 30 s polls → 2880 samples/day, every impairment stage active.
    let trace = DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::LinkUtil), 0, 7);
    let day = Seconds::from_days(1.0);
    let rate = trace.profile().production_rate();

    // Ground truth: direct per-sample evaluation (the reference)…
    c.bench_function("synth/ground_truth_direct_2880", |b| {
        b.iter(|| black_box(trace.model().sample(Seconds::ZERO, rate, day)))
    });
    // …vs the streaming oscillator bank into recycled buffers.
    c.bench_function("synth/ground_truth_tonebank_2880", |b| {
        let mut synth = TraceSynth::new();
        let mut out = Vec::new();
        b.iter(|| {
            trace.ground_truth_into(&mut synth, rate, day, &mut out);
            black_box(out.last().copied())
        })
    });

    // Full measured chain: direct-sampled truth + per-trace buffer churn…
    c.bench_function("synth/measured_direct_2880", |b| {
        let imp = *trace.impairments();
        b.iter(|| {
            let truth = trace.model().sample(Seconds::ZERO, rate, day);
            let mut rng = StdRng::seed_from_u64(0xDA7A);
            black_box(imp.apply(&mut rng, &truth))
        })
    });
    // …vs the streaming path with every buffer recycled.
    c.bench_function("synth/measured_recycled_2880", |b| {
        let mut synth = TraceSynth::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        b.iter(|| {
            trace.production_trace_into(&mut synth, day, &mut times, &mut values);
            black_box(values.last().copied())
        })
    });

    // A 3×-folding-rate grid (the fastest an under-sampled device demands):
    // three times the samples, same per-sample cost.
    let fast_rate = sweetspot_timeseries::Hertz(3.0 * trace.profile().folding_frequency().value());
    c.bench_function("synth/ground_truth_tonebank_4320_fastgrid", |b| {
        let mut synth = TraceSynth::new();
        let mut out = Vec::new();
        b.iter(|| {
            trace.ground_truth_into(&mut synth, fast_rate, day, &mut out);
            black_box(out.last().copied())
        })
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::kernel_criterion();
    targets = bench
}

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
