//! **E8 / headline statistics** — the §3.2 text numbers at paper scale:
//! 1613 metric-device pairs, one day of data each.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_analysis::experiments::headline;
use sweetspot_analysis::study::{FleetStudy, StudyConfig};
use sweetspot_telemetry::{Fleet, FleetConfig};
use sweetspot_timeseries::Seconds;

fn print_figure() {
    let fleet = Fleet::paper_scale(0x5EED_CAFE);
    let cfg = StudyConfig {
        fleet: *fleet.config(),
        ..StudyConfig::default()
    };
    let study = FleetStudy::run_on(&fleet, cfg);
    println!("{}", headline::from_study(&study).render());
}

fn bench(c: &mut Criterion) {
    c.bench_function("headline/study_1613_pairs", |b| {
        b.iter(|| {
            let fleet = Fleet::paper_scale(0x5EED_CAFE);
            let cfg = StudyConfig {
                fleet: *fleet.config(),
                ..StudyConfig::default()
            };
            black_box(FleetStudy::run_on(&fleet, cfg).summary())
        })
    });
    // The CLI's `--paper-scale` path: devices synthesized inside the study
    // workers (no materialized fleet), all cores.
    c.bench_function("headline/study_paper_scale_workers", |b| {
        b.iter(|| {
            black_box(
                FleetStudy::run_paper_scale(0x5EED_CAFE, Default::default(), 0).summary(),
            )
        })
    });
    c.bench_function("headline/small_fleet_summary", |b| {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed: 0xE8,
                devices_per_metric: 4,
                trace_duration: Seconds::from_days(1.0),
            },
            ..StudyConfig::default()
        };
        b.iter(|| black_box(FleetStudy::run(cfg).summary()))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
