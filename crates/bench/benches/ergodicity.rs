//! **A5 / §6 "Beyond Nyquist"** — the ergodicity probe: does one device's
//! time-average represent the fleet (the canarying assumption), and how long
//! must it be observed?

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use sweetspot_core::ergodicity::{convergence_horizon, ergodicity_report, subsample_curve};
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{RegularSeries, Seconds};

/// CPU-utilization fleet sampled at 1-minute cadence for `days`.
fn fleet(seed: u64, devices: usize, days: f64, heterogeneous: bool) -> Vec<RegularSeries> {
    let profile = MetricProfile::for_kind(MetricKind::CpuUtil5pct);
    (0..devices)
        .map(|i| {
            // Homogeneous fleets share one device's process (different
            // phases via different start offsets); heterogeneous fleets are
            // genuinely different devices.
            let dev = DeviceTrace::synthesize(profile, if heterogeneous { i } else { 0 }, seed);
            let start = if heterogeneous {
                Seconds::ZERO
            } else {
                Seconds(i as f64 * 10_000.0)
            };
            let n = (days * 86_400.0 / 60.0) as usize;
            let vals = (0..n)
                .map(|k| dev.model().value_at(start.value() + k as f64 * 60.0))
                .collect();
            RegularSeries::new(Seconds::ZERO, Seconds(60.0), vals)
        })
        .collect()
}

fn print_figure() {
    println!("A5: ergodicity probe (CPU utilization, 12 devices, 4 days at 1-min)");
    for (label, hetero) in [("homogeneous", false), ("heterogeneous", true)] {
        let traces = fleet(0xE56, 12, 4.0, hetero);
        let r = ergodicity_report(&traces);
        let horizon = convergence_horizon(&traces[0], r.mean_ensemble_average, 2.0);
        println!(
            "  {label:<13}: score={:.3}  device-spread={:.2}  ensemble-spread={:.2}  \
             2%-horizon={}",
            r.score,
            r.time_average_spread,
            r.ensemble_average_spread,
            horizon.map_or("never".into(), |h| h.to_string()),
        );
    }
    println!("  → canarying is sound on the homogeneous fleet, unsound on the heterogeneous one");

    // The §6 question "can ergodicity reduce the number of devices we need
    // to sample?": error of a k-device canary against the fleet mean.
    println!("  devices sampled vs canary error (relative to fleet σ):");
    for (label, hetero) in [("homogeneous", false), ("heterogeneous", true)] {
        let traces = fleet(0xE56, 12, 4.0, hetero);
        let curve = subsample_curve(&traces, &[1, 2, 4, 8, 12]);
        let cells: Vec<String> = curve
            .iter()
            .map(|p| format!("k={}: {:.3}", p.devices, p.relative_error))
            .collect();
        println!("    {label:<13}: {}", cells.join("  "));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let traces = fleet(0xE56, 8, 2.0, true);
    c.bench_function("ergodicity/report_8dev_2day", |b| {
        b.iter(|| black_box(ergodicity_report(&traces)))
    });
}

criterion_group! {
    name = benches;
    config = sweetspot_bench::experiment_criterion();
    targets = bench
}

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
