//! Shared helpers for the figure-regeneration benches.
//!
//! Every bench in `benches/` follows the same pattern: print the figure's
//! rows/series once (so `cargo bench` doubles as the reproduction harness),
//! then time the computation that generates them with criterion.

use std::time::Duration;

/// Criterion configuration tuned for experiment-scale benchmarks: few
/// samples, short measurement windows — these benches exist to regenerate
/// figures reproducibly, not to microbenchmark.
pub fn experiment_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// Criterion configuration for DSP kernel microbenchmarks.
pub fn kernel_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .configure_from_args()
}
